#!/usr/bin/env python3
"""Scheduling jobs over time on a single battery (the paper's outlook).

Section 7 of the paper proposes using the same battery models to decide
*when* to run jobs on a single-battery device so that the battery survives
them -- the workload of a sensor node is the motivating example.  This
example takes a burst of radio jobs and compares:

* eager execution (run everything back to back),
* evenly spreading the jobs over the horizon,
* the battery-aware optimized timeline of ``repro.core.schedule_jobs``.

Usage::

    python examples/job_scheduling.py
    python examples/job_scheduling.py --jobs 8 --current 0.3 --horizon 40
"""

import argparse

from repro import BatteryParameters
from repro.core.job_scheduling import Job, schedule_jobs


def describe(label: str, timeline) -> None:
    starts = ", ".join(f"{item.job.name}@{item.start:.1f}" for item in timeline.scheduled)
    print(f"  {label:10s} completes {timeline.completed_count} jobs "
          f"(dropped {len(timeline.dropped)}); starts: {starts or '-'}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=float, default=1.0, help="battery capacity in Amin")
    parser.add_argument("--jobs", type=int, default=6, help="number of jobs in the burst")
    parser.add_argument("--current", type=float, default=0.25, help="job current in A")
    parser.add_argument("--duration", type=float, default=0.4, help="job duration in minutes")
    parser.add_argument("--horizon", type=float, default=30.0, help="scheduling horizon in minutes")
    parser.add_argument("--slot", type=float, default=2.0, help="start-time granularity in minutes")
    args = parser.parse_args()

    battery = BatteryParameters(capacity=args.capacity, c=0.166, k_prime=0.122, name="cell")
    jobs = [
        Job(name=f"tx-{index}", current=args.current, duration=args.duration)
        for index in range(args.jobs)
    ]
    print(f"{args.jobs} jobs of {args.current * 1000:.0f} mA x {args.duration} min on a "
          f"{battery.capacity} Amin cell, horizon {args.horizon} min\n")

    result = schedule_jobs(battery, jobs, horizon=args.horizon, slot=args.slot)
    describe("eager", result.eager)
    describe("spread", result.spread)
    describe("optimized", result.best)
    print(f"\nsearch: {result.nodes_expanded} nodes expanded, complete={result.complete}")
    print("The optimized timeline inserts just enough idle time before each job for the")
    print("bound charge to become available -- the single-battery analogue of the")
    print("multi-battery recovery exploitation in the paper.")


if __name__ == "__main__":
    main()
