#!/usr/bin/env python3
"""Quickstart: battery lifetimes and scheduling in a few lines.

Runs the core pipeline of the paper on one load:

1. compute the lifetime of a single battery under the ILs alt test load,
2. compare the deterministic scheduling schemes on two batteries,
3. compute the optimal schedule and report the gain over round robin.

Usage::

    python examples/quickstart.py
"""

from repro import (
    B1,
    find_optimal_schedule,
    lifetime_under_segments,
    paper_loads,
    simulate_policy,
)


def main() -> None:
    load = paper_loads()["ILs alt"]

    single = lifetime_under_segments(B1, load.segments())
    print(f"Single B1 battery under {load.name}: lifetime {single:.2f} min")

    print("\nTwo B1 batteries, deterministic schedulers:")
    lifetimes = {}
    for policy in ("sequential", "round-robin", "best-of-two"):
        result = simulate_policy([B1, B1], load, policy)
        lifetimes[policy] = result.lifetime_or_raise()
        print(f"  {policy:12s} lifetime {lifetimes[policy]:6.2f} min "
              f"({result.decisions} scheduling decisions)")

    optimal = find_optimal_schedule([B1, B1], load)
    gain = (optimal.lifetime - lifetimes["round-robin"]) / lifetimes["round-robin"] * 100.0
    print(f"\nOptimal schedule: lifetime {optimal.lifetime:.2f} min "
          f"(+{gain:.1f}% over round robin, "
          f"{optimal.nodes_expanded} search nodes, complete={optimal.complete})")
    print(f"Per-job assignment: {optimal.assignment}")


if __name__ == "__main__":
    main()
