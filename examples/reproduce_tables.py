#!/usr/bin/env python3
"""Regenerate the paper's Tables 3, 4 and 5 and print them next to the
published values.

This is the example to run for a full side-by-side comparison with the
paper; it takes a few minutes because the optimal schedules for the long
ILs 250 / IL` 250 loads are searched exhaustively (up to the documented
state-merge tolerance).

Usage::

    python examples/reproduce_tables.py            # everything
    python examples/reproduce_tables.py --fast     # skip the two slowest loads
"""

import argparse

from repro.analysis.report import render_scheduling_table, render_validation_table
from repro.analysis.tables import table3, table4, table5
from repro.workloads.profiles import paper_loads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="skip the slowest loads (ILs 250 and IL` 250) in Table 5",
    )
    args = parser.parse_args()

    print(render_validation_table(table3(), "Table 3 -- battery B1, KiBaM vs dKiBaM"))
    print()
    print(render_validation_table(table4(), "Table 4 -- battery B2, KiBaM vs dKiBaM"))
    print()

    loads = paper_loads()
    if args.fast:
        loads = {name: load for name, load in loads.items() if name not in ("ILs 250", "IL` 250")}
    rows = table5(loads=loads)
    print(render_scheduling_table(rows, "Table 5 -- two B1 batteries, four schedulers"))


if __name__ == "__main__":
    main()
