#!/usr/bin/env python3
"""Compare battery models and show where the scheduling gains come from.

Three battery abstractions are run on the same loads:

* the ideal linear battery (no rate-capacity effect, no recovery),
* the Kinetic Battery Model used throughout the paper,
* the Rakhmatov-Vrudhula diffusion model (the other common analytical model,
  referenced by the paper's validation section).

The linear battery shows that without the non-linear effects there is
nothing to schedule: every policy gives the same lifetime.  The KiBaM and
the diffusion model both reward switching batteries, which is the effect
the paper exploits.

Usage::

    python examples/model_comparison.py
"""

from repro import B1, DiffusionBattery, LinearBattery, paper_loads, simulate_policy
from repro.kibam.lifetime import lifetime_under_segments


def single_battery_comparison(loads) -> None:
    print("Single battery lifetimes (minutes) per model:")
    print(f"  {'load':10s} {'linear':>8s} {'KiBaM':>8s} {'diffusion':>10s}")
    linear = LinearBattery(B1)
    diffusion = DiffusionBattery(alpha=B1.capacity, beta=0.55)
    for name in ("CL 250", "CL 500", "ILs 500", "ILs alt"):
        segments = loads[name].segments()
        print(
            f"  {name:10s} "
            f"{linear.lifetime_under_segments(segments) or float('nan'):8.2f} "
            f"{lifetime_under_segments(B1, segments) or float('nan'):8.2f} "
            f"{diffusion.lifetime_under_segments(segments) or float('nan'):10.2f}"
        )


def scheduling_gain_comparison(loads) -> None:
    print("\nTwo-battery scheduling gain of best-of-two over sequential (percent):")
    print(f"  {'load':10s} {'linear':>8s} {'KiBaM':>8s}")
    for name in ("CL 500", "ILs alt"):
        load = loads[name]
        row = []
        for backend in ("linear", "analytical"):
            sequential = simulate_policy([B1, B1], load, "sequential", backend=backend)
            best = simulate_policy([B1, B1], load, "best-of-two", backend=backend)
            gain = (
                (best.lifetime_or_raise() - sequential.lifetime_or_raise())
                / sequential.lifetime_or_raise()
                * 100.0
            )
            row.append(gain)
        print(f"  {name:10s} {row[0]:8.1f} {row[1]:8.1f}")
    print("\nWith the ideal battery the gain is zero: the lifetime extensions of the")
    print("paper come entirely from the rate-capacity and recovery effects.")


def main() -> None:
    loads = paper_loads()
    single_battery_comparison(loads)
    scheduling_gain_comparison(loads)


if __name__ == "__main__":
    main()
