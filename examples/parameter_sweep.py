#!/usr/bin/env python3
"""Declarative parameter sweep: battery grids x load families, cached.

Where ``batch_sweep.py`` shows the raw engine throughput on one battery
configuration, this example drives the :mod:`repro.sweep` orchestration
layer: a declarative spec sweeps a battery-capacity grid and a
heterogeneous pair across three load families, every scenario carrying its
own battery parameters through the vectorized engine in one batch.  Results
land in a content-addressed store, so re-running this script is a pure
cache read -- try it twice, or interrupt a long variant and watch it
resume.

The same campaigns are available from the command line::

    python -m repro sweep run --spec table5      # the paper's Table 5
    python -m repro sweep status                 # what is cached already

Usage::

    python examples/parameter_sweep.py                   # default store
    python examples/parameter_sweep.py --store /tmp/s    # elsewhere
    python examples/parameter_sweep.py --no-store        # compute only
    python examples/parameter_sweep.py --model discrete  # dKiBaM columns

``--model discrete`` runs the same capacity grid under the discrete-time
KiBaM (equation (7) of the paper) instead of the analytical closed form --
also fully vectorized, with exact tick-for-tick parity against the scalar
dKiBaM -- and, because the model is part of the spec's content hash, its
results land in a separate store entry from the analytical run.
"""

import argparse

from repro import B1, B2
from repro.sweep import (
    BatteryConfig,
    LoadAxis,
    ResultStore,
    SweepRunner,
    SweepSpec,
    battery_grid,
)
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG


def build_spec(model: str = "analytical", samples: int = 100) -> SweepSpec:
    """A grid over battery capacity plus a heterogeneous B1+B2 pair."""
    batteries = battery_grid(
        capacities=(2.75, 5.5, 11.0), c=B1.c, k_prime=B1.k_prime, n_batteries=2
    ) + (BatteryConfig(label="B1+B2", params=(B1, B2)),)
    loads = (
        LoadAxis.generator(
            "continuous", label="CL 250", current=0.25, total_duration=600.0
        ),
        LoadAxis.generator(
            "intermittent",
            label="ILs 500",
            current=0.5,
            idle_duration=1.0,
            total_duration=600.0,
        ),
        LoadAxis.random(samples, seed=0, config=ILS_LIKE_RANDOM_CONFIG),
    )
    return SweepSpec(
        name="capacity-grid",
        description="capacity grid + heterogeneous pair under three load families",
        batteries=batteries,
        loads=loads,
        policies=("sequential", "round-robin", "best-of-two"),
    ).with_model(model)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store", default=".sweep-store", help="result store directory"
    )
    parser.add_argument(
        "--no-store", action="store_true", help="compute in memory, cache nothing"
    )
    parser.add_argument(
        "--model",
        choices=("analytical", "discrete"),
        default="analytical",
        help="battery model; 'discrete' demonstrates the capacity grid "
        "under the vectorized dKiBaM kernel (separate store entry)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=100,
        help="random loads on the random axis (default: 100)",
    )
    args = parser.parse_args()

    spec = build_spec(model=args.model, samples=args.samples)
    store = None if args.no_store else ResultStore(args.store)
    runner = SweepRunner(store)

    print(
        f"sweep {spec.name!r} [{spec.spec_hash()}]: {spec.n_scenarios} scenarios "
        f"x {len(spec.policies)} policies in {spec.n_chunks} chunk(s), "
        f"model={spec.model}\n"
    )
    result = runner.run(spec, progress=lambda line: print(f"  {line}"))
    print()
    print(result.render())

    stats = result.stats
    print(
        f"\nchunks: {stats.chunks_run} run, {stats.chunks_cached} cached; "
        f"total {stats.total_seconds:.2f}s"
    )
    if stats.chunks_cached == stats.n_chunks:
        print("fully cached -- this run never touched the simulator")
    elif store is not None:
        print("re-run this script: the whole sweep becomes a cache read")

    # The distributions() view plugs straight into the analysis layer.
    key = ("2x5.5Amin", "random(seed=0)", "best-of-two")
    dist = result.distributions()[key]
    print(
        f"\nbest-of-two on 2x5.5Amin over {dist.samples} random loads: "
        f"mean {dist.mean:.2f} min, p10 {dist.percentile_10:.2f}, "
        f"p90 {dist.percentile_90:.2f}"
    )


if __name__ == "__main__":
    main()
