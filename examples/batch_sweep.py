#!/usr/bin/env python3
"""Fleet-scale Monte-Carlo sweep on the batch execution engine.

Samples many random ILs-like loads, sweeps the deterministic scheduling
policies over all of them with the vectorized :class:`repro.BatchSimulator`,
and prints the lifetime distributions plus the achieved throughput.  With
``--compare`` it also runs the scalar golden-reference loop on a subset and
reports the agreement and the speedup.

Usage::

    python examples/batch_sweep.py                 # 1000 samples, batch engine
    python examples/batch_sweep.py --samples 200 --compare
"""

import argparse
import time

from repro import B1, BatchSimulator, ScenarioSet, simulate_policy
from repro.analysis.montecarlo import (
    LifetimeDistribution,
    MonteCarloResult,
    render_distributions,
)
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

POLICIES = ("sequential", "round-robin", "best-of-two")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=1000, help="number of random loads")
    parser.add_argument("--seed", type=int, default=0, help="base seed for the loads")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the scalar reference loop on a subset and report the speedup",
    )
    args = parser.parse_args()

    config = ILS_LIKE_RANDOM_CONFIG
    params = [B1, B1]

    start = time.perf_counter()
    scenarios = ScenarioSet.random(args.samples, config, seed=args.seed)
    generation_seconds = time.perf_counter() - start

    simulator = BatchSimulator(params)
    start = time.perf_counter()
    results = simulator.run_many(scenarios, POLICIES)
    sweep_seconds = time.perf_counter() - start

    per_sample = {
        policy: [float(value) for value in results[policy].lifetimes_or_raise()]
        for policy in POLICIES
    }
    summary = MonteCarloResult(
        distributions={
            policy: LifetimeDistribution.from_samples(policy, lifetimes)
            for policy, lifetimes in per_sample.items()
        },
        per_sample=per_sample,
        n_samples=args.samples,
        engine="batch",
    )
    print(f"{args.samples} random loads x {len(POLICIES)} policies on 2 x B1\n")
    print(render_distributions(summary))
    rate = args.samples * len(POLICIES) / sweep_seconds
    print(
        f"\nload generation: {generation_seconds:6.2f} s"
        f"\nbatch sweep    : {sweep_seconds:6.2f} s"
        f"  ({rate:,.0f} scenario-policies/sec)"
    )
    gain = summary.mean_gain_percent("best-of-two", "round-robin")
    print(f"mean gain of best-of-two over round robin: {gain:.2f} %")

    if args.compare:
        subset = min(args.samples, 30)
        start = time.perf_counter()
        scalar = {
            policy: [
                simulate_policy(params, load, policy).lifetime
                for load in scenarios.loads[:subset]
            ]
            for policy in POLICIES
        }
        scalar_seconds = time.perf_counter() - start
        worst = max(
            abs(scalar_value - per_sample[policy][index])
            for policy in POLICIES
            for index, scalar_value in enumerate(scalar[policy])
        )
        scalar_rate = subset * len(POLICIES) / scalar_seconds
        print(
            f"\nscalar reference on {subset} samples: {scalar_seconds:.2f} s "
            f"({scalar_rate:,.0f} scenario-policies/sec)"
            f"\nworst |scalar - batch| deviation: {worst:.2e} min"
            f"\nbatch speedup: {rate / scalar_rate:.1f}x"
        )


if __name__ == "__main__":
    main()
