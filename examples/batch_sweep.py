#!/usr/bin/env python3
"""Fleet-scale Monte-Carlo sweep on the batch execution engine.

Samples many random ILs-like loads, sweeps the deterministic scheduling
policies over all of them through :func:`repro.run_montecarlo` on the
vectorized batch engine, and prints the lifetime distributions plus the
achieved throughput.  With ``--compare`` it also runs the scalar
golden-reference loop on a subset and reports the agreement and the
speedup; with ``--cache-dir`` the sweep routes through the
:mod:`repro.sweep` result store, so repeating the same seed/sample count is
a cache read (see ``examples/parameter_sweep.py`` for full declarative
campaigns).

Usage::

    python examples/batch_sweep.py                 # 1000 samples, batch engine
    python examples/batch_sweep.py --samples 200 --compare
    python examples/batch_sweep.py --cache-dir .sweep-store
"""

import argparse
import time

from repro import B1, run_montecarlo, simulate_policy
from repro.analysis.montecarlo import render_distributions
from repro.engine import ScenarioSet
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

POLICIES = ("sequential", "round-robin", "best-of-two")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=1000, help="number of random loads")
    parser.add_argument("--seed", type=int, default=0, help="base seed for the loads")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the scalar reference loop on a subset and report the speedup",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="route the sweep through a repro.sweep result store at this path",
    )
    args = parser.parse_args()

    config = ILS_LIKE_RANDOM_CONFIG
    params = [B1, B1]

    start = time.perf_counter()
    summary = run_montecarlo(
        params,
        n_samples=args.samples,
        policies=POLICIES,
        config=config,
        seed=args.seed,
        engine="batch",
        cache_dir=args.cache_dir,
    )
    sweep_seconds = time.perf_counter() - start

    print(f"{args.samples} random loads x {len(POLICIES)} policies on 2 x B1\n")
    print(render_distributions(summary))
    rate = args.samples * len(POLICIES) / sweep_seconds
    print(
        f"\nbatch sweep    : {sweep_seconds:6.2f} s"
        f"  ({rate:,.0f} scenario-policies/sec, engine={summary.engine})"
    )
    if args.cache_dir:
        print(f"result store   : {args.cache_dir} (re-run for a cache hit)")
    gain = summary.mean_gain_percent("best-of-two", "round-robin")
    print(f"mean gain of best-of-two over round robin: {gain:.2f} %")

    if args.compare:
        # Sample i is drawn with seed + i, so generating just the subset
        # reproduces the first `subset` loads of the sweep above exactly.
        subset = min(args.samples, 30)
        loads = ScenarioSet.random(subset, config, seed=args.seed).loads
        start = time.perf_counter()
        scalar = {
            policy: [
                simulate_policy(params, load, policy).lifetime
                for load in loads
            ]
            for policy in POLICIES
        }
        scalar_seconds = time.perf_counter() - start
        worst = max(
            abs(scalar_value - summary.per_sample[policy][index])
            for policy in POLICIES
            for index, scalar_value in enumerate(scalar[policy])
        )
        scalar_rate = subset * len(POLICIES) / scalar_seconds
        print(
            f"\nscalar reference on {subset} samples: {scalar_seconds:.2f} s "
            f"({scalar_rate:,.0f} scenario-policies/sec)"
            f"\nworst |scalar - batch| deviation: {worst:.2e} min"
            f"\nbatch speedup: {rate / scalar_rate:.1f}x"
        )


if __name__ == "__main__":
    main()
