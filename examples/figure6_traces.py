#!/usr/bin/env python3
"""Regenerate Figure 6: charge evolution under the best-of-two and optimal
schedules for the ILs alt load.

The script prints an ASCII rendering of both schedules and (optionally)
writes the full charge series as CSV files that can be plotted with any
external tool to obtain the same curves as the paper's figure.

Usage::

    python examples/figure6_traces.py
    python examples/figure6_traces.py --csv-dir ./figure6_csv
"""

import argparse
import pathlib

from repro.analysis.figures import figure6
from repro.analysis.report import (
    render_charge_series_csv,
    render_figure6_summary,
    render_schedule_ascii,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="directory to write figure6_best_of_two.csv / figure6_optimal.csv to",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=0.05,
        help="sampling interval of the charge curves in minutes",
    )
    args = parser.parse_args()

    data = figure6(sample_interval=args.sample_interval)
    print(render_figure6_summary(data))
    print()
    print(render_schedule_ascii(data.best_of_two))
    print()
    print(render_schedule_ascii(data.optimal))

    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        for label, trace in (("best_of_two", data.best_of_two), ("optimal", data.optimal)):
            path = args.csv_dir / f"figure6_{label}.csv"
            path.write_text(render_charge_series_csv(trace))
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
