#!/usr/bin/env python3
"""Battery scheduling for a wireless sensor node.

The paper's outlook names sensor-network nodes -- simple, regular workloads
on small batteries -- as a natural application of battery-aware scheduling.
This example models a node that periodically senses, transmits and sleeps,
powered by two small cells, and shows:

* how much of the node's mission length is lost to naive (sequential)
  battery usage,
* how much a smart battery switch (best-of-two) recovers, and
* how close that is to the optimal schedule.

Usage::

    python examples/sensor_node.py
    python examples/sensor_node.py --transmit-current 0.45 --sleep 2.0
"""

import argparse

from repro import BatteryParameters, find_optimal_schedule, simulate_policy
from repro.workloads.generator import sensor_node_load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=float, default=1.0, help="cell capacity in Amin")
    parser.add_argument("--transmit-current", type=float, default=0.300, help="radio current in A")
    parser.add_argument("--sense-current", type=float, default=0.020, help="sensing current in A")
    parser.add_argument("--sleep", type=float, default=4.0, help="sleep time per cycle in minutes")
    parser.add_argument("--cycles", type=int, default=400, help="measurement cycles in the mission")
    args = parser.parse_args()

    cell = BatteryParameters(capacity=args.capacity, c=0.166, k_prime=0.122, name="sensor-cell")
    load = sensor_node_load(
        sense_current=args.sense_current,
        transmit_current=args.transmit_current,
        sleep_duration=args.sleep,
        cycles=args.cycles,
    )
    print(f"Sensor node mission: {load.job_count} jobs over {load.total_duration:.0f} min, "
          f"two cells of {cell.capacity} Amin each\n")

    results = {}
    for policy in ("sequential", "round-robin", "best-of-two"):
        result = simulate_policy([cell, cell], load, policy)
        results[policy] = result
        if result.survived:
            print(f"  {policy:12s} survives the whole mission")
        else:
            cycles_completed = result.lifetime_or_raise() / (load.total_duration / args.cycles)
            print(f"  {policy:12s} dies after {result.lifetime:7.1f} min "
                  f"(~{cycles_completed:.0f} measurement cycles)")

    reference = results["sequential"]
    if not reference.survived:
        # The node-count cap keeps the example snappy on very long missions;
        # when it triggers the reported schedule is a lower bound on the true
        # optimum (the `complete` flag says which case applies).
        optimal = find_optimal_schedule(
            [cell, cell], load, dominance_tolerance=0.005, max_nodes=30_000
        )
        gain = (optimal.lifetime - reference.lifetime) / reference.lifetime * 100.0
        label = "optimal" if optimal.complete else "best found"
        print(f"  {label:12s} dies after {optimal.lifetime:7.1f} min "
              f"(+{gain:.1f}% vs sequential, {optimal.nodes_expanded} nodes explored)")


if __name__ == "__main__":
    main()
