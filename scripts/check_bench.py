#!/usr/bin/env python3
"""CI benchmark-regression gate for the BENCH_*.json throughput records.

The benchmark harnesses rewrite ``BENCH_engine.json``, ``BENCH_sweep.json``
and ``BENCH_dkibam.json`` in the working tree on every run; the committed
copies are the baselines.  This script compares the two and fails (exit 1)
when a freshly measured record has regressed by more than the allowed
fraction (default 30%).

Noise tolerance: only machine-relative *ratios* are compared -- the
batch-vs-scalar speedup of the engine records and the cache-hit speedup of
the sweep record -- never absolute seconds or rates, so a slow or busy CI
runner does not trip the gate (both sides of a ratio slow down together).

Usage::

    python scripts/check_bench.py                     # fresh: repo root,
                                                      # baseline: git HEAD
    python scripts/check_bench.py --max-regression 0.5
    python scripts/check_bench.py --baseline-ref origin/main
    python scripts/check_bench.py --fresh-dir out/ --baseline-dir base/

``--baseline-dir`` reads baseline files from a directory instead of git
(used by the self-test in ``tests/test_check_bench.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import List, Optional, Tuple

#: (file name, ratio key) pairs under the gate.  Every key is a
#: dimensionless ratio, measured and baselined on the same machine class:
#: the engine/dKiBaM/optimal ``speedup`` keys are batch-vs-scalar
#: throughput ratios (the optimal one is the frontier-array search's node
#: throughput over the scalar depth-first reference), the sweep key is the
#: cache-hit speedup, and ``sweep_nodes_ratio`` is the fresh-vs-seeded
#: expanded-node ratio of the optimal sweep column (deterministic node
#: counts -- a drop means the spec-level dominance pruning stopped biting).
#: ``certification_nodes_ratio`` is the reference-over-current expanded-node
#: ratio on the certification-floor loads (also deterministic -- a drop
#: means the admissible bound got looser and the search re-expanded nodes
#: the recovery-limited bound used to prune).  ``group_symmetry_nodes_ratio``
#: is the without-over-with expanded-node ratio of the group-wise symmetry
#: reduction on identical-subgroup fleets (deterministic -- a drop means
#: permuted-duplicate schedules stopped being pruned).
CHECKS: Tuple[Tuple[str, str], ...] = (
    ("BENCH_engine.json", "speedup"),
    ("BENCH_sweep.json", "cache_hit_speedup"),
    ("BENCH_dkibam.json", "speedup"),
    ("BENCH_optimal.json", "speedup"),
    ("BENCH_optimal.json", "sweep_nodes_ratio"),
    ("BENCH_optimal.json", "certification_nodes_ratio"),
    ("BENCH_fleet.json", "group_symmetry_nodes_ratio"),
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def load_json(path: pathlib.Path) -> Optional[dict]:
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def load_baseline(
    name: str, ref: str, baseline_dir: Optional[pathlib.Path]
) -> Optional[dict]:
    """The committed baseline record: a directory copy, or ``git show``."""
    if baseline_dir is not None:
        return load_json(baseline_dir / name)
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def check_record(
    name: str,
    key: str,
    fresh: Optional[dict],
    baseline: Optional[dict],
    max_regression: float,
) -> Tuple[bool, str]:
    """One gate decision.  Returns (ok, human-readable line)."""
    if fresh is None:
        return False, f"{name}: FRESH RECORD MISSING (did the benchmarks run?)"
    if key not in fresh:
        return False, f"{name}: fresh record has no {key!r} field"
    if baseline is None:
        return True, f"{name}: no committed baseline yet; skipping"
    if key not in baseline:
        return True, f"{name}: baseline has no {key!r} field; skipping"
    fresh_ratio = float(fresh[key])
    base_ratio = float(baseline[key])
    floor = base_ratio * (1.0 - max_regression)
    ok = fresh_ratio >= floor
    verdict = "ok" if ok else f"REGRESSION (allowed floor {floor:.1f}x)"
    return ok, (
        f"{name}: {key} {fresh_ratio:.1f}x vs baseline {base_ratio:.1f}x -- {verdict}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional ratio drop before failing (default: 0.30)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed baselines (default: HEAD)",
    )
    parser.add_argument(
        "--fresh-dir",
        type=pathlib.Path,
        default=REPO_ROOT,
        help="directory holding the freshly written records (default: repo root)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=None,
        help="read baselines from this directory instead of git",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_regression < 1.0:
        parser.error("--max-regression must lie in [0, 1)")

    failures = 0
    for name, key in CHECKS:
        fresh = load_json(args.fresh_dir / name)
        baseline = load_baseline(name, args.baseline_ref, args.baseline_dir)
        ok, line = check_record(name, key, fresh, baseline, args.max_regression)
        print(line)
        if not ok:
            failures += 1
    if failures:
        print(
            f"benchmark gate: {failures} record(s) regressed more than "
            f"{args.max_regression:.0%}",
            file=sys.stderr,
        )
        return 1
    print("benchmark gate: all throughput ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
