"""Cross-validation of the analytical KiBaM against the two-well ODE model."""

import pytest

from repro.kibam.analytical import initial_state, step_constant_current
from repro.kibam.lifetime import lifetime_constant_current, lifetime_under_segments
from repro.kibam.model import TwoWellKibam


class TestTwoWellIntegration:
    def test_constant_current_matches_closed_form(self, b1):
        ode = TwoWellKibam(b1)
        final = ode.integrate_to_state(lambda _t: 0.25, duration=2.0)
        closed = step_constant_current(b1, initial_state(b1), 0.25, 2.0)
        assert final.gamma == pytest.approx(closed.gamma, rel=1e-6)
        assert final.delta == pytest.approx(closed.delta, rel=1e-6)

    def test_idle_recovery_matches_closed_form(self, b1):
        ode = TwoWellKibam(b1)
        loaded = step_constant_current(b1, initial_state(b1), 0.5, 1.0)
        recovered_ode = ode.integrate_to_state(lambda _t: 0.0, duration=2.0, initial=loaded)
        recovered_closed = step_constant_current(b1, loaded, 0.0, 2.0)
        assert recovered_ode.delta == pytest.approx(recovered_closed.delta, rel=1e-6)

    def test_charge_conservation_without_load(self, b1):
        ode = TwoWellKibam(b1)
        y1, y2 = ode.integrate(lambda _t: 0.0, duration=5.0)
        assert y1 + y2 == pytest.approx(b1.capacity, rel=1e-9)

    def test_lifetime_matches_analytical_solver(self, b1):
        ode = TwoWellKibam(b1)
        assert ode.lifetime_constant_current(0.25) == pytest.approx(
            lifetime_constant_current(b1, 0.25), abs=1e-3
        )

    def test_segment_lifetime_matches_analytical_solver(self, b1, loads):
        ode = TwoWellKibam(b1)
        segments = loads["ILs 500"].segments()
        assert ode.lifetime_under_segments(segments) == pytest.approx(
            lifetime_under_segments(b1, segments), abs=2e-3
        )

    def test_time_varying_current_is_supported(self, b1):
        # A ramp current is outside the closed-form solver's domain but fine
        # for the ODE integrator; the total charge drawn must match the
        # integral of the current.
        ode = TwoWellKibam(b1)
        y1, y2 = ode.integrate(lambda t: 0.1 * t, duration=2.0, max_step=0.01)
        drawn = 0.1 * 2.0**2 / 2.0
        assert b1.capacity - (y1 + y2) == pytest.approx(drawn, rel=1e-4)

    def test_rejects_negative_duration(self, b1):
        with pytest.raises(ValueError):
            TwoWellKibam(b1).integrate(lambda _t: 0.1, duration=-1.0)

    def test_rejects_non_positive_current_for_lifetime(self, b1):
        with pytest.raises(ValueError):
            TwoWellKibam(b1).lifetime_constant_current(0.0)
