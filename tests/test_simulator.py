"""Tests for the multi-battery simulator and the schedule data structures."""

import pytest

from repro.core.policies import BestOfTwoPolicy, SequentialPolicy
from repro.core.schedule import relative_difference
from repro.core.simulator import MultiBatterySimulator, simulate_policy
from repro.core.battery import make_battery_models
from repro.kibam.lifetime import lifetime_under_segments
from repro.kibam.parameters import B1
from repro.workloads.load import Epoch, Load


class TestSingleBatterySimulation:
    def test_single_battery_matches_lifetime_solver(self, b1, loads):
        load = loads["ILs 500"]
        result = simulate_policy([b1], load, "sequential")
        assert result.lifetime == pytest.approx(
            lifetime_under_segments(b1, load.segments()), abs=1e-9
        )

    def test_survival_when_the_load_is_light(self, b1):
        light = Load(name="light", epochs=(Epoch(current=0.1, duration=1.0),))
        result = simulate_policy([b1], light, "sequential")
        assert result.survived
        with pytest.raises(RuntimeError):
            result.lifetime_or_raise()


class TestTwoBatterySimulation:
    def test_sequential_uses_batteries_in_order(self, b1, loads):
        result = simulate_policy([b1, b1], loads["CL 500"], "sequential")
        batteries_in_order = [
            entry.battery for entry in result.schedule.serving_entries()
        ]
        first_use_of_second = batteries_in_order.index(1)
        assert all(battery == 0 for battery in batteries_in_order[:first_use_of_second])
        assert all(battery == 1 for battery in batteries_in_order[first_use_of_second:])

    def test_round_robin_alternates(self, b1, loads):
        result = simulate_policy([b1, b1], loads["ILs 500"], "round-robin")
        jobs = result.schedule.job_assignments()
        first_six = [jobs[index][0] for index in range(6)]
        assert first_six == [0, 1, 0, 1, 0, 1]

    def test_policy_ordering_matches_the_paper(self, b1, loads):
        # Table 5: sequential <= round robin <= best-of-two <= optimal.
        load = loads["ILs alt"]
        sequential = simulate_policy([b1, b1], load, "sequential").lifetime_or_raise()
        round_robin = simulate_policy([b1, b1], load, "round-robin").lifetime_or_raise()
        best = simulate_policy([b1, b1], load, "best-of-two").lifetime_or_raise()
        assert sequential <= round_robin <= best

    def test_two_batteries_outlive_one(self, b1, loads):
        load = loads["CL 500"]
        one = simulate_policy([b1], load, "sequential").lifetime_or_raise()
        two = simulate_policy([b1, b1], load, "best-of-two").lifetime_or_raise()
        assert two > one

    def test_switchover_happens_mid_job(self, b1):
        # A single very long job: the first battery dies mid-job and the
        # second must take over at that instant.
        load = Load(name="marathon", epochs=(Epoch(current=0.5, duration=100.0),))
        result = simulate_policy([b1, b1], load, "sequential")
        serving = result.schedule.serving_entries()
        assert len(serving) == 2
        assert serving[1].switchover
        assert serving[0].end_time == pytest.approx(serving[1].start_time)
        assert result.lifetime_or_raise() == pytest.approx(serving[1].end_time)

    def test_discrete_backend_close_to_analytical(self, b1, loads):
        load = loads["ILs alt"]
        analytical = simulate_policy([b1, b1], load, "best-of-two").lifetime_or_raise()
        discrete = simulate_policy(
            [b1, b1], load, "best-of-two", backend="discrete"
        ).lifetime_or_raise()
        assert discrete == pytest.approx(analytical, rel=0.02)

    def test_decisions_are_counted(self, b1, loads):
        result = simulate_policy([b1, b1], loads["ILs 500"], "round-robin")
        assert result.decisions >= result.schedule.switch_count()

    def test_residual_charge_is_positive_at_death(self, b1, loads):
        result = simulate_policy([b1, b1], loads["CL 500"], "best-of-two")
        assert 0.0 < result.residual_charge < 2 * b1.capacity


class TestScheduleStructure:
    def test_per_battery_segments_cover_the_horizon(self, b1, loads):
        result = simulate_policy([b1, b1], loads["ILs alt"], "best-of-two")
        horizon = result.lifetime_or_raise()
        for segments in result.schedule.per_battery_segments(horizon=horizon):
            assert sum(duration for _, duration in segments) == pytest.approx(horizon)

    def test_job_assignments_and_usage(self, b1, loads):
        result = simulate_policy([b1, b1], loads["ILs 500"], "round-robin")
        schedule = result.schedule
        total_serving = sum(entry.duration for entry in schedule.serving_entries())
        assert schedule.battery_usage(0) + schedule.battery_usage(1) == pytest.approx(
            total_serving
        )

    def test_relative_difference_helper(self):
        assert relative_difference(11.0, 10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            relative_difference(1.0, 0.0)


class TestSimulatorValidation:
    def test_requires_at_least_one_battery(self):
        with pytest.raises(ValueError):
            MultiBatterySimulator([])

    def test_policy_choosing_dead_battery_is_rejected(self, b1):
        class BadPolicy(SequentialPolicy):
            name = "bad"

            def choose(self, context):
                return 0  # insists on battery 0 even when it is empty

        load = Load(name="long", epochs=(Epoch(current=0.5, duration=100.0),))
        models = make_battery_models([b1, b1])
        with pytest.raises(ValueError):
            MultiBatterySimulator(models).run(load, BadPolicy())

    def test_policy_instance_and_name_give_same_result(self, b1, loads):
        by_name = simulate_policy([b1, b1], loads["ILs alt"], "best-of-two")
        by_instance = simulate_policy([b1, b1], loads["ILs alt"], BestOfTwoPolicy())
        assert by_name.lifetime == pytest.approx(by_instance.lifetime)
