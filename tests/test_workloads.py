"""Tests for the load model, the paper's test loads and the generators."""

import pytest

from repro.workloads.generator import (
    LOAD_GENERATOR_REGISTRY,
    RandomLoadConfig,
    bursty_load,
    duty_cycle_load,
    duty_cycled_sensor_load,
    generate_random_load,
    make_load,
    mmpp_load,
    sensor_node_load,
    trace_load,
)
from repro.workloads.load import Epoch, Load, idle_epoch, job_epoch
from repro.workloads.profiles import (
    HIGH_CURRENT,
    JOB_DURATION,
    LOW_CURRENT,
    PAPER_LOAD_NAMES,
    continuous_alternating_load,
    intermittent_load,
    paper_loads,
    random_intermittent_load,
)


class TestEpoch:
    def test_job_and_idle_classification(self):
        assert job_epoch(0.25, 1.0).is_job
        assert idle_epoch(1.0).is_idle

    def test_charge(self):
        assert job_epoch(0.5, 2.0).charge == pytest.approx(1.0)

    def test_invalid_epochs_rejected(self):
        with pytest.raises(ValueError):
            Epoch(current=-0.1, duration=1.0)
        with pytest.raises(ValueError):
            Epoch(current=0.1, duration=0.0)
        with pytest.raises(ValueError):
            job_epoch(0.0, 1.0)


class TestLoad:
    def make_load(self) -> Load:
        return Load(
            name="demo",
            epochs=(job_epoch(0.5, 1.0), idle_epoch(2.0), job_epoch(0.25, 1.0)),
        )

    def test_totals(self):
        load = self.make_load()
        assert load.total_duration == pytest.approx(4.0)
        assert load.total_charge == pytest.approx(0.75)
        assert load.job_count == 2

    def test_segments_round_trip(self):
        load = self.make_load()
        rebuilt = Load.from_segments("copy", load.segments())
        assert rebuilt.segments() == load.segments()

    def test_epoch_start_and_end_times(self):
        load = self.make_load()
        assert load.epoch_start_times() == [0.0, 1.0, 3.0]
        assert load.epoch_end_times() == [1.0, 3.0, 4.0]

    def test_current_at(self):
        load = self.make_load()
        assert load.current_at(0.5) == pytest.approx(0.5)
        assert load.current_at(2.0) == 0.0
        assert load.current_at(3.5) == pytest.approx(0.25)
        assert load.current_at(100.0) == 0.0

    def test_truncated(self):
        load = self.make_load()
        prefix = load.truncated(1.5)
        assert prefix.total_duration == pytest.approx(1.5)
        assert len(prefix) == 2

    def test_repeated_and_scaled(self):
        load = self.make_load()
        assert load.repeated(3).total_duration == pytest.approx(12.0)
        assert load.scaled_current(2.0).total_charge == pytest.approx(1.5)

    def test_empty_load_rejected(self):
        with pytest.raises(ValueError):
            Load(name="empty", epochs=())


class TestPaperLoads:
    def test_all_ten_loads_present(self, loads):
        assert set(loads) == set(PAPER_LOAD_NAMES)

    def test_job_levels_and_duration(self, loads):
        for name, load in loads.items():
            for epoch in load.epochs:
                if epoch.is_job:
                    assert epoch.current in (LOW_CURRENT, HIGH_CURRENT)
                    assert epoch.duration == pytest.approx(JOB_DURATION)

    def test_continuous_loads_have_no_idle(self, loads):
        for name in ("CL 250", "CL 500", "CL alt"):
            assert all(epoch.is_job for epoch in loads[name].epochs)

    def test_intermittent_idle_durations(self, loads):
        short_idles = [e.duration for e in loads["ILs 250"].epochs if e.is_idle]
        long_idles = [e.duration for e in loads["IL` 250"].epochs if e.is_idle]
        assert all(duration == pytest.approx(1.0) for duration in short_idles)
        assert all(duration == pytest.approx(2.0) for duration in long_idles)

    def test_alternating_load_starts_with_high_current(self, loads):
        # Calibrated against Table 3 (see EXPERIMENTS.md): the alternating
        # loads begin with the 500 mA job.
        jobs = [epoch for epoch in loads["CL alt"].epochs if epoch.is_job]
        assert jobs[0].current == pytest.approx(HIGH_CURRENT)
        assert jobs[1].current == pytest.approx(LOW_CURRENT)

    def test_loads_are_long_enough_for_the_paper_experiments(self, loads):
        # Table 5's longest lifetime is just under 80 minutes; the generated
        # loads must comfortably exceed that.
        for load in loads.values():
            assert load.total_duration >= 150.0

    def test_random_loads_are_reproducible(self):
        first = random_intermittent_load(seed=7)
        second = random_intermittent_load(seed=7)
        assert first.segments() == second.segments()
        different = random_intermittent_load(seed=8)
        assert first.segments() != different.segments()

    def test_profile_constructors_validate_inputs(self):
        with pytest.raises(ValueError):
            intermittent_load(0.25, idle_duration=1.0, total_duration=0.0)
        with pytest.raises(ValueError):
            continuous_alternating_load(total_duration=-1.0)


class TestGenerators:
    def test_random_load_respects_levels_and_step(self):
        config = RandomLoadConfig(levels=(0.2, 0.4), duration_step=0.25, total_duration=30.0)
        load = generate_random_load(seed=3, config=config)
        for epoch in load.epochs:
            if epoch.is_job:
                assert epoch.current in (0.2, 0.4)
            assert (epoch.duration / 0.25) == pytest.approx(round(epoch.duration / 0.25))
        assert load.total_duration >= 30.0

    def test_random_load_is_seed_deterministic(self):
        assert generate_random_load(1).segments() == generate_random_load(1).segments()

    def test_bursty_load_structure(self):
        load = bursty_load(burst_current=0.5, burst_jobs=3, rest_duration=5.0, cycles=2)
        assert load.job_count == 6
        idles = [epoch for epoch in load.epochs if epoch.is_idle]
        assert len(idles) == 2 and idles[0].duration == pytest.approx(5.0)

    def test_duty_cycle_load(self):
        load = duty_cycle_load(current=0.3, period=2.0, duty_cycle=0.25, cycles=4)
        assert load.total_duration == pytest.approx(8.0)
        assert load.total_charge == pytest.approx(0.3 * 0.5 * 4)

    def test_duty_cycle_validation(self):
        with pytest.raises(ValueError):
            duty_cycle_load(current=0.3, period=2.0, duty_cycle=1.5, cycles=1)

    def test_sensor_node_load_has_three_phases_per_cycle(self):
        load = sensor_node_load(cycles=5)
        assert len(load) == 15
        labels = {epoch.label for epoch in load.epochs}
        assert {"sense", "transmit", "sleep"} <= labels

    def test_invalid_generator_configs_rejected(self):
        with pytest.raises(ValueError):
            RandomLoadConfig(levels=())
        with pytest.raises(ValueError):
            bursty_load(0.5, burst_jobs=0, rest_duration=1.0, cycles=1)
        with pytest.raises(ValueError):
            sensor_node_load(cycles=0)


class TestMmppGenerator:
    def test_structure_and_step_rounding(self):
        load = mmpp_load(seed=3, on_current=0.5, total_duration=60.0)
        assert load.total_duration >= 60.0
        for epoch in load.epochs:
            assert epoch.current in (0.0, 0.5)
            assert (epoch.duration / 0.25) == pytest.approx(
                round(epoch.duration / 0.25)
            )
        assert any(epoch.label == "burst" for epoch in load.epochs)

    def test_seed_determinism(self):
        assert mmpp_load(seed=9).segments() == mmpp_load(seed=9).segments()
        assert mmpp_load(seed=9).segments() != mmpp_load(seed=10).segments()

    def test_rng_families_agree_on_the_same_uniform_stream(self):
        # The exponential draws are built from single uniforms, so a stdlib
        # Random and a numpy Generator producing the same uniforms would
        # produce the same load; here we check each family reproduces
        # itself exactly.
        import random

        import numpy as np

        stdlib = mmpp_load(rng=random.Random(5))
        assert stdlib.segments() == mmpp_load(rng=random.Random(5)).segments()
        numpy_rng = mmpp_load(rng=np.random.default_rng(5))
        assert (
            numpy_rng.segments()
            == mmpp_load(rng=np.random.default_rng(5)).segments()
        )

    def test_background_traffic_keeps_off_state_as_jobs(self):
        load = mmpp_load(seed=4, off_current=0.05, total_duration=40.0)
        labels = {epoch.label for epoch in load.epochs if epoch.is_job}
        assert "background" in labels
        assert all(epoch.is_job for epoch in load.epochs)

    def test_validation(self):
        with pytest.raises(ValueError):
            mmpp_load(seed=1, on_current=0.0)
        with pytest.raises(ValueError):
            mmpp_load(seed=1, mean_on=0.0)
        with pytest.raises(ValueError):
            mmpp_load(seed=1, total_duration=-1.0)
        with pytest.raises(ValueError):
            mmpp_load()  # neither seed nor rng
        with pytest.raises(ValueError):
            import random

            mmpp_load(seed=1, rng=random.Random(1))


class TestDutyCycledSensorGenerator:
    def test_transmit_every_kth_cycle(self):
        load = duty_cycled_sensor_load(transmit_every=4, cycles=8)
        transmits = [epoch for epoch in load.epochs if epoch.label == "transmit"]
        senses = [epoch for epoch in load.epochs if epoch.label == "sense"]
        assert len(senses) == 8
        assert len(transmits) == 2
        assert {epoch.label for epoch in load.epochs} == {
            "sense", "transmit", "sleep",
        }

    def test_unjittered_profile_is_deterministic_without_randomness(self):
        first = duty_cycled_sensor_load(cycles=6)
        second = duty_cycled_sensor_load(cycles=6)
        assert first.segments() == second.segments()

    def test_jitter_is_seed_deterministic_and_perturbs_sleep(self):
        jittered = duty_cycled_sensor_load(jitter=0.4, seed=2, cycles=20)
        again = duty_cycled_sensor_load(jitter=0.4, seed=2, cycles=20)
        plain = duty_cycled_sensor_load(cycles=20)
        assert jittered.segments() == again.segments()
        assert jittered.segments() != plain.segments()

    def test_validation(self):
        with pytest.raises(ValueError):
            duty_cycled_sensor_load(period=0.5)  # sense+transmit won't fit
        with pytest.raises(ValueError):
            duty_cycled_sensor_load(seed=1)  # seed without jitter
        with pytest.raises(ValueError):
            duty_cycled_sensor_load(jitter=0.5)  # jitter without seed/rng
        with pytest.raises(ValueError):
            duty_cycled_sensor_load(jitter=1.5, seed=1)
        with pytest.raises(ValueError):
            duty_cycled_sensor_load(cycles=0)


class TestTraceGenerator:
    def test_coalesces_equal_currents_and_maps_zero_to_idle(self):
        load = trace_load([[0.5, 1.0], [0.5, 2.0], [0.0, 1.0], [0.25, 3.0]])
        assert load.segments() == [(0.5, 3.0), (0.0, 1.0), (0.25, 3.0)]
        assert load.epochs[1].is_idle

    def test_repeat_coalesces_across_the_seam(self):
        load = trace_load([[0.5, 1.0], [0.0, 1.0], [0.5, 2.0]], repeat=2)
        # The trailing 0.5 of repeat 1 merges with the leading 0.5 of
        # repeat 2.
        assert load.segments() == [
            (0.5, 1.0), (0.0, 1.0), (0.5, 3.0), (0.0, 1.0), (0.5, 2.0),
        ]

    def test_time_scale_rescales_durations(self):
        seconds = trace_load([[0.5, 60.0], [0.0, 30.0]], time_scale=1.0 / 60.0)
        assert seconds.total_duration == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            trace_load([])
        with pytest.raises(ValueError):
            trace_load([[0.5]])
        with pytest.raises(ValueError):
            trace_load([[-0.1, 1.0]])
        with pytest.raises(ValueError):
            trace_load([[0.5, 0.0]])
        with pytest.raises(ValueError):
            trace_load([[0.5, 1.0]], repeat=0)
        with pytest.raises(ValueError):
            trace_load([[0.5, 1.0]], time_scale=0.0)


class TestGeneratorRegistry:
    def test_new_generators_are_registered(self):
        for name in ("mmpp", "duty-cycled-sensor", "trace"):
            assert name in LOAD_GENERATOR_REGISTRY

    def test_make_load_round_trips_the_registry(self):
        assert (
            make_load("mmpp", seed=3).segments() == mmpp_load(seed=3).segments()
        )
        assert (
            make_load("trace", trace=[[0.5, 1.0]]).segments()
            == trace_load([[0.5, 1.0]]).segments()
        )

    def test_unknown_generator_lists_known_names(self):
        with pytest.raises(ValueError, match="mmpp"):
            make_load("warp-core")
