"""Tests for the load model, the paper's test loads and the generators."""

import pytest

from repro.workloads.generator import (
    RandomLoadConfig,
    bursty_load,
    duty_cycle_load,
    generate_random_load,
    sensor_node_load,
)
from repro.workloads.load import Epoch, Load, idle_epoch, job_epoch
from repro.workloads.profiles import (
    HIGH_CURRENT,
    JOB_DURATION,
    LOW_CURRENT,
    PAPER_LOAD_NAMES,
    continuous_alternating_load,
    intermittent_load,
    paper_loads,
    random_intermittent_load,
)


class TestEpoch:
    def test_job_and_idle_classification(self):
        assert job_epoch(0.25, 1.0).is_job
        assert idle_epoch(1.0).is_idle

    def test_charge(self):
        assert job_epoch(0.5, 2.0).charge == pytest.approx(1.0)

    def test_invalid_epochs_rejected(self):
        with pytest.raises(ValueError):
            Epoch(current=-0.1, duration=1.0)
        with pytest.raises(ValueError):
            Epoch(current=0.1, duration=0.0)
        with pytest.raises(ValueError):
            job_epoch(0.0, 1.0)


class TestLoad:
    def make_load(self) -> Load:
        return Load(
            name="demo",
            epochs=(job_epoch(0.5, 1.0), idle_epoch(2.0), job_epoch(0.25, 1.0)),
        )

    def test_totals(self):
        load = self.make_load()
        assert load.total_duration == pytest.approx(4.0)
        assert load.total_charge == pytest.approx(0.75)
        assert load.job_count == 2

    def test_segments_round_trip(self):
        load = self.make_load()
        rebuilt = Load.from_segments("copy", load.segments())
        assert rebuilt.segments() == load.segments()

    def test_epoch_start_and_end_times(self):
        load = self.make_load()
        assert load.epoch_start_times() == [0.0, 1.0, 3.0]
        assert load.epoch_end_times() == [1.0, 3.0, 4.0]

    def test_current_at(self):
        load = self.make_load()
        assert load.current_at(0.5) == pytest.approx(0.5)
        assert load.current_at(2.0) == 0.0
        assert load.current_at(3.5) == pytest.approx(0.25)
        assert load.current_at(100.0) == 0.0

    def test_truncated(self):
        load = self.make_load()
        prefix = load.truncated(1.5)
        assert prefix.total_duration == pytest.approx(1.5)
        assert len(prefix) == 2

    def test_repeated_and_scaled(self):
        load = self.make_load()
        assert load.repeated(3).total_duration == pytest.approx(12.0)
        assert load.scaled_current(2.0).total_charge == pytest.approx(1.5)

    def test_empty_load_rejected(self):
        with pytest.raises(ValueError):
            Load(name="empty", epochs=())


class TestPaperLoads:
    def test_all_ten_loads_present(self, loads):
        assert set(loads) == set(PAPER_LOAD_NAMES)

    def test_job_levels_and_duration(self, loads):
        for name, load in loads.items():
            for epoch in load.epochs:
                if epoch.is_job:
                    assert epoch.current in (LOW_CURRENT, HIGH_CURRENT)
                    assert epoch.duration == pytest.approx(JOB_DURATION)

    def test_continuous_loads_have_no_idle(self, loads):
        for name in ("CL 250", "CL 500", "CL alt"):
            assert all(epoch.is_job for epoch in loads[name].epochs)

    def test_intermittent_idle_durations(self, loads):
        short_idles = [e.duration for e in loads["ILs 250"].epochs if e.is_idle]
        long_idles = [e.duration for e in loads["IL` 250"].epochs if e.is_idle]
        assert all(duration == pytest.approx(1.0) for duration in short_idles)
        assert all(duration == pytest.approx(2.0) for duration in long_idles)

    def test_alternating_load_starts_with_high_current(self, loads):
        # Calibrated against Table 3 (see EXPERIMENTS.md): the alternating
        # loads begin with the 500 mA job.
        jobs = [epoch for epoch in loads["CL alt"].epochs if epoch.is_job]
        assert jobs[0].current == pytest.approx(HIGH_CURRENT)
        assert jobs[1].current == pytest.approx(LOW_CURRENT)

    def test_loads_are_long_enough_for_the_paper_experiments(self, loads):
        # Table 5's longest lifetime is just under 80 minutes; the generated
        # loads must comfortably exceed that.
        for load in loads.values():
            assert load.total_duration >= 150.0

    def test_random_loads_are_reproducible(self):
        first = random_intermittent_load(seed=7)
        second = random_intermittent_load(seed=7)
        assert first.segments() == second.segments()
        different = random_intermittent_load(seed=8)
        assert first.segments() != different.segments()

    def test_profile_constructors_validate_inputs(self):
        with pytest.raises(ValueError):
            intermittent_load(0.25, idle_duration=1.0, total_duration=0.0)
        with pytest.raises(ValueError):
            continuous_alternating_load(total_duration=-1.0)


class TestGenerators:
    def test_random_load_respects_levels_and_step(self):
        config = RandomLoadConfig(levels=(0.2, 0.4), duration_step=0.25, total_duration=30.0)
        load = generate_random_load(seed=3, config=config)
        for epoch in load.epochs:
            if epoch.is_job:
                assert epoch.current in (0.2, 0.4)
            assert (epoch.duration / 0.25) == pytest.approx(round(epoch.duration / 0.25))
        assert load.total_duration >= 30.0

    def test_random_load_is_seed_deterministic(self):
        assert generate_random_load(1).segments() == generate_random_load(1).segments()

    def test_bursty_load_structure(self):
        load = bursty_load(burst_current=0.5, burst_jobs=3, rest_duration=5.0, cycles=2)
        assert load.job_count == 6
        idles = [epoch for epoch in load.epochs if epoch.is_idle]
        assert len(idles) == 2 and idles[0].duration == pytest.approx(5.0)

    def test_duty_cycle_load(self):
        load = duty_cycle_load(current=0.3, period=2.0, duty_cycle=0.25, cycles=4)
        assert load.total_duration == pytest.approx(8.0)
        assert load.total_charge == pytest.approx(0.3 * 0.5 * 4)

    def test_duty_cycle_validation(self):
        with pytest.raises(ValueError):
            duty_cycle_load(current=0.3, period=2.0, duty_cycle=1.5, cycles=1)

    def test_sensor_node_load_has_three_phases_per_cycle(self):
        load = sensor_node_load(cycles=5)
        assert len(load) == 15
        labels = {epoch.label for epoch in load.epochs}
        assert {"sense", "transmit", "sleep"} <= labels

    def test_invalid_generator_configs_rejected(self):
        with pytest.raises(ValueError):
            RandomLoadConfig(levels=())
        with pytest.raises(ValueError):
            bursty_load(0.5, burst_jobs=0, rest_duration=1.0, cycles=1)
        with pytest.raises(ValueError):
            sensor_node_load(cycles=0)
