"""Unit tests for the battery parameter sets."""

import pytest

from repro.kibam.parameters import B1, B2, ITSY_LIION, BatteryParameters


class TestBatteryParameters:
    def test_paper_presets_match_section_5(self):
        assert B1.capacity == pytest.approx(5.5)
        assert B2.capacity == pytest.approx(11.0)
        for params in (B1, B2, ITSY_LIION):
            assert params.c == pytest.approx(0.166)
            assert params.k_prime == pytest.approx(0.122)

    def test_k_is_consistent_with_k_prime(self):
        assert B1.k == pytest.approx(B1.k_prime * B1.c * (1 - B1.c))

    def test_well_capacities_sum_to_capacity(self):
        assert B1.available_capacity + B1.bound_capacity == pytest.approx(B1.capacity)
        assert B1.available_capacity == pytest.approx(0.166 * 5.5)

    def test_c_permille_used_by_the_ta_guard(self):
        assert B1.c_permille == 166

    def test_scaled_preserves_dynamics_parameters(self):
        scaled = B1.scaled(10.0)
        assert scaled.capacity == pytest.approx(55.0)
        assert scaled.c == B1.c
        assert scaled.k_prime == B1.k_prime

    def test_steady_state_height_difference(self):
        # delta_inf = I / (c * k'); at 250 mA this is about 12.34 Amin.
        assert B1.steady_state_height_difference(0.25) == pytest.approx(
            0.25 / (0.166 * 0.122)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0.0, "c": 0.5, "k_prime": 0.1},
            {"capacity": -1.0, "c": 0.5, "k_prime": 0.1},
            {"capacity": 1.0, "c": 0.0, "k_prime": 0.1},
            {"capacity": 1.0, "c": 1.0, "k_prime": 0.1},
            {"capacity": 1.0, "c": 0.5, "k_prime": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatteryParameters(**kwargs)

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            B1.scaled(0.0)

    def test_parameters_are_immutable(self):
        with pytest.raises(Exception):
            B1.capacity = 1.0  # type: ignore[misc]
