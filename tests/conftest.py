"""Shared fixtures for the test suite.

The fixtures favour small, fast configurations: a reduced-capacity battery
and short loads keep the optimal searches and TA-KiBaM explorations cheap,
while the paper's B1/B2 parameters are used where the tests compare against
published numbers.
"""

from __future__ import annotations

import pytest

from repro.kibam.parameters import B1, B2, BatteryParameters
from repro.workloads.load import Epoch, Load
from repro.workloads.profiles import paper_loads


@pytest.fixture(scope="session")
def b1() -> BatteryParameters:
    return B1


@pytest.fixture(scope="session")
def b2() -> BatteryParameters:
    return B2


@pytest.fixture(scope="session")
def small_battery() -> BatteryParameters:
    """A reduced-capacity Itsy cell: same dynamics, much shorter lifetimes."""
    return BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")


@pytest.fixture(scope="session")
def loads() -> dict:
    """The paper's ten test loads (shared across the session; loads are immutable)."""
    return paper_loads()


@pytest.fixture(scope="session")
def short_alternating_load() -> Load:
    """A short ILs-alt style load that exhausts two small batteries quickly."""
    epochs = []
    for index in range(20):
        current = 0.5 if index % 2 == 0 else 0.25
        epochs.append(Epoch(current=current, duration=1.0))
        epochs.append(Epoch(current=0.0, duration=1.0))
    return Load(name="short-ils-alt", epochs=tuple(epochs))


@pytest.fixture(scope="session")
def tiny_load() -> Load:
    """A very short continuous load used by the TA-KiBaM optimal tests."""
    epochs = []
    for _ in range(12):
        epochs.append(Epoch(current=0.5, duration=1.0))
        epochs.append(Epoch(current=0.0, duration=1.0))
    return Load(name="tiny", epochs=tuple(epochs))
