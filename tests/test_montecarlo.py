"""Tests for the Monte-Carlo random-load analysis."""

import pytest

from repro.analysis.montecarlo import (
    LifetimeDistribution,
    lifetime_distribution,
    render_distributions,
    run_montecarlo,
)
from repro.kibam.parameters import BatteryParameters
from repro.workloads.generator import RandomLoadConfig

SMALL = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")

#: A compact configuration so every sampled load exhausts the small batteries
#: quickly and the whole sweep stays fast.
FAST_CONFIG = RandomLoadConfig(
    levels=(0.25, 0.5),
    job_duration_range=(0.5, 1.0),
    idle_duration_range=(0.0, 1.0),
    total_duration=40.0,
    duration_step=0.25,
)


class TestLifetimeDistribution:
    def test_summary_statistics(self):
        dist = LifetimeDistribution.from_samples("demo", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert dist.samples == 5
        assert dist.mean == pytest.approx(3.0)
        assert dist.minimum == 1.0 and dist.maximum == 5.0
        assert dist.median == pytest.approx(3.0)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            LifetimeDistribution.from_samples("demo", [])


class TestMonteCarloSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return lifetime_distribution(
            [SMALL, SMALL], n_samples=8, config=FAST_CONFIG, seed=11
        )

    def test_every_policy_gets_one_lifetime_per_sample(self, result):
        for lifetimes in result.per_sample.values():
            assert len(lifetimes) == result.n_samples

    def test_policy_ordering_holds_in_distribution(self, result):
        sequential = result.distributions["sequential"]
        best = result.distributions["best-of-two"]
        assert sequential.mean <= best.mean + 1e-9

    def test_gain_metric(self, result):
        gain = result.mean_gain_percent("best-of-two", "sequential")
        assert gain >= -1e-9

    def test_reproducibility(self):
        first = lifetime_distribution([SMALL, SMALL], n_samples=3, config=FAST_CONFIG, seed=5)
        second = lifetime_distribution([SMALL, SMALL], n_samples=3, config=FAST_CONFIG, seed=5)
        assert first.per_sample == second.per_sample

    def test_optional_optimal_column(self):
        result = lifetime_distribution(
            [SMALL, SMALL],
            n_samples=2,
            config=FAST_CONFIG,
            seed=3,
            include_optimal=True,
            optimal_max_nodes=500,
        )
        assert "optimal" in result.distributions
        for optimal, best in zip(result.per_sample["optimal"], result.per_sample["best-of-two"]):
            assert optimal >= best - 1e-6

    def test_rendering(self, result):
        text = render_distributions(result)
        assert "best-of-two" in text and "median" in text

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            lifetime_distribution([SMALL], n_samples=0)


class TestWorkerParameterThreading:
    """Regression: the multiprocessing worker partials dropped the solver
    settings -- ``n_workers > 1`` silently simulated the hard-coded 0.01
    dKiBaM grid and 0.005 dominance tolerance whatever the caller asked
    for.  Every setting must now thread through both the policy worker and
    the optimal worker, so a parallel run reproduces the inline scalar path
    exactly at a non-default grid."""

    KWARGS = dict(
        n_samples=2,
        policies=("sequential", "optimal"),
        config=FAST_CONFIG,
        seed=2,
        engine="scalar",
        model="discrete",
        time_step=0.05,
        charge_unit=0.05,
        dominance_tolerance=0.0,
        optimal_max_nodes=4000,
    )

    def test_parallel_workers_honor_solver_settings(self):
        inline = run_montecarlo([SMALL, SMALL], n_workers=1, **self.KWARGS)
        parallel = run_montecarlo([SMALL, SMALL], n_workers=2, **self.KWARGS)
        assert parallel.per_sample == inline.per_sample

    def test_non_default_grid_changes_the_numbers(self):
        """Sanity guard for the regression test above: at the reference
        grid the lifetimes differ from the 0.05 grid, so a worker that
        fell back to the defaults could not pass the parity assertion."""
        coarse = run_montecarlo([SMALL, SMALL], n_workers=1, **self.KWARGS)
        reference = run_montecarlo(
            [SMALL, SMALL],
            n_workers=1,
            **{**self.KWARGS, "time_step": 0.01, "charge_unit": 0.01},
        )
        assert coarse.per_sample != reference.per_sample
