"""Tests for the Monte-Carlo random-load analysis."""

import pytest

from repro.analysis.montecarlo import (
    LifetimeDistribution,
    lifetime_distribution,
    render_distributions,
)
from repro.kibam.parameters import BatteryParameters
from repro.workloads.generator import RandomLoadConfig

SMALL = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")

#: A compact configuration so every sampled load exhausts the small batteries
#: quickly and the whole sweep stays fast.
FAST_CONFIG = RandomLoadConfig(
    levels=(0.25, 0.5),
    job_duration_range=(0.5, 1.0),
    idle_duration_range=(0.0, 1.0),
    total_duration=40.0,
    duration_step=0.25,
)


class TestLifetimeDistribution:
    def test_summary_statistics(self):
        dist = LifetimeDistribution.from_samples("demo", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert dist.samples == 5
        assert dist.mean == pytest.approx(3.0)
        assert dist.minimum == 1.0 and dist.maximum == 5.0
        assert dist.median == pytest.approx(3.0)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            LifetimeDistribution.from_samples("demo", [])


class TestMonteCarloSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return lifetime_distribution(
            [SMALL, SMALL], n_samples=8, config=FAST_CONFIG, seed=11
        )

    def test_every_policy_gets_one_lifetime_per_sample(self, result):
        for lifetimes in result.per_sample.values():
            assert len(lifetimes) == result.n_samples

    def test_policy_ordering_holds_in_distribution(self, result):
        sequential = result.distributions["sequential"]
        best = result.distributions["best-of-two"]
        assert sequential.mean <= best.mean + 1e-9

    def test_gain_metric(self, result):
        gain = result.mean_gain_percent("best-of-two", "sequential")
        assert gain >= -1e-9

    def test_reproducibility(self):
        first = lifetime_distribution([SMALL, SMALL], n_samples=3, config=FAST_CONFIG, seed=5)
        second = lifetime_distribution([SMALL, SMALL], n_samples=3, config=FAST_CONFIG, seed=5)
        assert first.per_sample == second.per_sample

    def test_optional_optimal_column(self):
        result = lifetime_distribution(
            [SMALL, SMALL],
            n_samples=2,
            config=FAST_CONFIG,
            seed=3,
            include_optimal=True,
            optimal_max_nodes=500,
        )
        assert "optimal" in result.distributions
        for optimal, best in zip(result.per_sample["optimal"], result.per_sample["best-of-two"]):
            assert optimal >= best - 1e-6

    def test_rendering(self, result):
        text = render_distributions(result)
        assert "best-of-two" in text and "median" in text

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            lifetime_distribution([SMALL], n_samples=0)
