"""Tests for the batched branch-and-bound optimal search.

The contract under test (see ``repro.engine.optimal_batch``):

* **parity** -- on certified searches (``dominance_tolerance=0``, no node
  cap) the batched search returns the same lifetime as the scalar
  :class:`repro.core.optimal.OptimalScheduler` (within 1e-9 minutes for the
  analytical model, in *exact ticks* for the discrete model) and the same
  ``complete`` flag, on all ten paper loads;
* **bounded node inflation** -- best-first expansion against a per-batch
  incumbent may expand more nodes than the depth-first scalar search, but
  only by a small factor (documented bound: 3x + one batch);
* **shared pruning semantics** -- the vectorized dominance archive takes
  exactly the same admit/reject decisions as the scalar reference archive;
* **exact dKiBaM stepping** -- the lane-parallel segment kernel reproduces
  ``DiscreteKibam.run_segment`` unit for unit, tick for tick.

Searches use reduced-capacity batteries (0.75x B1) and, for the discrete
backend, a coarser ``T = Gamma = 0.05`` grid so the scalar reference stays
fast; the parity contract is discretization-independent (the bound slack
scales with the coarseness on both sides, see ``discrete_bound_slack_for``).
"""

import numpy as np
import pytest

from repro.core.battery import make_battery_models
from repro.core.optimal import (
    DominanceArchive,
    OptimalScheduler,
    find_optimal_schedule,
    group_permutations,
    model_symmetry_groups,
    parameter_symmetry_groups,
)
from repro.core.policies import FixedAssignmentPolicy
from repro.core.simulator import simulate_policy
from repro.engine.optimal_batch import (
    BatchOptimalScheduler,
    DecisionTrace,
    FrontierArrays,
    VectorDominanceArchive,
    discrete_segment_array,
    find_optimal_schedule_batched,
    optimal_schedules_batch,
)
from repro.kibam.discrete import DiscreteBatteryState, DiscreteKibam
from repro.kibam.parameters import B1, BatteryParameters
from repro.workloads.load import Epoch, Load
from repro.workloads.profiles import PAPER_LOAD_NAMES, paper_loads

#: Reduced-capacity pair: same dynamics as 2xB1, much smaller searches.
SCALED = B1.scaled(0.75)

#: Coarse dKiBaM grid for the discrete parity runs (scalar reference cost).
COARSE = dict(time_step=0.05, charge_unit=0.05)

#: Documented node-inflation bound of the batched best-first expansion:
#: a batch is popped against one incumbent while the scalar depth-first
#: search re-checks an (often improved) incumbent at every node.
NODE_FACTOR = 3
NODE_SLACK = 64

#: Small-fleet building blocks: two distinct parameter groups sharing the
#: B1 chemistry, sized so N-battery fleets die within a short heavy load
#: and certified scalar searches stay fast at every fleet width.
FLEET_A = BatteryParameters(capacity=0.5, c=0.166, k_prime=0.122)
FLEET_B = BatteryParameters(capacity=0.35, c=0.166, k_prime=0.122)

#: The fleet parity matrix: identical subgroups at every width, so the
#: group-wise symmetry reduction is exercised (not just tolerated).
FLEETS = {
    3: (FLEET_A, FLEET_A, FLEET_B),
    4: (FLEET_A, FLEET_A, FLEET_B, FLEET_B),
    8: (FLEET_A,) * 4 + (FLEET_B,) * 4,
}


def fleet_load(n_epochs=12):
    """A heavy job/idle alternation that exhausts every FLEETS fleet."""
    epochs = []
    for index in range(n_epochs):
        epochs.append(Epoch(current=1.0 if index % 2 == 0 else 0.5, duration=1.0))
        epochs.append(Epoch(current=0.0, duration=0.5))
    return Load(name="fleet-alt", epochs=tuple(epochs))


@pytest.fixture(scope="module")
def all_loads():
    return paper_loads()


class TestAnalyticalParity:
    @pytest.mark.parametrize("load_name", PAPER_LOAD_NAMES)
    def test_lifetime_complete_and_nodes_match_scalar(self, all_loads, load_name):
        load = all_loads[load_name]
        scalar = find_optimal_schedule([SCALED, SCALED], load)
        batched = find_optimal_schedule_batched([SCALED, SCALED], load)
        assert batched.lifetime == pytest.approx(scalar.lifetime, abs=1e-9)
        assert batched.complete == scalar.complete
        assert batched.complete
        assert batched.backend == "analytical"
        assert (
            batched.nodes_expanded
            <= NODE_FACTOR * scalar.nodes_expanded + NODE_SLACK
        )

    def test_batched_assignment_replays_to_the_reported_lifetime(self, all_loads):
        load = all_loads["ILs alt"]
        batched = find_optimal_schedule_batched([SCALED, SCALED], load)
        replay = simulate_policy(
            [SCALED, SCALED], load, FixedAssignmentPolicy(batched.assignment)
        )
        assert replay.lifetime_or_raise() == pytest.approx(batched.lifetime)

    def test_batch_size_does_not_change_the_result(self, all_loads):
        load = all_loads["CL 250"]
        results = [
            BatchOptimalScheduler(
                [SCALED, SCALED], load, batch_size=batch_size
            ).search()
            for batch_size in (1, 4, 64)
        ]
        lifetimes = {round(result.lifetime, 12) for result in results}
        assert len(lifetimes) == 1

    def test_heterogeneous_capacities_share_the_pooling_bound(self, all_loads):
        small = BatteryParameters(capacity=2.0, c=0.166, k_prime=0.122)
        large = BatteryParameters(capacity=4.0, c=0.166, k_prime=0.122)
        load = all_loads["ILs 500"]
        scalar = find_optimal_schedule([small, large], load)
        batched = find_optimal_schedule_batched([small, large], load)
        assert batched.lifetime == pytest.approx(scalar.lifetime, abs=1e-9)
        assert batched.complete == scalar.complete

    def test_heterogeneous_chemistry_uses_the_total_charge_bound(self):
        # Different c/k' pairs cannot pool; both searches must fall back to
        # the total-charge bound and still agree.
        a = BatteryParameters(capacity=1.5, c=0.166, k_prime=0.122)
        b = BatteryParameters(capacity=1.5, c=0.25, k_prime=0.2)
        epochs = tuple(
            Epoch(current=0.5 if i % 2 == 0 else 0.0, duration=1.0)
            for i in range(24)
        )
        load = Load(name="hetero", epochs=epochs)
        scalar = find_optimal_schedule([a, b], load)
        batched = find_optimal_schedule_batched([a, b], load)
        assert batched.lifetime == pytest.approx(scalar.lifetime, abs=1e-9)

    def test_single_battery_degenerates_to_sequential(self, all_loads):
        load = all_loads["ILs 500"]
        batched = find_optimal_schedule_batched([SCALED], load)
        sequential = simulate_policy([SCALED], load, "sequential").lifetime_or_raise()
        assert batched.lifetime == pytest.approx(sequential)

    def test_linear_model_falls_back_to_the_scalar_search(self, all_loads):
        load = all_loads["CL 500"]
        scalar = find_optimal_schedule([SCALED, SCALED], load, backend="linear")
        batched = find_optimal_schedule_batched([SCALED, SCALED], load, model="linear")
        assert batched.backend == "linear"
        assert batched.lifetime == pytest.approx(scalar.lifetime, abs=1e-9)


class TestDiscreteParity:
    @pytest.mark.parametrize("load_name", PAPER_LOAD_NAMES)
    def test_exact_tick_parity_with_the_scalar_search(self, all_loads, load_name):
        load = all_loads[load_name]
        scalar = find_optimal_schedule(
            [SCALED, SCALED], load, backend="discrete", **COARSE
        )
        batched = find_optimal_schedule_batched(
            [SCALED, SCALED], load, model="discrete", **COARSE
        )
        # Both lifetimes come from a scalar replay of the winning
        # assignment, so the exact contract is equal *tick counts* (two
        # co-optimal assignments may split the same ticks into different
        # float spans).
        time_step = COARSE["time_step"]
        assert round(batched.lifetime / time_step) == round(
            scalar.lifetime / time_step
        )
        assert batched.complete == scalar.complete
        assert batched.complete
        assert batched.backend == "discrete"
        assert (
            batched.nodes_expanded
            <= NODE_FACTOR * scalar.nodes_expanded + NODE_SLACK
        )

    def test_discrete_result_replays_exactly(self, all_loads):
        load = all_loads["ILs alt"]
        batched = find_optimal_schedule_batched(
            [SCALED, SCALED], load, model="discrete", **COARSE
        )
        replay = simulate_policy(
            [SCALED, SCALED],
            load,
            FixedAssignmentPolicy(batched.assignment),
            backend="discrete",
            **COARSE,
        )
        assert replay.lifetime_or_raise() == batched.lifetime


class TestGroupSymmetry:
    """Group-wise symmetry reduction on fleets with identical subgroups.

    The contract: permuted-duplicate schedules are pruned (node counts
    drop) while the reported result stays *bitwise* unchanged -- permuting
    identical batteries produces the same float trajectory, so the pruned
    search's incumbent sequence is a subsequence of the unpruned one.
    """

    def fleet(self):
        # Two identical batteries plus one distinct: neither the legacy
        # all-identical fast path nor the no-symmetry path covers this.
        return [FLEET_A, FLEET_A, FLEET_B]

    def test_scalar_search_prunes_permutations_bitwise_unchanged(self):
        load = fleet_load(8)
        pruned = find_optimal_schedule(self.fleet(), load)
        full = find_optimal_schedule(self.fleet(), load, use_symmetry=False)
        assert pruned.complete and full.complete
        assert pruned.lifetime == full.lifetime
        assert pruned.residual_charge == pytest.approx(full.residual_charge)
        assert pruned.nodes_expanded < full.nodes_expanded

    def test_batched_search_prunes_permutations_bitwise_unchanged(self):
        load = fleet_load(8)
        pruned = find_optimal_schedule_batched(self.fleet(), load)
        full = find_optimal_schedule_batched(self.fleet(), load, use_symmetry=False)
        assert pruned.complete and full.complete
        assert pruned.lifetime == full.lifetime
        assert pruned.nodes_expanded < full.nodes_expanded

    def test_pruned_fleet_result_replays(self):
        load = fleet_load(8)
        result = find_optimal_schedule_batched(self.fleet(), load)
        replay = simulate_policy(
            self.fleet(), load, FixedAssignmentPolicy(result.assignment)
        )
        assert replay.lifetime_or_raise() == pytest.approx(result.lifetime)

    def test_symmetry_never_changes_an_all_distinct_fleet(self):
        distinct = [
            BatteryParameters(capacity=0.5, c=0.166, k_prime=0.122),
            BatteryParameters(capacity=0.4, c=0.166, k_prime=0.122),
            BatteryParameters(capacity=0.3, c=0.166, k_prime=0.122),
        ]
        load = fleet_load(8)
        on = find_optimal_schedule_batched(distinct, load)
        off = find_optimal_schedule_batched(distinct, load, use_symmetry=False)
        assert on.lifetime == off.lifetime
        assert on.nodes_expanded == off.nodes_expanded

    def test_group_resolution_helpers(self):
        assert parameter_symmetry_groups([FLEET_A, FLEET_A, FLEET_B]) == (0, 0, 1)
        assert parameter_symmetry_groups([FLEET_A, FLEET_B, FLEET_A]) == (0, 1, 0)
        models = make_battery_models([FLEET_A, FLEET_B, FLEET_A])
        assert model_symmetry_groups(models) == (0, 1, 0)
        # Mixed groups multiply out; oversized products fall back to the
        # identity rather than enumerating thousands of permutations.
        assert len(group_permutations((0, 0, 1))) == 2
        assert len(group_permutations((0, 0, 1, 1))) == 4
        assert group_permutations((0,) * 8) == [tuple(range(8))]


class TestFleetParity:
    """Satellite matrix: scalar/batched agreement at N in {3, 4, 8}."""

    @pytest.mark.parametrize("n_batteries", sorted(FLEETS))
    def test_analytical_fleet_parity(self, n_batteries):
        fleet = list(FLEETS[n_batteries])
        load = fleet_load()
        scalar = find_optimal_schedule(fleet, load)
        batched = find_optimal_schedule_batched(fleet, load)
        assert batched.lifetime == pytest.approx(scalar.lifetime, abs=1e-9)
        assert batched.complete == scalar.complete
        assert batched.complete
        assert (
            batched.nodes_expanded
            <= NODE_FACTOR * scalar.nodes_expanded + NODE_SLACK
        )

    @pytest.mark.parametrize("n_batteries", sorted(FLEETS))
    def test_discrete_fleet_parity_in_exact_ticks(self, n_batteries):
        fleet = list(FLEETS[n_batteries])
        load = fleet_load(8)
        scalar = find_optimal_schedule(fleet, load, backend="discrete", **COARSE)
        batched = find_optimal_schedule_batched(
            fleet, load, model="discrete", **COARSE
        )
        time_step = COARSE["time_step"]
        assert round(batched.lifetime / time_step) == round(
            scalar.lifetime / time_step
        )
        assert batched.complete == scalar.complete
        assert batched.complete

    @pytest.mark.parametrize("n_batteries", sorted(FLEETS))
    def test_fleet_optimal_dominates_heuristics(self, n_batteries):
        fleet = list(FLEETS[n_batteries])
        load = fleet_load()
        optimal = find_optimal_schedule_batched(fleet, load)
        for policy in ("sequential", "round-robin", "best-of-two"):
            heuristic = simulate_policy(fleet, load, policy).lifetime_or_raise()
            assert optimal.lifetime >= heuristic - 1e-9, policy


class TestDominanceAblation:
    def small_load(self):
        epochs = tuple(
            Epoch(current=0.5 if i % 2 == 0 else 0.25, duration=1.0)
            for i in range(10)
        )
        return Load(name="small-alt", epochs=epochs)

    def small_pair(self):
        small = BatteryParameters(capacity=1.5, c=0.166, k_prime=0.122)
        return [small, small]

    def test_batched_search_without_dominance_matches_with(self):
        load, pair = self.small_load(), self.small_pair()
        with_dominance = find_optimal_schedule_batched(pair, load)
        without = find_optimal_schedule_batched(pair, load, use_dominance=False)
        assert without.lifetime == pytest.approx(with_dominance.lifetime, abs=1e-9)
        assert without.nodes_expanded >= with_dominance.nodes_expanded

    def test_undominated_batched_search_matches_undominated_scalar(self):
        load, pair = self.small_load(), self.small_pair()
        scalar = find_optimal_schedule(pair, load, use_dominance=False)
        batched = find_optimal_schedule_batched(pair, load, use_dominance=False)
        assert batched.lifetime == pytest.approx(scalar.lifetime, abs=1e-9)
        assert batched.complete == scalar.complete

    def test_undominated_discrete_parity(self):
        load, pair = self.small_load(), self.small_pair()
        scalar = find_optimal_schedule(
            pair, load, backend="discrete", use_dominance=False, **COARSE
        )
        batched = find_optimal_schedule_batched(
            pair, load, model="discrete", use_dominance=False, **COARSE
        )
        time_step = COARSE["time_step"]
        assert round(batched.lifetime / time_step) == round(
            scalar.lifetime / time_step
        )


class TestSearchControls:
    def test_max_nodes_marks_the_result_incomplete(self, all_loads):
        load = all_loads["ILs alt"]
        capped = find_optimal_schedule_batched([SCALED, SCALED], load, max_nodes=2)
        full = find_optimal_schedule_batched([SCALED, SCALED], load)
        assert not capped.complete
        assert capped.lifetime <= full.lifetime + 1e-9
        best = simulate_policy([SCALED, SCALED], load, "best-of-two").lifetime_or_raise()
        assert capped.lifetime >= best - 1e-9  # never worse than the incumbent

    def test_dominance_tolerance_stays_near_the_certified_result(self, all_loads):
        load = all_loads["ILs alt"]
        exact = find_optimal_schedule_batched([SCALED, SCALED], load)
        relaxed = find_optimal_schedule_batched(
            [SCALED, SCALED], load, dominance_tolerance=0.005
        )
        assert relaxed.lifetime == pytest.approx(exact.lifetime, rel=0.005)

    def test_parameter_validation(self, all_loads):
        load = all_loads["CL 500"]
        with pytest.raises(ValueError):
            BatchOptimalScheduler([], load)
        with pytest.raises(ValueError):
            BatchOptimalScheduler([SCALED], load, dominance_tolerance=-1.0)
        with pytest.raises(ValueError):
            BatchOptimalScheduler([SCALED], load, batch_size=0)
        with pytest.raises(ValueError):
            BatchOptimalScheduler([SCALED], load, model="linear")

    def test_batch_helper_runs_one_search_per_load(self, all_loads):
        loads = [all_loads["CL 500"], all_loads["ILs 500"]]
        results = optimal_schedules_batch(loads, [SCALED, SCALED])
        assert len(results) == 2
        singles = [
            find_optimal_schedule_batched(
                [SCALED, SCALED], load, max_nodes=20_000, dominance_tolerance=0.005
            )
            for load in loads
        ]
        for got, expected in zip(results, singles):
            assert got.lifetime == pytest.approx(expected.lifetime, abs=1e-9)

    def test_capped_searches_fall_back_to_the_scalar_dfs(self, all_loads):
        """A capped best-first frontier certifies a shallow lower bound; the
        helper must re-drive it through the depth-first scalar search and
        keep the better *whole* result (lifetime, decisions and residual
        from one schedule, not a mix)."""
        load = all_loads["ILs alt"]
        capped_raw = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0,
            scalar_fallback=False,
        )[0]
        assert not capped_raw.complete
        with_fallback = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0
        )[0]
        scalar = find_optimal_schedule(
            [SCALED, SCALED], load, max_nodes=2, dominance_tolerance=0.0
        )
        assert with_fallback.lifetime >= max(capped_raw.lifetime, scalar.lifetime) - 1e-9
        # Internal consistency: the reported metadata belongs to the
        # reported schedule.
        replay = simulate_policy(
            [SCALED, SCALED], load, FixedAssignmentPolicy(with_fallback.assignment)
        )
        assert replay.lifetime_or_raise() == pytest.approx(with_fallback.lifetime)
        assert with_fallback.residual_charge == pytest.approx(replay.residual_charge)
        assert len(with_fallback.assignment) == replay.decisions

    def test_fallback_upgrades_to_certified_when_the_scalar_completes(
        self, all_loads, monkeypatch
    ):
        """If the depth-first fallback *finishes* inside the node budget its
        result is the certified optimum and replaces the capped one, even
        when the lifetimes tie."""
        import repro.engine.parallel as parallel

        load = all_loads["ILs alt"]
        certified = find_optimal_schedule([SCALED, SCALED], load)
        assert certified.complete
        monkeypatch.setattr(
            parallel, "optimal_schedules_chunk", lambda *args, **kwargs: [certified]
        )
        result = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0
        )[0]
        assert result is certified

    def test_fallback_never_discards_a_longer_batched_schedule(
        self, all_loads, monkeypatch
    ):
        """A 'complete' DFS under tolerance merging can still return a worse
        schedule than the capped batched search found; the lifetime
        comparison must win over the completeness flag."""
        import dataclasses

        import repro.engine.parallel as parallel

        load = all_loads["ILs alt"]
        capped = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0,
            scalar_fallback=False,
        )[0]
        worse_but_certified = dataclasses.replace(
            find_optimal_schedule([SCALED, SCALED], load),
            lifetime=capped.lifetime - 0.5,
            complete=True,
        )
        monkeypatch.setattr(
            parallel,
            "optimal_schedules_chunk",
            lambda *args, **kwargs: [worse_but_certified],
        )
        result = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0
        )[0]
        assert result.lifetime == capped.lifetime
        assert not result.complete


class TestResultMetadata:
    def test_as_simulation_result_carries_the_winning_leaf(self, all_loads):
        """Regression: optimal rows used to report nan residual charge and
        empty final states, forcing downstream tables to special-case them."""
        load = all_loads["ILs alt"]
        for result in (
            find_optimal_schedule([SCALED, SCALED], load),
            find_optimal_schedule_batched([SCALED, SCALED], load),
        ):
            simulation = result.as_simulation_result()
            assert np.isfinite(simulation.residual_charge)
            assert len(simulation.final_states) == 2
            assert simulation.decisions == len(result.assignment)
            replay = simulate_policy(
                [SCALED, SCALED], load, FixedAssignmentPolicy(result.assignment)
            )
            assert simulation.residual_charge == pytest.approx(replay.residual_charge)

    def test_incumbent_policy_is_reported(self, all_loads):
        result = find_optimal_schedule_batched([SCALED, SCALED], all_loads["ILs 500"])
        assert result.incumbent_policy in {"sequential", "round-robin", "best-of-two"}
        assert result.nodes_expanded >= 0


class TestFrontierArrays:
    """The structure-of-arrays frontier pool behind both search backends."""

    def _pool(self, capacity=4):
        return FrontierArrays(
            {"state": ((2, 2), np.float64), "epoch": ((), np.int64)},
            capacity=capacity,
        )

    def test_allocate_zero_is_a_noop(self):
        pool = self._pool(capacity=4)
        assert pool.allocate(0).shape == (0,)
        # The free-list must be untouched: all four slots still available.
        assert sorted(pool.allocate(4).tolist()) == [0, 1, 2, 3]

    def test_allocate_release_recycles_slots(self):
        pool = self._pool(capacity=4)
        first = pool.allocate(3)
        assert sorted(first.tolist()) == [0, 1, 2]
        pool.release(first[:2])
        second = pool.allocate(2)
        # Recycled slots come back before any growth happens.
        assert set(second.tolist()) <= {0, 1, 2}
        assert pool.capacity == 4

    def test_grow_by_doubling_preserves_data(self):
        pool = self._pool(capacity=2)
        slots = pool.allocate(2)
        pool.state[slots] = np.arange(8, dtype=np.float64).reshape(2, 2, 2)
        pool.epoch[slots] = [7, 9]
        more = pool.allocate(5)  # forces two doublings
        assert pool.capacity == 8
        assert more.shape[0] == 5
        np.testing.assert_array_equal(
            pool.state[slots], np.arange(8, dtype=np.float64).reshape(2, 2, 2)
        )
        np.testing.assert_array_equal(pool.epoch[slots], [7, 9])
        # No slot handed out twice.
        assert len(set(slots.tolist()) | set(more.tolist())) == 7

    def test_decision_trace_reconstructs_assignments(self):
        trace = DecisionTrace(capacity=2)
        roots = trace.append(np.array([-1, -1]), np.array([0, 1]))
        kids = trace.append(np.asarray(roots), np.array([1, 0]))
        grand = trace.append(np.array([kids[0]]), np.array([1]))
        assert trace.assignment(-1) == ()
        assert trace.assignment(roots[0]) == (0,)
        assert trace.assignment(kids[1]) == (1, 0)
        assert trace.assignment(grand[0]) == (0, 1, 1)


class TestSeededSearch:
    """Cross-grid-point incumbent seeding: prunes work, never results."""

    def test_seeded_certified_search_matches_fresh_exactly(self, all_loads):
        smaller = B1.scaled(0.7)
        for load_name in ("ILs alt", "CL alt", "CL 250"):
            load = all_loads[load_name]
            prev = find_optimal_schedule_batched([smaller, smaller], load)
            fresh = find_optimal_schedule_batched([SCALED, SCALED], load)
            seeded = find_optimal_schedule_batched(
                [SCALED, SCALED], load, seed_assignment=prev.assignment
            )
            # Bitwise equality, not approx: seeding must not change the
            # reported schedule's lifetime at all.
            assert seeded.lifetime == fresh.lifetime
            assert seeded.complete == fresh.complete
            assert seeded.residual_charge == fresh.residual_charge
            assert len(seeded.assignment) == len(fresh.assignment)
            assert seeded.nodes_expanded <= fresh.nodes_expanded

    def test_unreplayable_seed_is_ignored(self, all_loads):
        load = all_loads["ILs alt"]
        fresh = find_optimal_schedule_batched([SCALED, SCALED], load)
        # A nonsense seed that immediately picks an out-of-range... rather:
        # a seed that always picks battery 0 eventually hits it empty; the
        # truncation loop must degrade gracefully to (at worst) no seed.
        seeded = find_optimal_schedule_batched(
            [SCALED, SCALED], load, seed_assignment=(0,) * 40
        )
        assert seeded.lifetime == fresh.lifetime
        assert seeded.complete == fresh.complete

    def test_capped_seeded_search_rerenders_the_fresh_result(self, all_loads):
        """A capped search's outcome depends on which nodes fit the budget,
        so `optimal_schedules_batch` re-runs seeded-and-capped searches
        without the seed: seeded sweeps stay bitwise-identical to fresh
        sweeps even where the node cap bites."""
        load = all_loads["ILs alt"]
        prev = find_optimal_schedule_batched([B1.scaled(0.7)] * 2, load)
        fresh = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0
        )[0]
        seeded = optimal_schedules_batch(
            [load], [SCALED, SCALED], max_nodes=2, dominance_tolerance=0.0,
            seed_assignment=prev.assignment,
        )[0]
        assert seeded.lifetime == fresh.lifetime
        assert seeded.complete == fresh.complete
        assert seeded.assignment == fresh.assignment
        # The seeded attempt's work is still accounted for.
        assert seeded.nodes_expanded >= fresh.nodes_expanded


class TestVectorDominanceArchive:
    def _random_matrices(self, rng, n, n_batteries=2, n_components=3):
        matrices = rng.integers(-3, 4, size=(n, n_batteries, n_components)) * 0.5
        # Sprinkle the scalar archive's empty-battery sentinel rows.
        for index in range(0, n, 7):
            matrices[index, rng.integers(n_batteries)] = [0.0, -np.inf, -np.inf][
                :n_components
            ]
        return matrices

    @pytest.mark.parametrize("symmetric", [True, False])
    @pytest.mark.parametrize("tolerance", [0.0, 0.25])
    def test_decisions_match_the_scalar_archive(self, symmetric, tolerance):
        rng = np.random.default_rng(11)
        scalar = DominanceArchive(
            symmetric=symmetric, dominance_tolerance=tolerance, archive_limit=8
        )
        vector = VectorDominanceArchive(
            symmetric=symmetric,
            n_batteries=2,
            dominance_tolerance=tolerance,
            archive_limit=8,
        )
        matrices = self._random_matrices(rng, 300)
        keys = rng.integers(0, 4, size=300)
        for key, matrix in zip(keys, matrices):
            expected = scalar.admit(
                (int(key),), tuple(tuple(row) for row in matrix)
            )
            got = vector.admit((int(key),), matrix)
            assert got == expected

    @pytest.mark.parametrize(
        "groups", [(0, 0, 0), (0, 0, 1), (0, 1, 1), (0, 1, 0), (0, 1, 2)]
    )
    @pytest.mark.parametrize("tolerance", [0.0, 0.25])
    def test_group_decisions_match_the_scalar_archive(self, groups, tolerance):
        """Pinned decision-for-decision at every group structure a 3-battery
        fleet can have, not just all-identical vs all-distinct."""
        rng = np.random.default_rng(17)
        scalar = DominanceArchive(
            symmetric=False,
            dominance_tolerance=tolerance,
            archive_limit=8,
            groups=groups,
        )
        vector = VectorDominanceArchive(
            symmetric=False,
            n_batteries=3,
            dominance_tolerance=tolerance,
            archive_limit=8,
            groups=groups,
        )
        matrices = self._random_matrices(rng, 300, n_batteries=3)
        keys = rng.integers(0, 4, size=300)
        for key, matrix in zip(keys, matrices):
            expected = scalar.admit(
                (int(key),), tuple(tuple(row) for row in matrix)
            )
            got = vector.admit((int(key),), matrix)
            assert got == expected

    def test_archive_limit_is_respected(self):
        vector = VectorDominanceArchive(
            symmetric=False, n_batteries=1, archive_limit=2
        )
        # Mutually non-dominating vectors: only the first two are archived,
        # later ones are still admitted (the scalar semantics).
        for value in range(5):
            matrix = np.array([[float(value), float(-value)]])
            assert vector.admit("k", matrix)
        stored = vector._entries["k"][1]
        assert stored.shape[0] == 2


class TestDiscreteSegmentKernel:
    def _scalar_reference(self, model, state, current, ticks):
        spec = model.discharge_spec(current) if current > 0.0 else None
        empty_tick = None
        for tick in range(1, ticks + 1):
            state = model.tick(state, spec)
            if state.empty:
                empty_tick = tick
                break
        return state, empty_tick

    def test_matches_run_segment_over_random_histories(self):
        params = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122)
        model = DiscreteKibam(params, time_step=0.05, charge_unit=0.05)
        rng = np.random.default_rng(5)
        spec_by_current = {c: model.discharge_spec(c) for c in (0.25, 0.5)}
        n_lanes = 16
        states = [model.initial_state() for _ in range(n_lanes)]
        done = [False] * n_lanes
        tables = np.array([model.recovery_steps], dtype=np.int64)
        for _ in range(12):
            currents = rng.choice([0.0, 0.25, 0.5], size=n_lanes)
            ticks = rng.integers(1, 40, size=n_lanes)
            live = [i for i in range(n_lanes) if not done[i]]
            if not live:
                break
            cur = np.array(
                [spec_by_current[currents[i]].cur if currents[i] else 0 for i in live],
                dtype=np.int64,
            )
            ct = np.array(
                [
                    spec_by_current[currents[i]].cur_times if currents[i] else 1
                    for i in live
                ],
                dtype=np.int64,
            )
            lane_ticks = np.array([ticks[i] for i in live], dtype=np.int64)
            n = np.array([states[i].n for i in live], dtype=np.int64)
            m = np.array([states[i].m for i in live], dtype=np.int64)
            rec = np.array([states[i].recov_ticks for i in live], dtype=np.int64)
            acc = np.array([states[i].disch_ticks for i in live], dtype=np.int64)
            rcur = np.array([states[i].disch_rate[0] for i in live], dtype=np.int64)
            rct = np.array([states[i].disch_rate[1] for i in live], dtype=np.int64)
            out = discrete_segment_array(
                tables,
                np.zeros(len(live), dtype=np.int64),
                np.full(len(live), model.c_permille, dtype=np.int64),
                n, m, rec, acc, rcur, rct, cur, ct, lane_ticks,
            )
            n2, m2, rec2, acc2, rcur2, rct2, empty_tick = out
            for row, i in enumerate(live):
                ref_state, ref_empty = self._scalar_reference(
                    model, states[i], float(currents[i]), int(ticks[i])
                )
                assert (n2[row], m2[row]) == (ref_state.n, ref_state.m), (row, i)
                assert rec2[row] == ref_state.recov_ticks
                assert acc2[row] == ref_state.disch_ticks
                assert (rcur2[row], rct2[row]) == ref_state.disch_rate
                expected_tick = -1 if ref_empty is None else ref_empty
                assert empty_tick[row] == expected_tick
                if ref_empty is not None:
                    done[i] = True
                else:
                    states[i] = DiscreteBatteryState(
                        n=int(n2[row]),
                        m=int(m2[row]),
                        disch_ticks=int(acc2[row]),
                        disch_rate=(int(rcur2[row]), int(rct2[row])),
                        recov_ticks=int(rec2[row]),
                    )

    def test_draw_can_outpace_the_recovery_counter(self):
        # The clamp regression from the batch engine: a draw raises m into a
        # shorter recovery step than the accumulated counter; the next
        # recovery event must fire one tick later, not steps[m]-rec later.
        params = BatteryParameters(capacity=0.5, c=0.5, k_prime=1.8)
        model = DiscreteKibam(params, time_step=0.05, charge_unit=0.05)
        state = model.initial_state()
        ref_state, ref_empty = self._scalar_reference(model, state, 0.5, 120)
        out = discrete_segment_array(
            np.array([model.recovery_steps], dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.array([model.c_permille], dtype=np.int64),
            np.array([state.n], dtype=np.int64),
            np.array([state.m], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([model.discharge_spec(0.5).cur], dtype=np.int64),
            np.array([model.discharge_spec(0.5).cur_times], dtype=np.int64),
            np.array([120], dtype=np.int64),
        )
        assert (out[0][0], out[1][0]) == (ref_state.n, ref_state.m)
        assert out[6][0] == (-1 if ref_empty is None else ref_empty)


class TestPoolingBoundParity:
    def test_batched_root_bound_matches_the_scalar_bound(self, all_loads):
        load = all_loads["ILs 250"]
        models = make_battery_models([SCALED, SCALED])
        scalar = OptimalScheduler(models, load)
        states = tuple(model.initial_state() for model in models)
        scalar_bound = scalar._remaining_lifetime_bound(states, 0, 0.0)

        batched = BatchOptimalScheduler([SCALED, SCALED], load)
        ops = batched._ops
        root = ops.root_batch()
        gamma = np.array([root["state"][0, :, 0].sum()])
        delta = np.array([root["state"][0, :, 1].sum()])
        bound = ops.bounds.pooled_bounds(
            gamma, delta, np.array([0]), np.array([0.0])
        )[0]
        assert bound == pytest.approx(scalar_bound, abs=1e-9)


class TestBoundCacheCaps:
    """The bound memo dicts are size-capped (clear-on-overflow): long sweep
    chains must not grow them without limit, and a tiny cap may cost repeat
    work but never changes any result."""

    CAP = 8

    def test_batched_caches_honor_the_cap_with_unchanged_results(
        self, all_loads, monkeypatch
    ):
        import repro.engine.optimal_batch as ob
        import repro.kibam.bounds as kb

        load = all_loads["ILs alt"]
        baseline = find_optimal_schedule_batched([SCALED, SCALED], load)
        monkeypatch.setattr(ob, "_BOUND_CACHE_LIMIT", self.CAP)
        monkeypatch.setattr(kb, "_TAIL_CACHE_LIMIT", self.CAP)
        scheduler = BatchOptimalScheduler([SCALED, SCALED], load)
        capped = scheduler.search()
        assert capped.lifetime == pytest.approx(baseline.lifetime, abs=1e-9)
        assert capped.assignment == baseline.assignment
        assert capped.nodes_expanded == baseline.nodes_expanded
        evaluator = scheduler._ops.bounds
        assert 0 < len(evaluator._cache) <= self.CAP
        assert len(evaluator._job_tables) <= self.CAP
        for table in evaluator._job_tables.values():
            assert len(table.tail_cache) <= self.CAP

    def test_scalar_caches_honor_the_cap_with_unchanged_results(
        self, all_loads, monkeypatch
    ):
        import repro.core.optimal as co

        load = all_loads["ILs alt"]
        baseline = find_optimal_schedule([SCALED, SCALED], load)
        monkeypatch.setattr(co, "_BOUND_CACHE_LIMIT", self.CAP)
        scheduler = OptimalScheduler(make_battery_models([SCALED, SCALED]), load)
        capped = scheduler.search()
        assert capped.lifetime == pytest.approx(baseline.lifetime, abs=1e-9)
        assert capped.assignment == baseline.assignment
        assert capped.nodes_expanded == baseline.nodes_expanded
        assert 0 < len(scheduler._bound_cache) <= self.CAP
        assert len(scheduler._rl_cache) <= self.CAP
        assert len(scheduler._job_table_cache) <= self.CAP
