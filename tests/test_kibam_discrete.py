"""Tests for the discretized KiBaM (dKiBaM)."""

import math

import pytest

from repro.kibam.discrete import DiscreteKibam, DischargeSpec, recovery_steps_table
from repro.kibam.lifetime import lifetime_under_segments
from repro.kibam.parameters import B1, BatteryParameters


class TestDischargeSpec:
    def test_paper_currents_map_to_small_integers(self, b1):
        model = DiscreteKibam(b1, time_step=0.01, charge_unit=0.01)
        assert model.discharge_spec(0.250) == DischargeSpec(cur=1, cur_times=4)
        assert model.discharge_spec(0.500) == DischargeSpec(cur=1, cur_times=2)

    def test_spec_round_trips_to_current(self, b1):
        model = DiscreteKibam(b1)
        spec = model.discharge_spec(0.25)
        assert spec.current(model.charge_unit, model.time_step) == pytest.approx(0.25)

    def test_idle_spec(self, b1):
        spec = DiscreteKibam(b1).discharge_spec(0.0)
        assert spec.is_idle

    def test_unrepresentable_current_is_rejected(self, b1):
        model = DiscreteKibam(b1, time_step=0.01, charge_unit=0.01)
        with pytest.raises(ValueError):
            model.discharge_spec(0.0001237)

    def test_invalid_spec_values_rejected(self):
        with pytest.raises(ValueError):
            DischargeSpec(cur=-1, cur_times=1)
        with pytest.raises(ValueError):
            DischargeSpec(cur=1, cur_times=0)


class TestRecoveryTable:
    def test_equation_six_values(self, b1):
        table = recovery_steps_table(b1, time_step=0.01, max_units=10)
        # For m=2 the time to lose one unit is ln(2)/k' minutes.
        expected = round(math.log(2.0) / b1.k_prime / 0.01)
        assert table[2] == expected

    def test_recovery_times_decrease_with_height(self, b1):
        table = recovery_steps_table(b1, time_step=0.01, max_units=50)
        assert all(later <= earlier for earlier, later in zip(table[2:-1], table[3:]))

    def test_sentinels_for_low_heights(self, b1):
        table = recovery_steps_table(b1, time_step=0.01, max_units=5)
        assert table[0] > 10**15 and table[1] > 10**15

    def test_invalid_arguments(self, b1):
        with pytest.raises(ValueError):
            recovery_steps_table(b1, time_step=0.0, max_units=5)
        with pytest.raises(ValueError):
            recovery_steps_table(b1, time_step=0.01, max_units=0)


class TestDiscreteDynamics:
    def test_initial_state(self, b1):
        model = DiscreteKibam(b1)
        state = model.initial_state()
        assert state.n == 550
        assert state.m == 0
        assert not model.is_empty(state)

    def test_draw_happens_every_cur_times_ticks(self, b1):
        model = DiscreteKibam(b1)
        spec = model.discharge_spec(0.5)  # one unit every 2 ticks
        state = model.initial_state()
        for _ in range(2):
            state = model.tick(state, spec)
        assert state.n == 549
        assert state.m == 1

    def test_idle_tick_does_not_draw(self, b1):
        model = DiscreteKibam(b1)
        state = model.initial_state()
        state = model.tick(state)
        assert state.n == model.total_units

    def test_recovery_reduces_height_difference(self, b1):
        model = DiscreteKibam(b1)
        spec = model.discharge_spec(0.5)
        state = model.initial_state()
        # Draw a few units to raise the height difference above one.
        for _ in range(8):
            state = model.tick(state, spec)
        height_after_load = state.m
        assert height_after_load >= 2
        # Rest long enough for at least one recovery step.
        for _ in range(model.recovery_steps[height_after_load] + 1):
            state = model.tick(state)
        assert state.m == height_after_load - 1

    def test_height_difference_never_recovers_below_one(self, b1):
        model = DiscreteKibam(b1)
        spec = model.discharge_spec(0.5)
        state = model.initial_state()
        for _ in range(2):
            state = model.tick(state, spec)
        assert state.m == 1
        for _ in range(100_000):
            state = model.tick(state)
        assert state.m == 1

    def test_empty_state_is_absorbing(self, b1):
        model = DiscreteKibam(b1)
        lifetime = model.lifetime_under_segments([(0.5, 100.0)])
        assert lifetime is not None
        # Re-run and keep ticking past the empty point: the state stays empty.
        state, empty_tick = model.run_segment(model.initial_state(), 0.5, 100.0)
        assert empty_tick is not None and state.empty
        after = model.tick(state, model.discharge_spec(0.5))
        assert after == state

    def test_continuous_projection_matches_charge_units(self, b1):
        model = DiscreteKibam(b1)
        state = model.initial_state()
        continuous = model.to_continuous(state)
        assert continuous.gamma == pytest.approx(b1.capacity)
        assert model.available_charge(state) == pytest.approx(b1.available_capacity)

    def test_duration_must_be_multiple_of_time_step(self, b1):
        model = DiscreteKibam(b1, time_step=0.01)
        with pytest.raises(ValueError):
            model.duration_to_ticks(0.005)


class TestDiscreteVersusAnalytical:
    def test_spread_draws_track_awkward_currents(self):
        """Currents whose integer form has cur > 1 must not draw in lumps.

        0.124 A at the reference discretization is 31 units per 250 ticks;
        drawn as one 2.5-minute lump the dKiBaM overestimated the lifetime
        by tens of percent, spread one unit at a time it tracks the
        analytical model again.
        """
        params = BatteryParameters(capacity=2.0, c=0.166, k_prime=0.122)
        model = DiscreteKibam(params)
        analytical = lifetime_under_segments(params, [(0.124, 1000.0)])
        discrete = model.lifetime_under_segments([(0.124, 1000.0)])
        assert discrete is not None
        assert abs(discrete - analytical) / analytical < 0.05

    def test_rate_change_does_not_burst_banked_ticks(self):
        """The draw accumulator restarts when the discharge rate changes.

        Ticks banked under a slow spec (cur_times = 250) must not be
        reinterpreted at a faster spec's threshold (cur_times = 2) as an
        instantaneous multi-unit draw at the epoch boundary.
        """
        params = BatteryParameters(capacity=2.0, c=0.166, k_prime=0.122)
        model = DiscreteKibam(params)
        load = [(0.124, 2.0), (0.5, 8.0)]
        analytical = lifetime_under_segments(params, load)
        discrete = model.lifetime_under_segments(load)
        assert discrete is not None
        assert abs(discrete - analytical) / analytical < 0.03

    @pytest.mark.parametrize("load_name", ["CL 500", "ILs 500", "ILs alt", "IL` 500"])
    def test_lifetimes_within_one_and_a_half_percent(self, b1, loads, load_name):
        # Tables 3 and 4 report relative differences of at most about 1 %.
        segments = loads[load_name].segments()
        analytical = lifetime_under_segments(b1, segments)
        discrete = DiscreteKibam(b1).lifetime_under_segments(segments)
        assert analytical is not None and discrete is not None
        assert abs(discrete - analytical) / analytical < 0.015

    def test_finer_discretization_reduces_error(self, b1, loads):
        segments = loads["CL 500"].segments()
        analytical = lifetime_under_segments(b1, segments)
        coarse = DiscreteKibam(b1, time_step=0.02, charge_unit=0.05).lifetime_under_segments(segments)
        fine = DiscreteKibam(b1, time_step=0.005, charge_unit=0.005).lifetime_under_segments(segments)
        assert analytical is not None and coarse is not None and fine is not None
        assert abs(fine - analytical) <= abs(coarse - analytical)

    def test_trace_stops_at_empty(self, b1, loads):
        model = DiscreteKibam(b1)
        trace = model.trace_under_segments(loads["CL 500"].segments(), sample_every=50)
        assert trace[-1][1].empty
