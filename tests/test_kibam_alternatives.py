"""Tests for the linear and diffusion battery models."""

import pytest

from repro.kibam.diffusion import DiffusionBattery
from repro.kibam.lifetime import lifetime_constant_current
from repro.kibam.linear import LinearBattery
from repro.kibam.parameters import B1


class TestLinearBattery:
    def test_constant_current_lifetime(self, b1):
        battery = LinearBattery(b1)
        assert battery.lifetime_constant_current(0.25) == pytest.approx(5.5 / 0.25)

    def test_no_rate_capacity_effect(self, b1):
        battery = LinearBattery(b1)
        low = 0.25 * battery.lifetime_constant_current(0.25)
        high = 0.5 * battery.lifetime_constant_current(0.5)
        assert low == pytest.approx(high) == pytest.approx(b1.capacity)

    def test_linear_lifetime_upper_bounds_kibam(self, b1):
        assert LinearBattery(b1).lifetime_constant_current(0.5) > lifetime_constant_current(b1, 0.5)

    def test_segment_lifetime(self, b1):
        battery = LinearBattery(b1)
        lifetime = battery.lifetime_under_segments([(0.5, 5.0), (0.0, 1.0), (0.5, 100.0)])
        # 2.5 Amin drawn in the first job, the remaining 3 Amin last 6 more
        # minutes of load; total elapsed time includes the idle minute.
        assert lifetime == pytest.approx(5.0 + 1.0 + 3.0 / 0.5)

    def test_survives_short_load(self, b1):
        assert LinearBattery(b1).lifetime_under_segments([(0.5, 1.0)]) is None

    def test_remaining_after_segments(self, b1):
        assert LinearBattery(b1).remaining_after_segments([(0.5, 2.0)]) == pytest.approx(4.5)

    def test_rejects_invalid_inputs(self, b1):
        with pytest.raises(ValueError):
            LinearBattery(b1).lifetime_constant_current(0.0)
        with pytest.raises(ValueError):
            LinearBattery(b1).lifetime_under_segments([(-0.1, 1.0)])


class TestDiffusionBattery:
    def make_battery(self) -> DiffusionBattery:
        return DiffusionBattery(alpha=5.5, beta=0.6)

    def test_constant_current_lifetime_below_ideal(self):
        battery = self.make_battery()
        lifetime = battery.lifetime_constant_current(0.5)
        assert 0.0 < lifetime < 5.5 / 0.5

    def test_rate_capacity_effect(self):
        battery = self.make_battery()
        low = 0.25 * battery.lifetime_constant_current(0.25)
        high = 0.5 * battery.lifetime_constant_current(0.5)
        assert high < low

    def test_recovery_effect_extends_lifetime(self):
        battery = self.make_battery()
        continuous = battery.lifetime_under_segments([(0.5, 100.0)])
        intermittent = battery.lifetime_under_segments([(0.5, 1.0), (0.0, 1.0)] * 100)
        assert continuous is not None and intermittent is not None
        assert intermittent > continuous

    def test_apparent_charge_increases_with_time_under_load(self):
        battery = self.make_battery()
        segments = [(0.5, 10.0)]
        assert battery.apparent_charge_lost(segments, 2.0) > battery.apparent_charge_lost(
            segments, 1.0
        )

    def test_survives_light_load(self):
        battery = self.make_battery()
        assert battery.lifetime_under_segments([(0.1, 1.0)]) is None

    def test_exhaustion_predicate_consistent_with_lifetime(self):
        battery = self.make_battery()
        lifetime = battery.lifetime_constant_current(0.5)
        assert battery.is_exhausted([(0.5, 100.0)], lifetime + 0.01)
        assert not battery.is_exhausted([(0.5, 100.0)], lifetime - 0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiffusionBattery(alpha=0.0, beta=0.5)
        with pytest.raises(ValueError):
            DiffusionBattery(alpha=1.0, beta=0.0)
        with pytest.raises(ValueError):
            DiffusionBattery(alpha=1.0, beta=0.5, terms=0)
