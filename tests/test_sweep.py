"""Tests for the sweep subsystem (repro.sweep).

The contracts under test:

* **hash stability** -- a spec's content hash is identical across processes
  (and ``PYTHONHASHSEED`` values), changes when code-relevant content
  changes, and ignores the free-text name/description;
* **cache and resume** -- a completed sweep re-runs as pure cache reads
  with bit-identical arrays, and a sweep missing chunks (interrupt,
  partial run) recomputes exactly the missing chunks;
* **per-scenario parameters** -- mixed battery-parameter batches match the
  scalar golden-reference simulator to 1e-9 minutes, the same bar the
  shared-parameter engine is held to;
* **Monte-Carlo integration** -- ``run_montecarlo(cache_dir=...)`` routes
  through the store and repeated calls reproduce the first result exactly.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.analysis.montecarlo import run_montecarlo
from repro.core.simulator import simulate_policy
from repro.engine import BatchSimulator, ScenarioSet
from repro.kibam.parameters import B1, B2, BatteryParameters
from repro.sweep import (
    BatteryConfig,
    LoadAxis,
    ResultStore,
    SweepRunner,
    SweepSpec,
    battery_grid,
    builtin_specs,
)
from repro.sweep.cli import main as sweep_cli
from repro.workloads.generator import RandomLoadConfig
from repro.workloads.load import Load

#: Short loads keep every sweep in this module well under a second.
FAST_CONFIG = RandomLoadConfig(
    levels=(0.25, 0.5),
    job_duration_range=(0.5, 1.0),
    idle_duration_range=(0.0, 1.0),
    total_duration=30.0,
    duration_step=0.25,
)

SMALL = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")


def small_spec(chunk_size=4, n_samples=10, policies=("sequential", "best-of-two")):
    return SweepSpec(
        name="unit-test",
        batteries=(BatteryConfig(label="2xSMALL", params=(SMALL, SMALL)),),
        loads=(LoadAxis.random(n_samples, seed=3, config=FAST_CONFIG),),
        policies=tuple(policies),
        chunk_size=chunk_size,
    )


def small_optimal_spec(n_samples=4, **optimal_kwargs):
    """A tiny campaign with the optimal-schedule column appended."""
    return small_spec(n_samples=n_samples).with_optimal(**optimal_kwargs)


class TestSpecHash:
    def test_hash_is_stable_across_processes(self):
        """The content hash must not depend on the process that computes it."""
        spec = small_spec()
        code = (
            "from tests.test_sweep import small_spec;"
            "print(small_spec().spec_hash())"
        )
        env = dict(os.environ)
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
        )
        for hash_seed in ("0", "12345"):
            env["PYTHONHASHSEED"] = hash_seed
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                cwd=repo_root,
                check=True,
            )
            assert result.stdout.strip() == spec.spec_hash()

    def test_hash_ignores_name_and_description(self):
        spec = small_spec()
        renamed = SweepSpec.from_dict(
            {**spec.to_dict(), "name": "other", "description": "different words"}
        )
        assert renamed.spec_hash() == spec.spec_hash()

    def test_hash_ignores_cosmetic_battery_and_load_names(self):
        """Renaming a battery triple or an embedded load must not orphan caches."""
        spec = small_spec()
        nameless = BatteryParameters(
            capacity=SMALL.capacity, c=SMALL.c, k_prime=SMALL.k_prime, name="renamed"
        )
        renamed = SweepSpec(
            name=spec.name,
            batteries=(BatteryConfig(label="2xSMALL", params=(nameless, nameless)),),
            loads=spec.loads,
            policies=spec.policies,
            chunk_size=spec.chunk_size,
        )
        assert renamed.spec_hash() == spec.spec_hash()

        loads = ScenarioSet.random(2, FAST_CONFIG, seed=1).loads
        relabelled = [
            Load(name=f"other-{i}", epochs=load.epochs) for i, load in enumerate(loads)
        ]
        spec_a = SweepSpec(
            name="a", batteries=spec.batteries,
            loads=(LoadAxis.explicit(loads, label="mc"),), policies=spec.policies,
        )
        spec_b = SweepSpec(
            name="b", batteries=spec.batteries,
            loads=(LoadAxis.explicit(relabelled, label="mc"),), policies=spec.policies,
        )
        assert spec_a.spec_hash() == spec_b.spec_hash()

    @pytest.mark.parametrize(
        "mutation",
        [
            {"policies": ["sequential"]},
            {"chunk_size": 7},
            {"backend": "discrete"},
        ],
    )
    def test_hash_changes_with_content(self, mutation):
        spec = small_spec()
        changed = SweepSpec.from_dict({**spec.to_dict(), **mutation})
        assert changed.spec_hash() != spec.spec_hash()

    def test_hash_changes_with_battery_parameters(self):
        spec = small_spec()
        other = SweepSpec(
            name=spec.name,
            batteries=(BatteryConfig(label="2xSMALL", params=(SMALL, B1)),),
            loads=spec.loads,
            policies=spec.policies,
            chunk_size=spec.chunk_size,
        )
        assert other.spec_hash() != spec.spec_hash()

    def test_mixed_battery_widths_rejected(self):
        with pytest.raises(ValueError, match="same number of batteries"):
            SweepSpec(
                name="bad",
                batteries=(
                    BatteryConfig(label="one", params=(SMALL,)),
                    BatteryConfig(label="two", params=(SMALL, SMALL)),
                ),
                loads=(LoadAxis.random(2, seed=0, config=FAST_CONFIG),),
                policies=("sequential",),
            )

    def test_round_trips_through_dict(self):
        spec = small_spec()
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.spec_hash() == spec.spec_hash()
        assert clone.n_scenarios == spec.n_scenarios
        assert [p.load_label for p in clone.expand()] == [
            p.load_label for p in spec.expand()
        ]


class TestLoadAxes:
    def test_random_axis_matches_montecarlo_sampling(self):
        """Sample i uses seed + i, exactly like ScenarioSet.random."""
        axis = LoadAxis.random(5, seed=11, config=FAST_CONFIG)
        resolved = [load for _, load in axis.resolve()]
        reference = ScenarioSet.random(5, FAST_CONFIG, seed=11).loads
        assert [l.epochs for l in resolved] == [l.epochs for l in reference]

    def test_paper_axis_subset_and_unknown_name(self):
        axis = LoadAxis.paper(["CL 250", "ILs alt"])
        assert [label for label, _ in axis.resolve()] == ["CL 250", "ILs alt"]
        with pytest.raises(ValueError):
            LoadAxis.paper(["no such load"])

    def test_generator_axis(self):
        axis = LoadAxis.generator(
            "duty-cycle", label="dc", current=0.3, period=2.0, duty_cycle=0.5, cycles=4
        )
        [(label, load)] = axis.resolve()
        assert label == "dc"
        assert load.total_duration == pytest.approx(8.0)

    def test_explicit_axis_round_trips_epochs(self):
        loads = ScenarioSet.random(3, FAST_CONFIG, seed=0).loads
        axis = LoadAxis.explicit(loads, label="mc")
        resolved = [load for _, load in axis.resolve()]
        assert [
            [(e.current, e.duration) for e in load.epochs] for load in resolved
        ] == [[(e.current, e.duration) for e in load.epochs] for load in loads]

    def test_labels_agree_with_resolution(self):
        for axis in (
            LoadAxis.paper(["CL 250", "CL 500"]),
            LoadAxis.random(4, seed=2, config=FAST_CONFIG),
            LoadAxis.generator("bursty", burst_current=0.5, burst_jobs=2,
                               rest_duration=1.0, cycles=2),
        ):
            assert axis.labels() == [label for label, _ in axis.resolve()]


class TestRunnerCaching:
    def test_cold_run_then_cache_hit(self, tmp_path):
        spec = small_spec()
        runner = SweepRunner(ResultStore(tmp_path / "store"))
        cold = runner.run(spec)
        assert cold.stats.chunks_run == spec.n_chunks
        assert cold.stats.chunks_cached == 0

        warm = runner.run(spec)
        assert warm.stats.chunks_run == 0
        assert warm.stats.chunks_cached == spec.n_chunks
        for policy in spec.policies:
            np.testing.assert_array_equal(
                warm.lifetimes[policy], cold.lifetimes[policy]
            )
            np.testing.assert_array_equal(
                warm.decisions[policy], cold.decisions[policy]
            )
            np.testing.assert_array_equal(
                warm.residual_charge[policy], cold.residual_charge[policy]
            )

    def test_resume_after_interrupt(self, tmp_path):
        """Deleting a chunk (interrupt mid-campaign) reruns only that chunk."""
        spec = small_spec(chunk_size=3, n_samples=10)  # 4 chunks
        store = ResultStore(tmp_path / "store")
        runner = SweepRunner(store)
        full = runner.run(spec)
        spec_hash = spec.spec_hash()

        victim = store._chunk_path(spec_hash, 1)
        victim.unlink()
        resumed = runner.run(spec)
        assert resumed.stats.chunks_run == 1
        assert resumed.stats.chunks_cached == spec.n_chunks - 1
        assert resumed.stats.scenarios_run == 3  # exactly the missing chunk
        for policy in spec.policies:
            np.testing.assert_array_equal(
                resumed.lifetimes[policy], full.lifetimes[policy]
            )

    def test_half_written_chunk_is_ignored(self, tmp_path):
        """A truncated temp file from a killed run never poisons the store."""
        spec = small_spec(chunk_size=5, n_samples=10)
        store = ResultStore(tmp_path / "store")
        spec_hash = store.ensure_entry(spec)
        stray = store._chunk_path(spec_hash, 0).with_suffix(".tmp.npz")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_bytes(b"not an npz")
        result = SweepRunner(store).run(spec)
        assert result.stats.chunks_run == spec.n_chunks

    def test_force_recomputes(self, tmp_path):
        spec = small_spec()
        runner = SweepRunner(ResultStore(tmp_path / "store"))
        runner.run(spec)
        forced = runner.run(spec, force=True)
        assert forced.stats.chunks_run == spec.n_chunks
        assert forced.stats.chunks_cached == 0

    def test_runner_without_store_computes_in_memory(self):
        spec = small_spec(n_samples=4)
        result = SweepRunner().run(spec)
        assert result.stats.chunks_run == spec.n_chunks
        assert all(np.isfinite(result.lifetimes[p]).all() for p in spec.policies)

    def test_load_requires_complete_store(self, tmp_path):
        spec = small_spec(chunk_size=3, n_samples=10)
        store = ResultStore(tmp_path / "store")
        runner = SweepRunner(store)
        with pytest.raises(FileNotFoundError):
            runner.load(spec)
        runner.run(spec)
        store._chunk_path(spec.spec_hash(), 2).unlink()
        with pytest.raises(FileNotFoundError):
            runner.load(spec)

    def test_store_find_and_entries(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "store")
        SweepRunner(store).run(spec)
        [entry] = store.entries()
        assert entry.complete
        assert entry.n_scenarios == spec.n_scenarios
        assert store.find(spec.spec_hash()[:6]).spec_hash == spec.spec_hash()
        assert store.find("unit-test").spec_hash == spec.spec_hash()
        assert store.find("nonexistent") is None


class TestPerScenarioParameters:
    """The sweep lever: parameter grids vectorized at the 1e-9 parity bar."""

    def test_mixed_parameter_chunk_matches_scalar(self, tmp_path):
        grid = battery_grid(
            capacities=(0.6, 0.8, 1.0, 1.3), c=0.166, k_prime=0.122
        ) + (BatteryConfig(label="B1+B2", params=(B1, B2)),)
        spec = SweepSpec(
            name="grid",
            batteries=grid,
            loads=(LoadAxis.random(3, seed=5, config=FAST_CONFIG),),
            policies=("sequential", "round-robin", "best-of-two"),
            chunk_size=64,  # one mixed chunk covering the whole grid
        )
        result = SweepRunner(ResultStore(tmp_path / "store")).run(spec)
        for point in spec.expand():
            for policy in spec.policies:
                scalar = simulate_policy(
                    list(point.battery_params), point.load, policy
                )
                batch_value = result.lifetimes[policy][point.index]
                if scalar.lifetime is None:
                    assert np.isnan(batch_value)
                else:
                    assert batch_value == pytest.approx(
                        scalar.lifetime, abs=1e-9
                    )
                assert result.decisions[policy][point.index] == scalar.decisions

    def test_per_scenario_rows_match_shared_simulator(self):
        """Identical rows through the per-scenario path equal the shared path."""
        loads = ScenarioSet.random(6, FAST_CONFIG, seed=9)
        shared = BatchSimulator([SMALL, B1]).run_many(
            loads, ("sequential", "best-of-two")
        )
        nested = BatchSimulator([(SMALL, B1)] * 6).run_many(
            loads, ("sequential", "best-of-two")
        )
        for policy in ("sequential", "best-of-two"):
            np.testing.assert_allclose(
                nested[policy].lifetimes,
                shared[policy].lifetimes,
                atol=1e-9,
                equal_nan=True,
            )

    def test_row_count_mismatch_rejected(self):
        simulator = BatchSimulator([(SMALL, SMALL)] * 3)
        loads = ScenarioSet.random(2, FAST_CONFIG, seed=0)
        with pytest.raises(ValueError, match="per-scenario parameters"):
            simulator.run(loads, "sequential")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="same number of batteries"):
            BatchSimulator([(SMALL, SMALL), (SMALL,)])


class TestMonteCarloCache:
    def test_repeated_distribution_is_cache_hit(self, tmp_path):
        cache = str(tmp_path / "mc")
        kwargs = dict(
            n_samples=25, seed=13, config=FAST_CONFIG, engine="batch",
            cache_dir=cache,
        )
        first = run_montecarlo([SMALL, SMALL], **kwargs)
        second = run_montecarlo([SMALL, SMALL], **kwargs)
        assert first.engine == second.engine == "batch"
        assert second.per_sample == first.per_sample
        assert second.distributions == first.distributions
        # The store actually holds the sweep.
        [entry] = ResultStore(cache).entries()
        assert entry.complete and entry.n_scenarios == 25

    def test_cached_result_matches_direct_batch_run(self, tmp_path):
        cached = run_montecarlo(
            [SMALL, SMALL], n_samples=25, seed=13, config=FAST_CONFIG,
            engine="batch", cache_dir=str(tmp_path / "mc"),
        )
        direct = run_montecarlo(
            [SMALL, SMALL], n_samples=25, seed=13, config=FAST_CONFIG,
            engine="batch",
        )
        for policy, values in direct.per_sample.items():
            assert cached.per_sample[policy] == pytest.approx(values, abs=1e-9)

    def test_explicit_loads_are_cacheable(self, tmp_path):
        loads = ScenarioSet.random(6, FAST_CONFIG, seed=21).loads
        cache = str(tmp_path / "mc")
        first = run_montecarlo([SMALL, SMALL], loads=loads, engine="batch",
                               cache_dir=cache)
        second = run_montecarlo([SMALL, SMALL], loads=loads, engine="batch",
                                cache_dir=cache)
        assert second.per_sample == first.per_sample

    def test_rng_stream_bypasses_cache(self, tmp_path):
        cache = str(tmp_path / "mc")
        result = run_montecarlo(
            [SMALL, SMALL], n_samples=4, config=FAST_CONFIG, engine="batch",
            rng=np.random.default_rng(1), cache_dir=cache,
        )
        assert result.n_samples == 4
        assert list(ResultStore(cache).entries()) == []


class TestCli:
    def spec_file(self, tmp_path, **overrides):
        spec = small_spec(**overrides)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return spec, str(path)

    def test_run_status_show_roundtrip(self, tmp_path, capsys):
        spec, spec_path = self.spec_file(tmp_path)
        store = str(tmp_path / "store")

        assert sweep_cli(["run", "--spec-file", spec_path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert f"{spec.n_chunks} run, 0 cached" in out

        assert sweep_cli(["run", "--spec-file", spec_path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert f"0 run, {spec.n_chunks} cached" in out

        assert sweep_cli(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert spec.spec_hash() in out and "complete" in out

        assert sweep_cli(["show", "--spec-file", spec_path, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2xSMALL" in out

        assert sweep_cli(["show", "--hash", spec.spec_hash()[:8],
                          "--store", store]) == 0
        assert "2xSMALL" in capsys.readouterr().out

    def test_show_incomplete_sweep_fails_cleanly(self, tmp_path, capsys):
        spec, spec_path = self.spec_file(tmp_path)
        store = str(tmp_path / "store")
        with pytest.raises(SystemExit):
            sweep_cli(["show", "--spec-file", spec_path, "--store", store])

    def test_builtin_specs_listed(self, capsys):
        assert sweep_cli(["specs"]) == 0
        out = capsys.readouterr().out
        for name in builtin_specs():
            assert name in out

    def test_unknown_builtin_exits_2_with_spec_hint(self, tmp_path, capsys):
        """A typo'd spec name exits with code 2 and a one-line name list."""
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["run", "--spec", "nope", "--store", str(tmp_path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        for name in builtin_specs():
            assert name in err

    def test_show_empty_store_exits_2_with_hint(self, tmp_path, capsys):
        """`show --spec` against an empty store: exit 2, hint, no traceback."""
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["show", "--spec", "table5",
                       "--store", str(tmp_path / "empty")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "is empty" in err and "table5" in err

    def test_show_lists_known_specs_when_sweep_missing(self, tmp_path, capsys):
        """The hint names what the store *does* hold."""
        spec, spec_path = self.spec_file(tmp_path)
        store = str(tmp_path / "store")
        assert sweep_cli(["run", "--spec-file", spec_path, "--store", store]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["show", "--spec", "table5", "--store", store])
        assert excinfo.value.code == 2
        assert "unit-test" in capsys.readouterr().err

    def test_show_unmatched_hash_exits_2(self, tmp_path, capsys):
        spec, spec_path = self.spec_file(tmp_path)
        store = str(tmp_path / "store")
        assert sweep_cli(["run", "--spec-file", spec_path, "--store", store]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["show", "--hash", "ffff", "--store", store])
        assert excinfo.value.code == 2

    def test_table5_smoke_cold_then_cached(self, tmp_path, capsys):
        """The CI smoke gate, run locally: cold run -> pure cache re-run ->
        status/show, asserting the `0 run, N cached` line."""
        store = str(tmp_path / "store")
        assert sweep_cli(["run", "--spec", "table5", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 run, 0 cached" in out

        assert sweep_cli(["run", "--spec", "table5", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "0 run, 1 cached" in out

        assert sweep_cli(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "table5" in out

        assert sweep_cli(["show", "--spec", "table5", "--store", store]) == 0
        assert "2xB1" in capsys.readouterr().out

    def test_model_flag_creates_distinct_store_entry(self, tmp_path, capsys):
        """`run --spec table5 --model discrete` must not alias the
        analytical entry: two store hashes, both individually cached."""
        from repro.sweep import ResultStore

        store = str(tmp_path / "store")
        assert sweep_cli(["run", "--spec", "table5", "--quiet",
                          "--store", store]) == 0
        capsys.readouterr()
        assert sweep_cli(["run", "--spec", "table5", "--model", "discrete",
                          "--store", store]) == 0
        out = capsys.readouterr().out
        assert "model=discrete" in out and "1 run, 0 cached" in out

        entries = {e.spec_hash: e for e in ResultStore(store).entries()}
        assert len(entries) == 2
        analytical = builtin_specs()["table5"]
        assert analytical.spec_hash() in entries
        assert analytical.with_model("discrete").spec_hash() in entries

        # The discrete entry re-runs as a pure cache read too.
        assert sweep_cli(["run", "--spec", "table5", "--model", "discrete",
                          "--quiet", "--store", store]) == 0
        assert "0 run, 1 cached" in capsys.readouterr().out

    def test_with_model_changes_hash_and_is_idempotent(self):
        spec = small_spec()
        discrete = spec.with_model("discrete")
        assert discrete.spec_hash() != spec.spec_hash()
        assert discrete.model == "discrete"
        assert spec.with_model("analytical") is spec

    def test_module_entry_point(self):
        """`python -m repro sweep specs` dispatches through repro.__main__."""
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src
        result = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "specs"],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert "table5" in result.stdout


class TestOptimalColumn:
    """The optimal-schedule column as a first-class sweep citizen."""

    def test_optimal_hash_is_stable_across_processes(self):
        spec = small_optimal_spec()
        code = (
            "from tests.test_sweep import small_optimal_spec;"
            "print(small_optimal_spec().spec_hash())"
        )
        env = dict(os.environ)
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
        )
        for hash_seed in ("0", "9876"):
            env["PYTHONHASHSEED"] = hash_seed
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                cwd=repo_root,
                check=True,
            )
            assert result.stdout.strip() == spec.spec_hash()

    def test_optimal_settings_enter_the_hash(self):
        base = small_optimal_spec()
        assert base.spec_hash() != small_spec(n_samples=4).spec_hash()
        assert (
            small_optimal_spec(max_nodes=123).spec_hash() != base.spec_hash()
        )
        assert (
            small_optimal_spec(dominance_tolerance=0.25).spec_hash()
            != base.spec_hash()
        )
        assert small_optimal_spec().spec_hash() == base.spec_hash()

    def test_specs_without_optimal_ignore_the_optimal_settings(self):
        """Pre-optimal hashes must survive: old stores stay addressable."""
        import dataclasses

        spec = small_spec()
        assert "optimal" not in spec.to_dict()
        tweaked = dataclasses.replace(spec, optimal_max_nodes=5)
        assert tweaked.spec_hash() == spec.spec_hash()

    def test_with_optimal_validation(self):
        with pytest.raises(ValueError, match="optimal_max_nodes"):
            small_optimal_spec(max_nodes=0)
        with pytest.raises(ValueError, match="non-negative"):
            small_optimal_spec(dominance_tolerance=-0.5)
        # None means an uncapped, certified search.
        assert small_optimal_spec(max_nodes=None).optimal_max_nodes is None

    def test_cold_run_then_cache_hit_round_trips_the_optimal_column(self, tmp_path):
        spec = small_optimal_spec()
        runner = SweepRunner(ResultStore(tmp_path / "store"))
        cold = runner.run(spec)
        assert cold.stats.chunks_run == spec.n_chunks
        warm = runner.run(spec)
        assert warm.stats.chunks_run == 0
        assert warm.stats.chunks_cached == spec.n_chunks
        np.testing.assert_array_equal(
            warm.lifetimes["optimal"], cold.lifetimes["optimal"]
        )
        np.testing.assert_array_equal(
            warm.complete["optimal"], cold.complete["optimal"]
        )
        assert cold.complete["optimal"].all()
        # The optimal column dominates every policy column per sample.
        for policy in ("sequential", "best-of-two"):
            assert (
                cold.lifetimes["optimal"] >= cold.lifetimes[policy] - 1e-9
            ).all()

    def test_incomplete_searches_annotate_the_rendered_table(self, tmp_path):
        # An ILs-alt style load where the heuristics are suboptimal, so a
        # one-node budget must leave the search incomplete.
        from repro.workloads.profiles import intermittent_alternating_load

        alt = intermittent_alternating_load(total_duration=60.0)
        medium = B1.scaled(0.75)
        spec = SweepSpec(
            name="capped",
            batteries=(BatteryConfig(label="2xM", params=(medium, medium)),),
            loads=(LoadAxis.explicit([alt]),),
            policies=("sequential", "best-of-two"),
        ).with_optimal(max_nodes=1, dominance_tolerance=0.0)
        result = SweepRunner(ResultStore(tmp_path / "store")).run(spec)
        incomplete = result.incomplete_counts()["optimal"]
        assert incomplete > 0
        rendered = result.render()
        assert f"!{incomplete}" in rendered
        assert "max_nodes" in rendered
        # Capped lifetimes are still at least the heuristic incumbent.
        for policy in ("sequential", "best-of-two"):
            assert (
                result.lifetimes["optimal"] >= result.lifetimes[policy] - 1e-9
            ).all()
        # The annotation survives a cache read too.
        warm = SweepRunner(ResultStore(tmp_path / "store")).run(spec)
        assert warm.incomplete_counts()["optimal"] == incomplete
        assert f"!{incomplete}" in warm.render()

    def test_cli_optimal_flag_cold_then_cached(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(small_spec(n_samples=3).to_dict()))
        store = str(tmp_path / "store")
        assert sweep_cli(
            ["run", "--spec-file", str(spec_file), "--optimal", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal" in out
        assert "1 run, 0 cached" in out
        assert sweep_cli(
            ["run", "--spec-file", str(spec_file), "--optimal", "--store", store]
        ) == 0
        assert "0 run, 1 cached" in capsys.readouterr().out
        # Same flags address the same entry through `show`.
        assert sweep_cli(
            ["show", "--spec-file", str(spec_file), "--optimal", "--store", store]
        ) == 0
        assert "optimal" in capsys.readouterr().out
        # Without --optimal the spec addresses a different (absent) entry.
        assert sweep_cli(
            ["run", "--spec-file", str(spec_file), "--store", store, "--quiet"]
        ) == 0
        assert "1 run, 0 cached" in capsys.readouterr().out

    def test_cli_optimal_settings_change_the_store_entry(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(small_spec(n_samples=2).to_dict()))
        store = str(tmp_path / "store")
        args = ["run", "--spec-file", str(spec_file), "--optimal", "--store", store,
                "--quiet"]
        assert sweep_cli(args) == 0
        capsys.readouterr()
        assert sweep_cli(args + ["--optimal-max-nodes", "77"]) == 0
        assert "1 run, 0 cached" in capsys.readouterr().out

    def test_cli_optimal_flag_validation_exits_2(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(small_spec(n_samples=2).to_dict()))
        store = str(tmp_path / "store")
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["run", "--spec-file", str(spec_file), "--store", store,
                       "--optimal-max-nodes", "10"])
        assert excinfo.value.code == 2
        assert "--optimal" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["run", "--spec-file", str(spec_file), "--store", store,
                       "--optimal", "--optimal-max-nodes", "0"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["run", "--spec-file", str(spec_file), "--store", store,
                       "--optimal", "--dominance-tolerance", "-0.1"])
        assert excinfo.value.code == 2
        # Also when the spec already carries the optimal column (no --optimal
        # flag): still a clean exit-2 usage error, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["run", "--spec", "table5-optimal", "--store", store,
                       "--optimal-max-nodes", "0"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            sweep_cli(["show", "--spec", "table5-optimal", "--store", store,
                       "--dominance-tolerance", "-2"])
        assert excinfo.value.code == 2

    def test_builtin_table5_optimal_matches_the_flag_spelling(self):
        specs = builtin_specs()
        from_flag = specs["table5"].with_optimal()
        assert specs["table5-optimal"].spec_hash() == from_flag.spec_hash()

    def test_montecarlo_accepts_optimal_as_policy(self):
        result = run_montecarlo(
            [SMALL, SMALL],
            n_samples=3,
            policies=("sequential", "optimal"),
            config=FAST_CONFIG,
            seed=7,
            engine="batch",
        )
        assert list(result.per_sample) == ["sequential", "optimal"]
        for optimal, sequential in zip(
            result.per_sample["optimal"], result.per_sample["sequential"]
        ):
            assert optimal >= sequential - 1e-9
        legacy = run_montecarlo(
            [SMALL, SMALL],
            n_samples=3,
            policies=("sequential",),
            include_optimal=True,
            config=FAST_CONFIG,
            seed=7,
            engine="batch",
        )
        assert legacy.per_sample["optimal"] == result.per_sample["optimal"]

    def test_montecarlo_optimal_column_is_cacheable(self, tmp_path):
        kwargs = dict(
            n_samples=3,
            policies=("sequential", "optimal"),
            config=FAST_CONFIG,
            seed=5,
            engine="batch",
            cache_dir=str(tmp_path / "store"),
        )
        cold = run_montecarlo([SMALL, SMALL], **kwargs)
        warm = run_montecarlo([SMALL, SMALL], **kwargs)
        assert warm.per_sample == cold.per_sample
        # One store entry, all chunks complete.
        [entry] = ResultStore(tmp_path / "store").entries()
        assert entry.complete
        assert "optimal" in entry.policies

    def test_montecarlo_optimal_column_matches_with_and_without_store(self, tmp_path):
        """Capped or not, the optimal column must not depend on whether a
        cache_dir was supplied (both paths share the scalar-DFS fallback)."""
        kwargs = dict(
            n_samples=3,
            policies=("sequential", "optimal"),
            config=FAST_CONFIG,
            seed=3,
            engine="batch",
            optimal_max_nodes=10,
        )
        direct = run_montecarlo([SMALL, SMALL], **kwargs)
        stored = run_montecarlo(
            [SMALL, SMALL], cache_dir=str(tmp_path / "store"), **kwargs
        )
        assert stored.per_sample["optimal"] == direct.per_sample["optimal"]

    def test_montecarlo_rejects_policy_objects_named_optimal(self):
        from repro.core.policies import make_policy

        impostor = make_policy("sequential")
        impostor.name = "optimal"
        with pytest.raises(ValueError, match="branch-and-bound"):
            run_montecarlo(
                [SMALL, SMALL], n_samples=2, policies=(impostor,),
                config=FAST_CONFIG,
            )

    def test_montecarlo_scalar_engine_agrees_with_batch(self):
        batch = run_montecarlo(
            [SMALL, SMALL],
            n_samples=2,
            policies=("sequential", "optimal"),
            config=FAST_CONFIG,
            seed=9,
            engine="batch",
        )
        scalar = run_montecarlo(
            [SMALL, SMALL],
            n_samples=2,
            policies=("sequential", "optimal"),
            config=FAST_CONFIG,
            seed=9,
            engine="scalar",
        )
        for policy in ("sequential", "optimal"):
            for a, b in zip(batch.per_sample[policy], scalar.per_sample[policy]):
                assert a == pytest.approx(b, abs=1e-6)


class TestOptimalSeeding:
    """Spec-level dominance pruning of the optimal column.

    The contract: seeded (default) and unseeded sweeps return *bitwise
    identical* lifetimes, completeness masks, decision counts and residual
    charge -- only the expanded-node accounting may differ -- and on a
    monotone capacity grid the seeding strictly reduces the total node
    count."""

    def grid_spec(self, scales=(0.9, 0.95, 1.0), load_names=("CL alt", "ILs alt")):
        medium = B1.scaled(0.75)
        return SweepSpec(
            name="seed-grid",
            batteries=battery_grid(
                [round(medium.capacity * s, 6) for s in scales],
                c=medium.c,
                k_prime=medium.k_prime,
            ),
            loads=(LoadAxis.paper(list(load_names)),),
            policies=("sequential",),
        ).with_optimal()

    def run_pair(self, spec, store=None):
        seeded = SweepRunner(store, seed_optimal=True).run(spec)
        fresh = SweepRunner(None, seed_optimal=False).run(spec)
        return seeded, fresh

    def test_seeded_sweep_is_bitwise_identical_to_fresh(self):
        seeded, fresh = self.run_pair(self.grid_spec())
        for field in ("lifetimes", "decisions", "residual_charge"):
            np.testing.assert_array_equal(
                getattr(seeded, field)["optimal"], getattr(fresh, field)["optimal"]
            )
        np.testing.assert_array_equal(
            seeded.complete["optimal"], fresh.complete["optimal"]
        )

    def test_seeding_strictly_reduces_expanded_nodes(self):
        """Pinned on a table5-style capacity grid (2-battery B1-family
        configurations under paper loads): the seeded optimal column must
        expand strictly fewer nodes in total than fresh searches."""
        seeded, fresh = self.run_pair(self.grid_spec())
        seeded_nodes = int(seeded.nodes["optimal"].sum())
        fresh_nodes = int(fresh.nodes["optimal"].sum())
        assert seeded_nodes < fresh_nodes
        # Only chain-interior points are seeded; the first capacity of each
        # load's chain runs fresh.
        flags = seeded.seeded["optimal"]
        assert flags.any()
        assert not fresh.seeded["optimal"].any()

    def test_seeded_sweep_remains_identical_under_node_caps(self):
        """Capped searches re-run without the seed before the scalar-DFS
        fallback, so the bitwise contract holds even where max_nodes
        bites."""
        spec = self.grid_spec().with_optimal(max_nodes=3, dominance_tolerance=0.0)
        seeded, fresh = self.run_pair(spec)
        for field in ("lifetimes", "decisions", "residual_charge"):
            np.testing.assert_array_equal(
                getattr(seeded, field)["optimal"], getattr(fresh, field)["optimal"]
            )
        np.testing.assert_array_equal(
            seeded.complete["optimal"], fresh.complete["optimal"]
        )

    def test_nodes_and_seeded_flags_round_trip_the_store(self, tmp_path):
        spec = self.grid_spec()
        store = ResultStore(tmp_path / "store")
        cold = SweepRunner(store).run(spec)
        warm = SweepRunner(store).run(spec)
        assert warm.stats.chunks_run == 0
        np.testing.assert_array_equal(
            warm.nodes["optimal"], cold.nodes["optimal"]
        )
        np.testing.assert_array_equal(
            warm.seeded["optimal"], cold.seeded["optimal"]
        )
        assert (cold.nodes["optimal"] > 0).all()

    def test_render_reports_seeded_node_counts(self):
        seeded, _ = self.run_pair(self.grid_spec())
        rendered = seeded.render()
        n_seeded = int(seeded.seeded["optimal"].sum())
        assert "optimal search:" in rendered
        assert f"{n_seeded} seeded" in rendered
        # Sweeps without an optimal column stay footer-free.
        plain = SweepRunner(None).run(small_spec(n_samples=2))
        assert "optimal search:" not in plain.render()

    def test_render_reports_legacy_chunks_as_unknown(self, tmp_path):
        """Chunks persisted before per-scenario ``nodes``/``seeded`` existed
        load back without those fields; the footer must report their node
        counts as unknown instead of folding zeros into the totals."""
        spec = self.grid_spec()
        store = ResultStore(tmp_path / "store")
        SweepRunner(store).run(spec)
        spec_hash = spec.spec_hash()
        for index in range(spec.n_chunks):
            chunk = store.load_chunk(spec_hash, index, spec.policies)
            for fields in chunk.values():
                fields.pop("nodes", None)
                fields.pop("seeded", None)
            store.save_chunk(spec_hash, index, chunk, 0.0)
        warm = SweepRunner(store).run(spec)
        assert warm.stats.chunks_run == 0
        assert not warm.nodes_known["optimal"].any()
        rendered = warm.render()
        assert "node counts unknown" in rendered
        assert "nodes expanded" not in rendered

    def test_render_separates_legacy_and_measured_chunks(self):
        """A mixed store (legacy + current chunks) totals only the measured
        scenarios and annotates how many searches predate the accounting."""
        seeded, _ = self.run_pair(self.grid_spec())
        known = seeded.nodes_known["optimal"]
        assert known.all()
        known[0] = False
        rendered = seeded.render()
        measured = int(seeded.nodes["optimal"][known].sum())
        assert f"{measured:,} nodes expanded" in rendered
        assert "1 searches predate per-scenario node accounting" in rendered

    def test_seed_chains_group_by_load_and_sort_by_capacity(self):
        from repro.sweep import optimal_seed_chains

        spec = self.grid_spec(scales=(1.0, 0.9, 0.95), load_names=("CL alt",))
        points = spec.expand()
        chains = optimal_seed_chains(points)
        assert sorted(sum(chains, [])) == list(range(len(points)))
        [chain] = chains
        capacities = [points[i].battery_params[0].capacity for i in chain]
        assert capacities == sorted(capacities)

    def test_seed_chains_break_on_non_monotone_axes(self):
        from repro.sweep import optimal_seed_chains

        a = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122)
        b = BatteryParameters(capacity=2.0, c=0.25, k_prime=0.2)  # other chemistry
        spec = SweepSpec(
            name="mixed",
            batteries=(
                BatteryConfig(label="A", params=(a, a)),
                BatteryConfig(label="B", params=(b, b)),
            ),
            loads=(LoadAxis.paper(["CL alt"]),),
            policies=("sequential",),
        ).with_optimal()
        points = spec.expand()
        chains = optimal_seed_chains(points)
        # Different (c, k') cannot chain: two singleton chains.
        assert sorted(len(chain) for chain in chains) == [1, 1]

    def test_cli_no_optimal_seeding_flag(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(self.grid_spec().to_dict()))
        store = str(tmp_path / "store")
        assert sweep_cli(
            ["run", "--spec-file", str(spec_file), "--store", store,
             "--no-optimal-seeding", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 seeded" in out


class TestAggregation:
    def test_table_groups_random_samples(self, tmp_path):
        spec = small_spec(n_samples=8)
        result = SweepRunner(ResultStore(tmp_path / "store")).run(spec)
        [row] = result.table()
        assert row.n_samples == 8
        assert row.battery_label == "2xSMALL"
        assert set(row.mean_lifetimes) == set(spec.policies)

    def test_distributions_are_analysis_ready(self, tmp_path):
        spec = small_spec(n_samples=8)
        result = SweepRunner(ResultStore(tmp_path / "store")).run(spec)
        distributions = result.distributions()
        key = ("2xSMALL", "random(seed=3)", "sequential")
        assert distributions[key].samples == 8
        assert distributions[key].minimum <= distributions[key].median
        assert distributions[key].median <= distributions[key].maximum

    def test_survivors_render_without_crashing(self):
        spec = SweepSpec(
            name="survive",
            batteries=(BatteryConfig(label="2xB2", params=(B2, B2)),),
            loads=(
                LoadAxis.generator(
                    "duty-cycle", label="light", current=0.05, period=2.0,
                    duty_cycle=0.5, cycles=5,
                ),
            ),
            policies=("sequential",),
        )
        result = SweepRunner().run(spec)
        assert np.isnan(result.lifetimes["sequential"]).all()
        assert "survived" in result.render()
