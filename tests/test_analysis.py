"""Tests for the analysis layer (tables, figures, report rendering)."""

import pytest

from repro.analysis.figures import charge_trace_for_schedule, figure6, residual_charge_summary
from repro.analysis.report import (
    render_charge_series_csv,
    render_figure6_summary,
    render_schedule_ascii,
    render_scheduling_table,
    render_validation_table,
)
from repro.analysis.tables import (
    PAPER_TABLE3,
    PAPER_TABLE5,
    scheduling_table,
    validation_table,
)
from repro.core.simulator import simulate_policy
from repro.kibam.parameters import B1
from repro.workloads.profiles import paper_loads


@pytest.fixture(scope="module")
def fast_loads():
    """A subset of the paper loads that keeps the analysis tests quick."""
    loads = paper_loads()
    return {name: loads[name] for name in ("CL 500", "ILs alt")}


class TestValidationTable:
    def test_rows_carry_paper_reference_values(self, fast_loads):
        rows = validation_table(B1, loads=fast_loads, paper_reference=PAPER_TABLE3)
        by_name = {row.load_name: row for row in rows}
        assert by_name["CL 500"].paper_analytical == pytest.approx(2.02)
        assert by_name["CL 500"].paper_discrete == pytest.approx(2.04)

    def test_differences_stay_within_the_paper_band(self, fast_loads):
        rows = validation_table(B1, loads=fast_loads)
        for row in rows:
            assert abs(row.difference_percent) < 1.5

    def test_measured_values_match_the_paper(self, fast_loads):
        rows = validation_table(B1, loads=fast_loads, paper_reference=PAPER_TABLE3)
        for row in rows:
            if row.paper_analytical is not None:
                assert row.analytical_lifetime == pytest.approx(row.paper_analytical, abs=0.02)
            if row.paper_discrete is not None:
                assert row.discrete_lifetime == pytest.approx(row.paper_discrete, abs=0.05)

    def test_rendering_contains_every_load(self, fast_loads):
        rows = validation_table(B1, loads=fast_loads)
        text = render_validation_table(rows, "Table 3 subset")
        for name in fast_loads:
            assert name in text


class TestSchedulingTable:
    def test_rows_reproduce_the_paper_shape(self, fast_loads):
        rows = scheduling_table([B1, B1], loads=fast_loads, paper_reference=PAPER_TABLE5)
        for row in rows:
            assert row.sequential <= row.round_robin + 1e-9
            assert row.round_robin <= row.best_of_two + 1e-9
            assert row.best_of_two <= row.optimal + 1e-9
            assert row.sequential_diff_percent <= 0.0
            assert row.optimal_diff_percent >= -1e-9

    def test_values_close_to_table_5(self, fast_loads):
        rows = scheduling_table([B1, B1], loads=fast_loads, paper_reference=PAPER_TABLE5)
        for row in rows:
            paper_seq, paper_rr, paper_best, paper_opt = row.paper_values
            assert row.sequential == pytest.approx(paper_seq, rel=0.03)
            assert row.round_robin == pytest.approx(paper_rr, rel=0.03)
            assert row.best_of_two == pytest.approx(paper_best, rel=0.03)
            assert row.optimal == pytest.approx(paper_opt, rel=0.03)

    def test_rendering(self, fast_loads):
        rows = scheduling_table([B1, B1], loads=fast_loads, paper_reference=PAPER_TABLE5)
        text = render_scheduling_table(rows, "Table 5 subset")
        assert "ILs alt" in text and "paper" in text


class TestFigure6:
    def test_traces_have_consistent_shapes(self):
        data = figure6(sample_interval=0.25)
        for trace in (data.best_of_two, data.optimal):
            assert len(trace.times) == len(trace.chosen_battery)
            assert trace.n_batteries == 2
            for series in trace.total_charge + trace.available_charge:
                assert len(series) == len(trace.times)

    def test_optimal_trace_outlives_best_of_two(self):
        data = figure6(sample_interval=0.25)
        assert data.optimal.lifetime >= data.best_of_two.lifetime - 1e-9

    def test_charge_is_monotone_decreasing_in_total(self):
        data = figure6(sample_interval=0.25)
        for series in data.best_of_two.total_charge:
            assert all(later <= earlier + 1e-9 for earlier, later in zip(series, series[1:]))

    def test_available_charge_recovers_during_idle(self):
        # The recovery effect is the visual hallmark of Figure 6: available
        # charge must rise somewhere along the trace.
        data = figure6(sample_interval=0.1)
        rises = 0
        for series in data.best_of_two.available_charge:
            rises += sum(1 for a, b in zip(series, series[1:]) if b > a + 1e-9)
        assert rises > 0

    def test_residual_charge_matches_paper_observation(self):
        # Section 6: roughly 3.9 Amin (~70 % of the 5.5 Amin capacity of one
        # battery... of the combined 11 Amin about 70 %) remains at death.
        data = figure6(sample_interval=0.25)
        summary = residual_charge_summary(data.best_of_two)
        assert 0.5 < summary["residual_fraction"] < 0.85

    def test_trace_for_arbitrary_schedule(self, loads):
        result = simulate_policy([B1, B1], loads["CL alt"], "round-robin")
        trace = charge_trace_for_schedule(
            [B1, B1], result.schedule, result.lifetime_or_raise(), sample_interval=0.2
        )
        assert trace.times[-1] == pytest.approx(result.lifetime_or_raise())

    def test_renderers_produce_text(self):
        data = figure6(sample_interval=0.5)
        assert "Figure 6" in render_figure6_summary(data)
        assert "battery 0" in render_schedule_ascii(data.optimal)
        csv = render_charge_series_csv(data.best_of_two)
        assert csv.splitlines()[0].startswith("time_min,total_0")
