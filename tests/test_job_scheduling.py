"""Tests for single-battery job scheduling over time (the paper's outlook)."""

import pytest

from repro.core.job_scheduling import (
    Job,
    JobScheduler,
    eager_timeline,
    schedule_jobs,
    spread_timeline,
)
from repro.kibam.lifetime import lifetime_under_segments
from repro.kibam.parameters import BatteryParameters

SMALL = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")


def burst_jobs(count: int, current: float = 0.25, duration: float = 0.4):
    """A burst of identical jobs, all released at time zero, no deadlines.

    At 250 mA a fresh 1 Amin cell survives one 0.4-minute job but dies early
    in the second when they run back to back; with recovery gaps several
    jobs complete, so the burst rewards battery-aware spacing.
    """
    return [Job(name=f"job-{i}", current=current, duration=duration) for i in range(count)]


class TestJobValidation:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            Job(name="bad", current=0.0, duration=1.0)
        with pytest.raises(ValueError):
            Job(name="bad", current=0.1, duration=0.0)
        with pytest.raises(ValueError):
            Job(name="bad", current=0.1, duration=1.0, release=-1.0)
        with pytest.raises(ValueError):
            Job(name="bad", current=0.1, duration=2.0, release=0.0, deadline=1.0)

    def test_job_charge(self):
        assert Job(name="j", current=0.4, duration=0.5).charge == pytest.approx(0.2)


class TestBaselines:
    def test_eager_runs_back_to_back(self):
        timeline = eager_timeline(SMALL, burst_jobs(2, current=0.1))
        assert timeline.completed_count == 2
        assert timeline.scheduled[0].start == pytest.approx(0.0)
        assert timeline.scheduled[1].start == pytest.approx(timeline.scheduled[0].job.duration)

    def test_eager_drops_jobs_when_the_battery_dies(self):
        timeline = eager_timeline(SMALL, burst_jobs(8))
        assert timeline.completed_count < 8
        assert timeline.dropped

    def test_spread_inserts_idle_time(self):
        timeline = spread_timeline(SMALL, burst_jobs(3, current=0.1), horizon=20.0)
        starts = [item.start for item in timeline.scheduled]
        assert starts[0] > 0.0
        assert all(later > earlier for earlier, later in zip(starts, starts[1:]))

    def test_spread_completes_more_than_eager_on_heavy_bursts(self):
        jobs = burst_jobs(8)
        eager = eager_timeline(SMALL, jobs, horizon=40.0)
        spread = spread_timeline(SMALL, jobs, horizon=40.0)
        # Idle time between jobs lets the battery recover, so spreading the
        # burst completes at least as many jobs (strictly more for this burst).
        assert spread.completed_count >= eager.completed_count

    def test_deadlines_are_respected(self):
        jobs = [Job(name="tight", current=0.1, duration=1.0, deadline=2.0)]
        timeline = spread_timeline(SMALL, jobs, horizon=50.0)
        assert timeline.completed_count == 1
        assert timeline.scheduled[0].end <= 2.0 + 1e-9


class TestOptimizedScheduling:
    def test_optimized_never_completes_fewer_jobs_than_the_baselines(self):
        result = schedule_jobs(SMALL, burst_jobs(6), horizon=30.0, slot=2.0)
        assert result.best.completed_count >= result.eager.completed_count
        assert result.best.completed_count >= result.spread.completed_count

    def test_optimized_beats_eager_on_a_heavy_burst(self):
        result = schedule_jobs(SMALL, burst_jobs(6), horizon=30.0, slot=2.5)
        assert result.best.completed_count > result.eager.completed_count

    def test_timeline_is_physically_consistent(self):
        result = schedule_jobs(SMALL, burst_jobs(5), horizon=25.0, slot=2.0)
        timeline = result.best
        # Jobs are ordered and non-overlapping.
        for earlier, later in zip(timeline.scheduled, timeline.scheduled[1:]):
            assert later.start >= earlier.end - 1e-9
        # The produced segments never kill the battery before the last job.
        segments = timeline.segments()
        lifetime = lifetime_under_segments(SMALL, segments)
        assert lifetime is None or lifetime >= timeline.makespan - 1e-6

    def test_node_budget_marks_result_incomplete(self):
        result = schedule_jobs(SMALL, burst_jobs(6), horizon=40.0, slot=1.0, max_nodes=3)
        assert not result.complete
        assert result.best.completed_count >= result.eager.completed_count

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            JobScheduler(SMALL, [], horizon=10.0)
        with pytest.raises(ValueError):
            JobScheduler(SMALL, burst_jobs(1), horizon=0.0)
        with pytest.raises(ValueError):
            JobScheduler(SMALL, burst_jobs(1), horizon=10.0, slot=0.0)
        with pytest.raises(ValueError):
            spread_timeline(SMALL, burst_jobs(1), horizon=-1.0)
