"""Tests for the CI benchmark-regression gate (scripts/check_bench.py).

The gate's contract: compare the throughput *ratios* of freshly written
``BENCH_*.json`` records against committed baselines, tolerate noise up to
the allowed fraction, and fail hard beyond it -- demonstrated here with an
injected 50% synthetic regression, the scenario the CI step must catch.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[1] / "scripts" / "check_bench.py"
)


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_bench"] = module
    spec.loader.exec_module(module)
    return module


def write_records(directory, speedups):
    directory.mkdir(parents=True, exist_ok=True)
    # A record file may carry several gated keys (BENCH_optimal.json holds
    # both the node-throughput speedup and the seeded-sweep node ratio), so
    # group by file before writing.
    contents = {}
    for (name, key), value in speedups.items():
        contents.setdefault(name, {"noise": "x"})[key] = value
    for name, payload in contents.items():
        (directory / name).write_text(json.dumps(payload))


def all_checks(check_bench, value):
    return {pair: value for pair in check_bench.CHECKS}


class TestGateDecisions:
    def test_matching_ratios_pass(self, check_bench, tmp_path):
        write_records(tmp_path / "fresh", all_checks(check_bench, 20.0))
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 0

    def test_noise_within_tolerance_passes(self, check_bench, tmp_path):
        # 25% below baseline: inside the 30% envelope.
        write_records(tmp_path / "fresh", all_checks(check_bench, 15.0))
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 0

    def test_injected_50_percent_regression_fails(self, check_bench, tmp_path):
        """The acceptance demonstration: a synthetic 50% throughput
        regression (every ratio halved) must fail the gate."""
        write_records(tmp_path / "fresh", all_checks(check_bench, 10.0))
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_single_record_regression_fails(self, check_bench, tmp_path):
        fresh = all_checks(check_bench, 20.0)
        fresh[("BENCH_dkibam.json", "speedup")] = 9.0  # 55% drop
        write_records(tmp_path / "fresh", fresh)
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_optimal_record_is_gated(self, check_bench, tmp_path):
        """The batched-optimal node-throughput ratio sits under the same
        gate as the other records: halving it alone must fail."""
        assert ("BENCH_optimal.json", "speedup") in check_bench.CHECKS
        fresh = all_checks(check_bench, 20.0)
        fresh[("BENCH_optimal.json", "speedup")] = 10.0  # 50% drop
        write_records(tmp_path / "fresh", fresh)
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_seeded_sweep_nodes_ratio_is_gated(self, check_bench, tmp_path):
        """The seeded-vs-fresh sweep node ratio is gated too: if seeding
        stops pruning (ratio collapses toward 1x from a 20x synthetic
        baseline), the gate must fail on that key alone."""
        assert ("BENCH_optimal.json", "sweep_nodes_ratio") in check_bench.CHECKS
        fresh = all_checks(check_bench, 20.0)
        fresh[("BENCH_optimal.json", "sweep_nodes_ratio")] = 1.0
        write_records(tmp_path / "fresh", fresh)
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_certification_nodes_ratio_is_gated(self, check_bench, tmp_path):
        """The certification-floor node ratio is gated: if the admissible
        bound loosens (ratio collapses toward 1x from the committed
        baseline), the gate must fail on that key alone."""
        assert (
            "BENCH_optimal.json",
            "certification_nodes_ratio",
        ) in check_bench.CHECKS
        fresh = all_checks(check_bench, 20.0)
        fresh[("BENCH_optimal.json", "certification_nodes_ratio")] = 1.0
        write_records(tmp_path / "fresh", fresh)
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_fleet_symmetry_ratio_is_gated(self, check_bench, tmp_path):
        """The group-symmetry node ratio is gated: if the reduction stops
        pruning permuted duplicates (ratio collapses toward 1x from the
        committed baseline), the gate must fail on that key alone."""
        assert (
            "BENCH_fleet.json",
            "group_symmetry_nodes_ratio",
        ) in check_bench.CHECKS
        fresh = all_checks(check_bench, 20.0)
        fresh[("BENCH_fleet.json", "group_symmetry_nodes_ratio")] = 1.0
        write_records(tmp_path / "fresh", fresh)
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_missing_fresh_record_fails(self, check_bench, tmp_path):
        (tmp_path / "fresh").mkdir()
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 1

    def test_missing_baseline_skips(self, check_bench, tmp_path):
        """A brand-new benchmark has no committed baseline yet: no failure."""
        write_records(tmp_path / "fresh", all_checks(check_bench, 20.0))
        (tmp_path / "base").mkdir()
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base")]
        ) == 0

    def test_wider_tolerance_accepts_half(self, check_bench, tmp_path):
        write_records(tmp_path / "fresh", all_checks(check_bench, 10.0))
        write_records(tmp_path / "base", all_checks(check_bench, 20.0))
        assert check_bench.main(
            ["--fresh-dir", str(tmp_path / "fresh"),
             "--baseline-dir", str(tmp_path / "base"),
             "--max-regression", "0.6"]
        ) == 0

    def test_ratios_not_absolute_seconds(self, check_bench, tmp_path):
        """A uniformly slower machine (same ratios, 10x the seconds) passes."""
        fresh_dir, base_dir = tmp_path / "fresh", tmp_path / "base"
        for directory, seconds in ((fresh_dir, 50.0), (base_dir, 5.0)):
            directory.mkdir()
            payloads = {}
            for name, key in check_bench.CHECKS:
                payloads.setdefault(
                    name, {"batch_seconds_per_sweep": seconds}
                )[key] = 20.0
            for name, payload in payloads.items():
                (directory / name).write_text(json.dumps(payload))
        assert check_bench.main(
            ["--fresh-dir", str(fresh_dir), "--baseline-dir", str(base_dir)]
        ) == 0

    def test_git_baseline_against_head(self, check_bench):
        """The CI default path: baselines from `git show HEAD:...`."""
        baseline = check_bench.load_baseline("BENCH_engine.json", "HEAD", None)
        assert baseline is not None and "speedup" in baseline
