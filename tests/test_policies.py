"""Tests for the scheduling policies."""

import pytest

from repro.core.battery import BatteryView
from repro.core.policies import (
    BestOfTwoPolicy,
    DecisionContext,
    FixedAssignmentPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SequentialPolicy,
    WorstOfTwoPolicy,
    make_policy,
)


def make_context(available, empty=None, previous=None, is_switchover=False):
    """Build a decision context from per-battery available-charge values."""
    empty = empty or [False] * len(available)
    views = [
        BatteryView(index=i, available_charge=a, total_charge=a + 1.0, is_empty=e)
        for i, (a, e) in enumerate(zip(available, empty))
    ]
    return DecisionContext(
        time=0.0,
        epoch_index=0,
        job_index=0,
        current=0.5,
        remaining_duration=1.0,
        views=views,
        is_switchover=is_switchover,
        previous_choice=previous,
    )


class TestSequentialPolicy:
    def test_always_picks_lowest_alive_index(self):
        policy = SequentialPolicy()
        assert policy.choose(make_context([1.0, 2.0])) == 0
        assert policy.choose(make_context([1.0, 2.0], empty=[True, False])) == 1

    def test_raises_when_everything_is_empty(self):
        with pytest.raises(ValueError):
            SequentialPolicy().choose(make_context([0.0, 0.0], empty=[True, True]))


class TestRoundRobinPolicy:
    def test_cycles_through_batteries(self):
        policy = RoundRobinPolicy()
        policy.reset(3)
        choices = [policy.choose(make_context([1.0, 1.0, 1.0])) for _ in range(6)]
        assert choices == [0, 1, 2, 0, 1, 2]

    def test_skips_empty_batteries(self):
        policy = RoundRobinPolicy()
        policy.reset(3)
        assert policy.choose(make_context([1.0, 1.0, 1.0])) == 0
        assert policy.choose(make_context([1.0, 1.0, 1.0], empty=[False, True, False])) == 2

    def test_reset_restarts_the_cycle(self):
        policy = RoundRobinPolicy()
        policy.reset(2)
        assert policy.choose(make_context([1.0, 1.0])) == 0
        policy.reset(2)
        assert policy.choose(make_context([1.0, 1.0])) == 0


class TestBestOfTwoPolicy:
    def test_picks_highest_available_charge(self):
        assert BestOfTwoPolicy().choose(make_context([0.3, 0.8])) == 1

    def test_ties_alternate_away_from_previous_choice(self):
        policy = BestOfTwoPolicy()
        assert policy.choose(make_context([0.5, 0.5], previous=0)) == 1
        assert policy.choose(make_context([0.5, 0.5], previous=1)) == 0

    def test_ignores_empty_batteries(self):
        assert BestOfTwoPolicy().choose(make_context([0.9, 0.1], empty=[True, False])) == 1


class TestWorstOfTwoPolicy:
    def test_picks_lowest_available_charge(self):
        assert WorstOfTwoPolicy().choose(make_context([0.3, 0.8])) == 0


class TestRandomPolicy:
    def test_seeded_reproducibility(self):
        first = RandomPolicy(seed=5)
        second = RandomPolicy(seed=5)
        first.reset(2)
        second.reset(2)
        context = make_context([1.0, 1.0])
        assert [first.choose(context) for _ in range(10)] == [
            second.choose(context) for _ in range(10)
        ]

    def test_only_chooses_alive_batteries(self):
        policy = RandomPolicy(seed=0)
        policy.reset(3)
        context = make_context([1.0, 1.0, 1.0], empty=[True, False, True])
        assert all(policy.choose(context) == 1 for _ in range(5))


class TestFixedAssignmentPolicy:
    def test_replays_the_assignment(self):
        policy = FixedAssignmentPolicy([1, 0, 1])
        policy.reset(2)
        context = make_context([1.0, 1.0])
        assert [policy.choose(context) for _ in range(3)] == [1, 0, 1]

    def test_falls_back_to_best_available_after_the_assignment(self):
        policy = FixedAssignmentPolicy([0])
        policy.reset(2)
        policy.choose(make_context([1.0, 1.0]))
        assert policy.choose(make_context([0.2, 0.9])) == 1

    def test_rejects_replaying_onto_an_empty_battery(self):
        policy = FixedAssignmentPolicy([0])
        policy.reset(2)
        with pytest.raises(ValueError):
            policy.choose(make_context([0.0, 1.0], empty=[True, False]))


class TestRegistry:
    def test_known_policies(self):
        for name in ("sequential", "round-robin", "best-of-two", "worst-of-two"):
            assert make_policy(name).name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_policy("does-not-exist")
