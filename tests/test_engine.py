"""Tests for the batch execution engine (repro.engine).

The central contract is scalar/batch equivalence: the vectorized
``BatchSimulator`` must reproduce the scalar ``MultiBatterySimulator``
lifetimes within 1e-9 minutes across random loads, policies and battery
counts -- including mid-job switchovers, asymmetric batteries and loads the
batteries survive.  The scalar path stays the golden reference.
"""

import math

import numpy as np
import pytest

from repro.analysis.montecarlo import LifetimeDistribution, run_montecarlo
from repro.core.simulator import simulate_policy
from repro.engine import (
    BatchSimulator,
    ChunkedExecutor,
    KernelParams,
    ScenarioSet,
    VectorPolicyStack,
    available_charge_array,
    initial_state_array,
    make_vector_policy,
    run_chunked,
    simulate_lifetimes_chunk,
    step_constant_current_array,
    time_to_empty_array,
)
from repro.kibam.analytical import KibamState, initial_state, step_constant_current
from repro.kibam.lifetime import time_to_empty
from repro.kibam.parameters import B1, B2, BatteryParameters
from repro.workloads.generator import RandomLoadConfig, generate_random_load
from repro.workloads.load import Load, idle_epoch, job_epoch

SMALL = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")
SMALLER = BatteryParameters(capacity=0.7, c=0.166, k_prime=0.122, name="smaller")


def _double_chunk(chunk):
    """Module-level (picklable) identity-ish worker for executor tests."""
    return [item * 2 for item in chunk]


def _drop_last_of_chunk(chunk):
    """Misbehaving worker: returns one result fewer than items."""
    return [item for item in chunk][:-1]

FAST_CONFIG = RandomLoadConfig(
    levels=(0.25, 0.5),
    job_duration_range=(0.5, 1.0),
    idle_duration_range=(0.0, 1.0),
    total_duration=40.0,
    duration_step=0.25,
)

ALL_POLICIES = ("sequential", "round-robin", "best-of-two", "worst-of-two")


def assert_equivalent(params, loads, policy, tolerance=1e-9):
    """Batch lifetimes/decisions must match per-load scalar simulations."""
    batch = BatchSimulator(params).run(ScenarioSet.from_loads(loads), policy)
    for index, load in enumerate(loads):
        scalar = simulate_policy(params, load, policy)
        if scalar.lifetime is None:
            assert math.isnan(batch.lifetimes[index])
        else:
            assert batch.lifetimes[index] == pytest.approx(
                scalar.lifetime, abs=tolerance
            )
        assert batch.decisions[index] == scalar.decisions
        assert batch.residual_charge[index] == pytest.approx(
            scalar.residual_charge, abs=1e-8
        )


class TestKernels:
    def test_step_matches_scalar(self):
        kp = KernelParams.from_parameters([B1, B2])
        state = initial_state_array(kp, 1)
        currents = np.array([[0.5, 0.25]])
        durations = np.array([[2.0, 2.0]])
        stepped = step_constant_current_array(kp, state, currents, durations)
        for battery, (params, current) in enumerate([(B1, 0.5), (B2, 0.25)]):
            scalar = step_constant_current(params, initial_state(params), current, 2.0)
            assert stepped[0, battery, 0] == scalar.gamma
            assert stepped[0, battery, 1] == scalar.delta

    def test_time_to_empty_matches_brentq(self):
        # A spread of states, currents and horizons against the scalar solver.
        rng = np.random.default_rng(7)
        for _ in range(50):
            gamma = float(rng.uniform(0.2, 1.0)) * B1.capacity
            delta = float(rng.uniform(0.0, 0.5))
            current = float(rng.uniform(0.1, 0.9))
            horizon = float(rng.uniform(0.5, 40.0))
            scalar = time_to_empty(
                B1, KibamState(gamma=gamma, delta=delta), current, horizon=horizon
            )
            crossing, crossed = time_to_empty_array(
                np.array([B1.c]),
                np.array([B1.k_prime]),
                np.array([gamma]),
                np.array([delta]),
                np.array([current]),
                np.array([horizon]),
            )
            if scalar is None:
                assert not crossed[0]
            else:
                assert crossed[0]
                assert crossing[0] == pytest.approx(scalar, abs=1e-10)

    def test_available_charge_matches_scalar_view(self):
        from repro.core.battery import AnalyticalBattery

        kp = KernelParams.from_parameters([B1, B2])
        state = initial_state_array(kp, 1)
        state = step_constant_current_array(
            kp, state, np.array([[0.5, 0.25]]), np.array([[3.0, 3.0]])
        )
        avail = available_charge_array(kp, state)
        for battery, (params, current) in enumerate([(B1, 0.5), (B2, 0.25)]):
            model = AnalyticalBattery(params)
            scalar = model.step(model.initial_state(), current, 3.0).state
            assert avail[0, battery] == model.available_charge(scalar)

    def test_idle_never_crosses(self):
        crossing, crossed = time_to_empty_array(
            np.array([B1.c]),
            np.array([B1.k_prime]),
            np.array([B1.capacity]),
            np.array([0.0]),
            np.array([0.0]),
            np.array([1000.0]),
        )
        assert not crossed[0]

    def test_already_empty_crosses_at_zero(self):
        crossing, crossed = time_to_empty_array(
            np.array([B1.c]),
            np.array([B1.k_prime]),
            np.array([0.0]),
            np.array([1.0]),
            np.array([0.5]),
            np.array([10.0]),
        )
        assert crossed[0] and crossing[0] == 0.0


class TestScenarioSet:
    def test_padding_and_counts(self):
        short = Load.from_segments("short", [(0.5, 1.0)])
        longer = Load.from_segments("long", [(0.25, 1.0), (0.0, 2.0), (0.5, 3.0)])
        scen = ScenarioSet.from_loads([short, longer])
        assert scen.n_scenarios == 2 and scen.max_epochs == 3
        assert scen.n_epochs.tolist() == [1, 3]
        assert scen.currents[0].tolist() == [0.5, 0.0, 0.0]
        assert scen.durations[1].tolist() == [1.0, 2.0, 3.0]

    def test_random_matches_seeded_generator(self):
        scen = ScenarioSet.random(3, FAST_CONFIG, seed=9)
        for index in range(3):
            expected = generate_random_load(9 + index, FAST_CONFIG)
            assert scen.loads[index].epochs == expected.epochs

    def test_random_with_numpy_generator_reproducible(self):
        first = ScenarioSet.random(3, FAST_CONFIG, rng=np.random.default_rng(4))
        second = ScenarioSet.random(3, FAST_CONFIG, rng=np.random.default_rng(4))
        for a, b in zip(first.loads, second.loads):
            assert a.epochs == b.epochs

    def test_tiled(self):
        scen = ScenarioSet.random(2, FAST_CONFIG, seed=1)
        tiled = scen.tiled(3)
        assert tiled.n_scenarios == 6
        assert np.array_equal(tiled.currents[2], scen.currents[0])
        assert tiled.loads[4].epochs == scen.loads[0].epochs

    def test_chunked_partitions_in_order(self):
        scen = ScenarioSet.random(5, FAST_CONFIG, seed=2)
        chunks = list(scen.chunked(2))
        assert [c.n_scenarios for c in chunks] == [2, 2, 1]
        assert chunks[2].loads[0].epochs == scen.loads[4].epochs

    def test_subset(self):
        scen = ScenarioSet.random(4, FAST_CONFIG, seed=3)
        sub = scen.subset([2, 0])
        assert sub.n_scenarios == 2
        assert sub.loads[0].epochs == scen.loads[2].epochs
        assert sub.loads[1].epochs == scen.loads[0].epochs


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_random_loads_two_batteries(self, policy):
        loads = [generate_random_load(100 + i, FAST_CONFIG) for i in range(12)]
        assert_equivalent([SMALL, SMALL], loads, policy)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_asymmetric_batteries(self, policy):
        loads = [generate_random_load(200 + i, FAST_CONFIG) for i in range(8)]
        assert_equivalent([SMALL, SMALLER], loads, policy)

    @pytest.mark.parametrize("n_batteries", [1, 2, 3, 4, 8])
    def test_battery_counts(self, n_batteries):
        loads = [generate_random_load(300 + i, FAST_CONFIG) for i in range(6)]
        assert_equivalent([SMALL] * n_batteries, loads, "best-of-two")

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("n_batteries", [3, 4, 8])
    def test_mixed_fleets_all_policies(self, policy, n_batteries):
        """The fleet parity matrix: mixed identical-subgroup fleets at
        N in {3, 4, 8} under every heuristic policy."""
        fleet = [SMALL] * (n_batteries - n_batteries // 2) + [SMALLER] * (
            n_batteries // 2
        )
        loads = [generate_random_load(350 + i, FAST_CONFIG) for i in range(4)]
        assert_equivalent(fleet, loads, policy)

    def test_continuous_loads_force_switchovers(self):
        # Back-to-back jobs with no idle: batteries empty mid-job and the
        # policy must hand over within the epoch.
        config = RandomLoadConfig(
            levels=(0.4, 0.6),
            job_duration_range=(1.0, 3.0),
            idle_duration_range=(0.0, 0.0),
            total_duration=30.0,
            duration_step=0.25,
        )
        loads = [generate_random_load(400 + i, config) for i in range(8)]
        scen = ScenarioSet.from_loads(loads)
        batch = BatchSimulator([SMALL, SMALL]).run(scen, "sequential")
        scalars = [simulate_policy([SMALL, SMALL], load, "sequential") for load in loads]
        # The scenario must actually exercise switchovers for the test to
        # mean anything.
        assert any(
            entry.switchover for result in scalars for entry in result.schedule.entries
        )
        for index, scalar in enumerate(scalars):
            assert batch.lifetimes[index] == pytest.approx(scalar.lifetime, abs=1e-9)

    def test_single_long_job(self):
        load = Load.from_segments("drain", [(0.5, 1000.0)])
        assert_equivalent([SMALL, SMALL], [load], "sequential")

    def test_all_idle_load_survives(self):
        load = Load(name="nap", epochs=(idle_epoch(5.0), idle_epoch(3.0)))
        batch = BatchSimulator([SMALL]).run(ScenarioSet.from_loads([load]), "sequential")
        assert bool(batch.survived[0])
        assert batch.decisions[0] == 0
        with pytest.raises(RuntimeError):
            batch.lifetimes_or_raise()
        scalar = simulate_policy([SMALL], load, "sequential")
        assert scalar.lifetime is None

    def test_mixed_survival_masks_dead_scenarios(self):
        # One scenario dies, one survives: the dead lane must not keep the
        # surviving lane from finishing (or vice versa).
        dies = Load.from_segments("dies", [(0.5, 1000.0)])
        survives = Load(name="survives", epochs=(job_epoch(0.1, 0.5), idle_epoch(1.0)))
        batch = BatchSimulator([SMALL]).run(
            ScenarioSet.from_loads([dies, survives]), "sequential"
        )
        assert not np.isnan(batch.lifetimes[0])
        assert math.isnan(batch.lifetimes[1])

    def test_idle_head_and_tail(self):
        load = Load(
            name="padded",
            epochs=(idle_epoch(2.0), job_epoch(0.5, 50.0), idle_epoch(2.0)),
        )
        assert_equivalent([SMALL, SMALL], [load], "round-robin")

    def test_run_many_rejects_duplicate_policy_names(self):
        scen = ScenarioSet.random(2, FAST_CONFIG, seed=1)
        sim = BatchSimulator([SMALL, SMALL])
        with pytest.raises(ValueError, match="unique"):
            sim.run_many(scen, ["sequential", make_vector_policy("sequential")])

    def test_run_many_matches_individual_runs(self):
        loads = [generate_random_load(500 + i, FAST_CONFIG) for i in range(6)]
        scen = ScenarioSet.from_loads(loads)
        sim = BatchSimulator([SMALL, SMALL])
        stacked = sim.run_many(scen, ALL_POLICIES)
        for policy in ALL_POLICIES:
            single = sim.run(scen, policy)
            # Not bitwise: np.exp may take different SIMD paths at different
            # batch sizes, so stacked and solo runs agree only to the same
            # 1e-9 contract as scalar vs batch.
            np.testing.assert_allclose(
                stacked[policy].lifetimes, single.lifetimes, rtol=0, atol=1e-9
            )
            assert np.array_equal(stacked[policy].decisions, single.decisions)

    def test_policy_stack_isolates_stateful_lanes(self):
        loads = [generate_random_load(600 + i, FAST_CONFIG) for i in range(4)]
        scen = ScenarioSet.from_loads(loads)
        stack = VectorPolicyStack(
            [make_vector_policy("round-robin"), make_vector_policy("round-robin")], 4
        )
        sim = BatchSimulator([SMALL, SMALL])
        stacked = sim._run_vectorized(scen.tiled(2), stack)
        single = sim.run(scen, "round-robin")
        np.testing.assert_allclose(
            stacked.lifetimes[:4], single.lifetimes, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            stacked.lifetimes[4:], single.lifetimes, rtol=0, atol=1e-9
        )


class TestFallbacks:
    def test_linear_backend_falls_back_to_scalar(self):
        loads = [generate_random_load(700 + i, FAST_CONFIG) for i in range(2)]
        batch = BatchSimulator([SMALL, SMALL], backend="linear").run(
            ScenarioSet.from_loads(loads), "best-of-two"
        )
        for index, load in enumerate(loads):
            scalar = simulate_policy(
                [SMALL, SMALL], load, "best-of-two", backend="linear"
            )
            assert batch.lifetimes[index] == scalar.lifetime

    def test_discrete_with_unvectorizable_policy_falls_back(self):
        from repro.core.policies import RandomPolicy

        loads = [generate_random_load(705, FAST_CONFIG)]
        batch = BatchSimulator([SMALL, SMALL], model="discrete").run(
            ScenarioSet.from_loads(loads), RandomPolicy(seed=5)
        )
        scalar = simulate_policy(
            [SMALL, SMALL], loads[0], RandomPolicy(seed=5), backend="discrete"
        )
        assert batch.lifetimes[0] == scalar.lifetime
        assert batch.lifetime_ticks is None  # scalar fallback, no tick record

    def test_unvectorizable_policy_falls_back(self):
        from repro.core.policies import RandomPolicy

        loads = [generate_random_load(800, FAST_CONFIG)]
        batch = BatchSimulator([SMALL, SMALL]).run(
            ScenarioSet.from_loads(loads), RandomPolicy(seed=3)
        )
        scalar = simulate_policy([SMALL, SMALL], loads[0], RandomPolicy(seed=3))
        assert batch.lifetimes[0] == scalar.lifetime


class TestParallelExecutor:
    def test_inline_worker(self):
        loads = [generate_random_load(900 + i, FAST_CONFIG) for i in range(5)]
        import functools

        worker = functools.partial(
            simulate_lifetimes_chunk, params=(SMALL, SMALL), policy_name="sequential"
        )
        lifetimes = run_chunked(worker, loads, n_workers=1, chunk_size=2)
        assert len(lifetimes) == 5
        for load, lifetime in zip(loads, lifetimes):
            assert lifetime == simulate_policy([SMALL, SMALL], load, "sequential").lifetime

    def test_multiprocess_worker_matches_inline(self):
        loads = [generate_random_load(950 + i, FAST_CONFIG) for i in range(4)]
        import functools

        worker = functools.partial(
            simulate_lifetimes_chunk, params=(SMALL, SMALL), policy_name="round-robin"
        )
        inline = run_chunked(worker, loads, n_workers=1)
        forked = run_chunked(worker, loads, n_workers=2, chunk_size=2)
        assert inline == forked

    def test_chunked_executor_pins_configuration(self):
        executor = ChunkedExecutor(n_workers=1, chunk_size=3)
        assert executor.map(lambda chunk: [x * 2 for x in chunk], range(7)) == [
            0, 2, 4, 6, 8, 10, 12,
        ]

    @pytest.mark.parametrize("n_workers", [1, 3])
    def test_order_preserved_with_lazy_ragged_chunks(self, n_workers):
        """Chunks are sliced per dispatch (no prebuilt chunk list); results
        must still come back in item order, including a ragged final chunk
        and more chunks than workers."""
        items = list(range(23))
        got = run_chunked(_double_chunk, items, n_workers=n_workers, chunk_size=4)
        assert got == [item * 2 for item in items]

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_wrong_length_worker_output_is_rejected(self, n_workers):
        with pytest.raises(ValueError, match="results for a chunk"):
            run_chunked(
                _drop_last_of_chunk, list(range(8)), n_workers=n_workers,
                chunk_size=4,
            )


class TestMonteCarloEngines:
    def test_batch_matches_scalar_sample_for_sample(self):
        kwargs = dict(
            n_samples=6,
            policies=("sequential", "round-robin", "best-of-two"),
            config=FAST_CONFIG,
            seed=21,
        )
        scalar = run_montecarlo([SMALL, SMALL], engine="scalar", **kwargs)
        batch = run_montecarlo([SMALL, SMALL], engine="batch", **kwargs)
        assert scalar.engine == "scalar" and batch.engine == "batch"
        for policy in kwargs["policies"]:
            for a, b in zip(scalar.per_sample[policy], batch.per_sample[policy]):
                assert b == pytest.approx(a, abs=1e-9)

    def test_auto_prefers_batch_when_vectorizable(self):
        result = run_montecarlo(
            [SMALL, SMALL], n_samples=3, config=FAST_CONFIG, seed=1, engine="auto"
        )
        assert result.engine == "batch"
        result = run_montecarlo(
            [SMALL, SMALL],
            n_samples=2,
            config=FAST_CONFIG,
            seed=1,
            engine="auto",
            backend="linear",
        )
        assert result.engine == "scalar"

    def test_explicit_rng_reproducible_across_engines(self):
        scalar = run_montecarlo(
            [SMALL, SMALL],
            n_samples=4,
            config=FAST_CONFIG,
            rng=np.random.default_rng(33),
            engine="scalar",
        )
        batch = run_montecarlo(
            [SMALL, SMALL],
            n_samples=4,
            config=FAST_CONFIG,
            rng=np.random.default_rng(33),
            engine="batch",
        )
        for policy in scalar.per_sample:
            for a, b in zip(scalar.per_sample[policy], batch.per_sample[policy]):
                assert b == pytest.approx(a, abs=1e-9)

    def test_engine_label_reports_executed_path(self):
        # Requesting "batch" on a non-vectorizable backend still works but
        # runs through the scalar fallback -- and the label must say so.
        result = run_montecarlo(
            [SMALL, SMALL],
            n_samples=2,
            config=FAST_CONFIG,
            seed=6,
            engine="batch",
            backend="linear",
        )
        assert result.engine == "scalar"

    def test_explicit_loads_override_sampling(self):
        loads = [generate_random_load(77, FAST_CONFIG)]
        result = run_montecarlo([SMALL, SMALL], loads=loads, policies=("sequential",))
        assert result.n_samples == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_montecarlo([SMALL], engine="warp")

    def test_generator_rejects_seed_and_rng_together(self):
        with pytest.raises(ValueError):
            generate_random_load(1, FAST_CONFIG, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            generate_random_load()


class TestLifetimeDistributionEdgeCases:
    def test_single_sample_has_zero_stdev(self):
        dist = LifetimeDistribution.from_samples("solo", [12.5])
        assert dist.samples == 1
        assert dist.stdev == 0.0
        assert dist.mean == dist.minimum == dist.maximum == 12.5

    def test_empty_samples_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="empty set of lifetime samples"):
            LifetimeDistribution.from_samples("none", [])

    def test_accepts_numpy_arrays(self):
        dist = LifetimeDistribution.from_samples("array", np.array([1.0, 3.0]))
        assert dist.mean == pytest.approx(2.0)

    def test_single_sample_montecarlo_sweep(self):
        result = run_montecarlo(
            [SMALL, SMALL], n_samples=1, config=FAST_CONFIG, seed=8
        )
        for dist in result.distributions.values():
            assert dist.samples == 1 and dist.stdev == 0.0


class TestDiscreteBatch:
    """``model="discrete"``: exact integer parity with the scalar dKiBaM.

    The analytical engine is pinned to the scalar path at 1e-9 minutes; the
    discrete engine's contract is stronger -- the batch state is the same
    integer charge/height units the scalar tick loop advances, so lifetimes
    (in ticks), final ``(n, m)`` states and decision counts must match the
    golden-reference :class:`MultiBatterySimulator` *exactly*, not merely
    within a float tolerance.
    """

    @staticmethod
    def assert_tick_exact(
        params, loads, policy, time_step=0.01, charge_unit=0.01, rows=None
    ):
        simulator = BatchSimulator(
            params if rows is None else rows,
            model="discrete",
            time_step=time_step,
            charge_unit=charge_unit,
        )
        batch = simulator.run(ScenarioSet.from_loads(loads), policy)
        assert batch.lifetime_ticks is not None and batch.charge_units is not None
        for index, load in enumerate(loads):
            scalar_params = list(params if rows is None else rows[index])
            scalar = simulate_policy(
                scalar_params,
                load,
                policy,
                backend="discrete",
                time_step=time_step,
                charge_unit=charge_unit,
            )
            if scalar.lifetime is None:
                assert batch.lifetime_ticks[index] == -1
                assert math.isnan(batch.lifetimes[index])
            else:
                assert batch.lifetime_ticks[index] == round(
                    scalar.lifetime / time_step
                )
                assert batch.lifetimes[index] == pytest.approx(
                    scalar.lifetime, abs=1e-9
                )
            assert batch.decisions[index] == scalar.decisions
            for battery, state in enumerate(scalar.final_states):
                assert batch.charge_units[index, battery, 0] == state.n
                assert batch.charge_units[index, battery, 1] == state.m
            assert batch.residual_charge[index] == pytest.approx(
                scalar.residual_charge, abs=1e-12
            )

    @pytest.mark.parametrize("policy", ("sequential", "round-robin", "best-of-two"))
    def test_paper_loads_tick_for_tick(self, policy):
        """The acceptance pin: exact parity on all ten paper loads, 2 x B1."""
        from repro.workloads.profiles import paper_loads

        self.assert_tick_exact([B1, B1], list(paper_loads().values()), policy)

    def test_single_battery_matches_lifetime_under_segments(self):
        from repro.kibam.discrete import DiscreteKibam
        from repro.workloads.profiles import paper_loads

        load = paper_loads()["ILs 500"]
        segments = [(epoch.current, epoch.duration) for epoch in load.epochs]
        reference = DiscreteKibam(B1).lifetime_under_segments(segments)
        batch = BatchSimulator([B1], model="discrete").run(
            ScenarioSet.from_loads([load]), "sequential"
        )
        assert reference is not None
        assert batch.lifetime_ticks[0] == round(reference / 0.01)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_random_loads_with_switchovers(self, policy):
        config = RandomLoadConfig(
            levels=(0.4, 0.6),
            job_duration_range=(1.0, 3.0),
            idle_duration_range=(0.0, 0.0),
            total_duration=30.0,
            duration_step=0.25,
        )
        loads = [generate_random_load(400 + i, config) for i in range(6)]
        self.assert_tick_exact([SMALL, SMALL], loads, policy)

    def test_awkward_currents_with_bresenham_spread(self):
        # 0.124 A is 31 units per 250 ticks (cur > 1, the PR 2 accumulator
        # pathology) and 1.5 A is 3 units per 2 ticks (several draws per
        # tick); both must spread exactly like the scalar accumulator.
        config = RandomLoadConfig(
            levels=(0.124, 0.5, 1.5),
            job_duration_range=(0.5, 1.0),
            idle_duration_range=(0.0, 1.0),
            total_duration=20.0,
            duration_step=0.25,
        )
        loads = [generate_random_load(900 + i, config) for i in range(6)]
        self.assert_tick_exact([SMALL, SMALL], loads, "best-of-two")

    def test_coarser_discretization(self):
        loads = [generate_random_load(150 + i, FAST_CONFIG) for i in range(4)]
        self.assert_tick_exact(
            [SMALL, SMALL], loads, "best-of-two", time_step=0.05, charge_unit=0.05
        )

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("n_batteries", [3, 4, 8])
    def test_mixed_fleets_tick_for_tick(self, policy, n_batteries):
        """The discrete half of the fleet parity matrix: exact integer
        parity for mixed fleets at N in {3, 4, 8}, every policy."""
        fleet = [SMALL] * (n_batteries - n_batteries // 2) + [SMALLER] * (
            n_batteries // 2
        )
        loads = [generate_random_load(370 + i, FAST_CONFIG) for i in range(3)]
        self.assert_tick_exact(
            fleet, loads, policy, time_step=0.05, charge_unit=0.05
        )

    def test_per_scenario_parameter_rows(self):
        loads = [generate_random_load(seed, FAST_CONFIG) for seed in range(5)]
        rows = [
            (
                BatteryParameters(capacity=0.5 + 0.1 * i, c=0.166, k_prime=0.122),
                BatteryParameters(capacity=0.9, c=0.2, k_prime=0.15),
            )
            for i in range(5)
        ]
        for policy in ("sequential", "best-of-two"):
            self.assert_tick_exact(None, loads, policy, rows=rows)

    def test_run_many_stack_is_bitwise_identical_to_solo(self):
        # Unlike the analytical stack (whose np.exp SIMD paths vary with
        # array size), the discrete state is integer arithmetic: stacked
        # and solo runs must agree exactly, field for field.
        loads = [generate_random_load(320 + i, FAST_CONFIG) for i in range(6)]
        scen = ScenarioSet.from_loads(loads)
        sim = BatchSimulator([SMALL, SMALL], model="discrete")
        stacked = sim.run_many(scen, ALL_POLICIES)
        for policy in ALL_POLICIES:
            solo = sim.run(scen, policy)
            assert np.array_equal(stacked[policy].lifetime_ticks, solo.lifetime_ticks)
            assert np.array_equal(stacked[policy].charge_units, solo.charge_units)
            assert np.array_equal(stacked[policy].decisions, solo.decisions)
            assert np.array_equal(
                stacked[policy].residual_charge, solo.residual_charge
            )

    def test_survivors_and_dead_lanes_coexist(self):
        dies = Load.from_segments("dies", [(0.5, 1000.0)])
        survives = Load(
            name="survives", epochs=(job_epoch(0.1, 0.5), idle_epoch(1.0))
        )
        nap = Load(name="nap", epochs=(idle_epoch(5.0), idle_epoch(3.0)))
        self.assert_tick_exact([SMALL], [dies, survives, nap], "sequential")
        batch = BatchSimulator([SMALL], model="discrete").run(
            ScenarioSet.from_loads([dies, survives, nap]), "sequential"
        )
        assert not np.isnan(batch.lifetimes[0])
        assert batch.lifetime_ticks[1] == -1 and batch.lifetime_ticks[2] == -1

    def test_model_keyword_and_backend_alias(self):
        sim = BatchSimulator([SMALL], model="discrete")
        assert sim.model == sim.backend == "discrete"
        assert BatchSimulator([SMALL], backend="discrete").model == "discrete"
        with pytest.raises(ValueError, match="conflicting"):
            BatchSimulator([SMALL], backend="analytical", model="discrete")

    def test_unrepresentable_current_rejected(self):
        # The scalar dKiBaM rejects currents that have no exact integer
        # (cur, cur_times) pair; the batch conversion must do the same.
        load = Load.from_segments("bad", [(0.1234567, 1.0)])
        sim = BatchSimulator([SMALL], model="discrete")
        with pytest.raises(ValueError, match="not representable"):
            sim.run(ScenarioSet.from_loads([load]), "sequential")

    def test_montecarlo_discrete_auto_vectorizes(self):
        kwargs = dict(n_samples=4, config=FAST_CONFIG, seed=21)
        batch = run_montecarlo(
            [SMALL, SMALL], engine="auto", model="discrete", **kwargs
        )
        scalar = run_montecarlo(
            [SMALL, SMALL], engine="scalar", backend="discrete", **kwargs
        )
        assert batch.engine == "batch" and scalar.engine == "scalar"
        for policy in batch.per_sample:
            for a, b in zip(scalar.per_sample[policy], batch.per_sample[policy]):
                assert b == pytest.approx(a, abs=1e-9)
        with pytest.raises(ValueError, match="conflicting"):
            run_montecarlo(
                [SMALL], engine="auto", model="discrete", backend="linear", **kwargs
            )


class TestPerScenarioKernelParams:
    """Per-scenario battery-parameter arrays (the sweep lever) at the kernel level."""

    def test_from_parameter_rows_shapes_and_lane_helpers(self):
        rows = [(B1, B2), (SMALL, SMALLER), (B1, SMALL)]
        kp = KernelParams.from_parameter_rows(rows)
        assert kp.per_scenario
        assert kp.capacity.shape == (3, 2)
        assert kp.n_scenarios == 3 and kp.n_batteries == 2

        taken = kp.take(np.array([2, 0]))
        assert taken.capacity[0, 1] == SMALL.capacity
        assert taken.capacity[1, 0] == B1.capacity

        c, k = taken.battery(np.array([1, 0]))
        assert c[0] == SMALL.c and k[1] == B1.k_prime

        tiled = kp.tiled(2)
        np.testing.assert_array_equal(tiled.capacity[3:], kp.capacity)

    def test_shared_params_pass_through_lane_helpers(self):
        kp = KernelParams.from_parameters([B1, B2])
        assert not kp.per_scenario and kp.n_scenarios is None
        assert kp.take(np.array([0])) is kp
        assert kp.tiled(5) is kp

    def test_initial_state_uses_per_scenario_capacity(self):
        kp = KernelParams.from_parameter_rows([(B1, B1), (B2, B2)])
        state = initial_state_array(kp, 2)
        assert state[0, 0, 0] == B1.capacity
        assert state[1, 1, 0] == B2.capacity
        with pytest.raises(ValueError, match="per-scenario parameters"):
            initial_state_array(kp, 3)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="same number of batteries"):
            KernelParams.from_parameter_rows([(B1, B2), (B1,)])

    def test_heterogeneous_batch_matches_scalar_per_row(self):
        loads = [generate_random_load(seed, FAST_CONFIG) for seed in range(8)]
        rows = [
            (
                BatteryParameters(capacity=0.5 + 0.1 * i, c=0.166, k_prime=0.122),
                BatteryParameters(capacity=0.9, c=0.2, k_prime=0.15),
            )
            for i in range(8)
        ]
        simulator = BatchSimulator(rows)
        for policy in ALL_POLICIES:
            batch = simulator.run(ScenarioSet.from_loads(loads), policy)
            for index, load in enumerate(loads):
                scalar = simulate_policy(list(rows[index]), load, policy)
                if scalar.lifetime is None:
                    assert math.isnan(batch.lifetimes[index])
                else:
                    assert batch.lifetimes[index] == pytest.approx(
                        scalar.lifetime, abs=1e-9
                    )
                assert batch.decisions[index] == scalar.decisions
