"""Tests for the uniform battery-stepping interface used by the scheduler."""

import pytest

from repro.core.battery import (
    AnalyticalBattery,
    DiscreteBattery,
    LinearBatteryModel,
    make_battery_models,
)
from repro.kibam.lifetime import lifetime_constant_current
from repro.kibam.parameters import B1


class TestAnalyticalBattery:
    def test_step_without_emptying(self, b1):
        model = AnalyticalBattery(b1)
        outcome = model.step(model.initial_state(), 0.25, 1.0)
        assert not outcome.emptied
        assert model.total_charge(outcome.state) == pytest.approx(5.25)

    def test_step_detects_empty_instant(self, b1):
        model = AnalyticalBattery(b1)
        outcome = model.step(model.initial_state(), 0.5, 10.0)
        assert outcome.emptied
        assert outcome.emptied_after == pytest.approx(lifetime_constant_current(b1, 0.5))
        assert model.is_empty(outcome.state)

    def test_empty_battery_cannot_be_discharged(self, b1):
        model = AnalyticalBattery(b1)
        empty = model.step(model.initial_state(), 0.5, 10.0).state
        with pytest.raises(ValueError):
            model.step(empty, 0.5, 1.0)

    def test_empty_battery_may_idle(self, b1):
        model = AnalyticalBattery(b1)
        empty = model.step(model.initial_state(), 0.5, 10.0).state
        rested = model.step(empty, 0.0, 5.0).state
        assert model.is_empty(rested)  # the empty observation is sticky

    def test_views_and_dominance(self, b1):
        model = AnalyticalBattery(b1)
        state = model.initial_state()
        view = model.view(0, state)
        assert view.available_charge == pytest.approx(b1.available_capacity)
        better = model.dominance_vector(state)
        worse = model.dominance_vector(model.step(state, 0.25, 1.0).state)
        assert all(x >= y for x, y in zip(better, worse))

    def test_kibam_summary_exposed_for_pooling_bound(self, b1):
        model = AnalyticalBattery(b1)
        summary = model.kibam_summary(model.initial_state())
        assert summary == (pytest.approx(5.5), pytest.approx(0.0))
        assert model.kibam_parameters() == b1


class TestDiscreteBatteryModel:
    def test_step_matches_discrete_kibam_lifetime(self, b1):
        model = DiscreteBattery(b1)
        outcome = model.step(model.initial_state(), 0.5, 100.0)
        assert outcome.emptied
        assert outcome.emptied_after == pytest.approx(2.04, abs=0.03)

    def test_total_and_available_charge(self, b1):
        model = DiscreteBattery(b1)
        state = model.initial_state()
        assert model.total_charge(state) == pytest.approx(5.5)
        assert model.available_charge(state) == pytest.approx(b1.available_capacity, abs=1e-9)

    def test_empty_is_sticky(self, b1):
        model = DiscreteBattery(b1)
        empty = model.step(model.initial_state(), 0.5, 100.0).state
        assert model.is_empty(model.step(empty, 0.0, 1.0).state)


class TestLinearBatteryModel:
    def test_step_and_empty_detection(self, b1):
        model = LinearBatteryModel(b1)
        outcome = model.step(model.initial_state(), 0.5, 100.0)
        assert outcome.emptied
        assert outcome.emptied_after == pytest.approx(11.0)


class TestFactory:
    def test_backend_selection(self, b1):
        analytical = make_battery_models([b1, b1], backend="analytical")
        discrete = make_battery_models([b1], backend="discrete")
        linear = make_battery_models([b1], backend="linear")
        assert len(analytical) == 2 and analytical[0].backend == "analytical"
        assert discrete[0].backend == "discrete"
        assert linear[0].backend == "linear"

    def test_unknown_backend_rejected(self, b1):
        with pytest.raises(ValueError):
            make_battery_models([b1], backend="quantum")
