"""Tests for the analytical lifetime solvers (constant and piecewise loads)."""

import pytest

from repro.kibam.analytical import initial_state, step_constant_current
from repro.kibam.lifetime import (
    delivered_charge,
    gain_over_linear,
    lifetime_constant_current,
    lifetime_under_segments,
    peukert_exponent_estimate,
    residual_charge_fraction,
    time_to_empty,
    trace_under_segments,
)
from repro.kibam.parameters import B1, B2


class TestConstantCurrentLifetime:
    def test_paper_cl_250_value(self, b1):
        # Table 3: CL 250 for B1 is 4.53 minutes.
        assert lifetime_constant_current(b1, 0.250) == pytest.approx(4.53, abs=0.01)

    def test_paper_cl_500_value(self, b1):
        assert lifetime_constant_current(b1, 0.500) == pytest.approx(2.02, abs=0.01)

    def test_scaling_capacity_and_current_preserves_lifetime(self, b1):
        # The KiBaM is linear in charge: B2 at 500 mA behaves like B1 at 250 mA.
        assert lifetime_constant_current(B2, 0.5) == pytest.approx(
            lifetime_constant_current(B1, 0.25), rel=1e-9
        )

    def test_lifetime_decreases_with_current(self, b1):
        lifetimes = [lifetime_constant_current(b1, current) for current in (0.1, 0.25, 0.5, 0.7)]
        assert lifetimes == sorted(lifetimes, reverse=True)

    def test_rate_capacity_effect_reduces_delivered_charge(self, b1):
        # At higher current the battery goes empty having delivered less charge.
        low = 0.25 * lifetime_constant_current(b1, 0.25)
        high = 0.5 * lifetime_constant_current(b1, 0.5)
        assert high < low < b1.capacity

    def test_rejects_non_positive_current(self, b1):
        with pytest.raises(ValueError):
            lifetime_constant_current(b1, 0.0)


class TestTimeToEmpty:
    def test_zero_for_already_empty_state(self, b1):
        state = step_constant_current(b1, initial_state(b1), 0.5, 2.5)
        # Past the CL 500 lifetime of ~2.02 min the state is beyond empty.
        assert time_to_empty(b1, state, 0.5) == 0.0

    def test_none_when_horizon_too_short(self, b1):
        assert time_to_empty(b1, initial_state(b1), 0.25, horizon=1.0) is None

    def test_none_for_idle_battery(self, b1):
        assert time_to_empty(b1, initial_state(b1), 0.0) is None

    def test_matches_constant_current_lifetime(self, b1):
        assert time_to_empty(b1, initial_state(b1), 0.25) == pytest.approx(
            lifetime_constant_current(b1, 0.25)
        )


class TestSegmentLifetime:
    def test_single_segment_equals_constant_current(self, b1):
        lifetime = lifetime_under_segments(b1, [(0.25, 100.0)])
        assert lifetime == pytest.approx(lifetime_constant_current(b1, 0.25))

    def test_recovery_extends_lifetime(self, b1):
        continuous = lifetime_under_segments(b1, [(0.25, 100.0)])
        intermittent = lifetime_under_segments(
            b1, [(0.25, 1.0), (0.0, 1.0)] * 100
        )
        assert intermittent is not None and continuous is not None
        assert intermittent > continuous

    def test_survives_short_load(self, b1):
        assert lifetime_under_segments(b1, [(0.25, 1.0)]) is None

    def test_paper_ils_250_value(self, b1, loads):
        lifetime = lifetime_under_segments(b1, loads["ILs 250"].segments())
        assert lifetime == pytest.approx(10.80, abs=0.02)

    def test_rejects_negative_segment_values(self, b1):
        with pytest.raises(ValueError):
            lifetime_under_segments(b1, [(-0.1, 1.0)])
        with pytest.raises(ValueError):
            lifetime_under_segments(b1, [(0.1, -1.0)])


class TestTraceAndResidual:
    def test_trace_is_monotone_in_time_and_stops_at_empty(self, b1):
        samples = trace_under_segments(b1, [(0.5, 10.0)], sample_interval=0.1)
        times = [time for time, _ in samples]
        assert times == sorted(times)
        # CL 500 lifetime is ~2.02 min, so the trace must stop near there.
        assert times[-1] == pytest.approx(2.1, abs=0.15)

    def test_residual_fraction_matches_paper_observation(self, b1, loads):
        # Section 6: when a B1 battery is empty a large part of its charge is
        # still bound (the two-battery figure quotes ~70 %; a single battery
        # under ILs alt leaves more than half of its charge behind).
        fraction = residual_charge_fraction(b1, loads["ILs alt"].segments())
        assert fraction is not None
        assert 0.4 < fraction < 0.9

    def test_delivered_charge_below_capacity(self, b1, loads):
        delivered = delivered_charge(b1, loads["CL 500"].segments())
        assert 0.0 < delivered < b1.capacity

    def test_gain_over_linear_is_at_least_one(self, b1):
        assert gain_over_linear(b1, 0.25) > 1.0

    def test_peukert_exponent_above_one(self, b1):
        exponent = peukert_exponent_estimate(b1, 0.25, 0.5)
        assert exponent > 1.0

    def test_peukert_rejects_bad_current_ordering(self, b1):
        with pytest.raises(ValueError):
            peukert_exponent_estimate(b1, 0.5, 0.25)
