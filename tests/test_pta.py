"""Tests for the priced timed automata substrate."""

import pytest

from repro.pta.automaton import Automaton, Edge, Location, Sync, evaluate_cost
from repro.pta.examples import automatic_lamp_network, lamp_network
from repro.pta.mcr import minimum_cost_reachability, reachable, run_deterministic
from repro.pta.network import Network
from repro.pta.semantics import NetworkSemantics
from repro.pta.trace import action_names, decisions_in_trace, trace_duration


def counter_automaton(limit: int) -> Automaton:
    """A single automaton that increments a variable every 2 ticks."""

    def bump(variables):
        variables["count"] += 1

    return Automaton(
        name="counter",
        locations=(
            Location(name="run", invariant=lambda v, c: c["x"] <= 2, cost_rate=1),
            Location(name="stop"),
        ),
        initial_location="run",
        clocks=("x",),
        edges=(
            Edge(
                source="run",
                target="run",
                guard=lambda v, c: c["x"] >= 2 and v["count"] < limit,
                update=bump,
                clock_resets=("x",),
                name="tick",
            ),
            Edge(
                source="run",
                target="stop",
                guard=lambda v, c: v["count"] >= limit,
                name="finish",
            ),
        ),
    )


class TestAutomatonConstruction:
    def test_duplicate_locations_rejected(self):
        with pytest.raises(ValueError):
            Automaton(
                name="bad",
                locations=(Location(name="a"), Location(name="a")),
                initial_location="a",
            )

    def test_unknown_initial_location_rejected(self):
        with pytest.raises(ValueError):
            Automaton(name="bad", locations=(Location(name="a"),), initial_location="b")

    def test_edge_with_unknown_location_rejected(self):
        with pytest.raises(ValueError):
            Automaton(
                name="bad",
                locations=(Location(name="a"),),
                initial_location="a",
                edges=(Edge(source="a", target="zzz"),),
            )

    def test_edge_resetting_foreign_clock_rejected(self):
        with pytest.raises(ValueError):
            Automaton(
                name="bad",
                locations=(Location(name="a"),),
                initial_location="a",
                clocks=(),
                edges=(Edge(source="a", target="a", clock_resets=("y",)),),
            )

    def test_evaluate_cost_accepts_constants_and_callables(self):
        assert evaluate_cost(3, {}) == 3.0
        assert evaluate_cost(lambda v: v["x"] * 2, {"x": 4}) == 8.0

    def test_sync_labels(self):
        assert str(Sync.send("a")) == "a!"
        assert str(Sync.receive("a")) == "a?"


class TestNetworkValidation:
    def test_duplicate_automaton_names_rejected(self):
        automaton = counter_automaton(1)
        with pytest.raises(ValueError):
            Network(automata=(automaton, automaton), initial_variables={"count": 0})

    def test_duplicate_clock_names_rejected(self):
        first = counter_automaton(1)
        second = Automaton(
            name="other",
            locations=(Location(name="a"),),
            initial_location="a",
            clocks=("x",),
        )
        with pytest.raises(ValueError):
            Network(automata=(first, second), initial_variables={"count": 0})

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network(automata=(), initial_variables={})


class TestSemantics:
    def test_delay_advances_clocks_and_cost(self):
        network = Network(automata=(counter_automaton(3),), initial_variables={"count": 0})
        semantics = NetworkSemantics(network)
        state = semantics.initial_state()
        delay = semantics.delay_successor(state)
        assert delay is not None
        assert delay.state.time == 1
        assert delay.state.cost == pytest.approx(1.0)  # cost rate 1 in "run"
        assert delay.state.clock_valuation()["x"] == 1

    def test_invariant_blocks_delay(self):
        network = Network(automata=(counter_automaton(3),), initial_variables={"count": 0})
        semantics = NetworkSemantics(network)
        state = semantics.initial_state()
        for _ in range(2):
            state = semantics.delay_successor(state).state
        assert semantics.delay_successor(state) is None  # invariant x <= 2

    def test_guarded_edge_fires_and_updates(self):
        network = Network(automata=(counter_automaton(3),), initial_variables={"count": 0})
        semantics = NetworkSemantics(network)
        state = semantics.initial_state()
        for _ in range(2):
            state = semantics.delay_successor(state).state
        actions = list(semantics.action_successors(state))
        assert len(actions) == 1
        fired = actions[0].state
        assert fired.value("count") == 1
        assert fired.clock_valuation()["x"] == 0

    def test_committed_location_blocks_delay(self):
        automaton = Automaton(
            name="committed",
            locations=(Location(name="a", committed=True), Location(name="b")),
            initial_location="a",
            edges=(Edge(source="a", target="b"),),
        )
        semantics = NetworkSemantics(Network(automata=(automaton,), initial_variables={}))
        assert semantics.delay_successor(semantics.initial_state()) is None

    def test_binary_sync_requires_both_parties(self):
        network = lamp_network(presses=1, press_period=2)
        semantics = NetworkSemantics(network)
        state = semantics.initial_state()
        # Before the user is ready (clock u < 2) no action is possible.
        assert list(semantics.action_successors(state)) == []
        state = semantics.delay_successor(state).state
        state = semantics.delay_successor(state).state
        labels = [transition.label for transition in semantics.action_successors(state)]
        assert any("press" in label for label in labels)

    def test_broadcast_send_fires_without_receivers(self):
        # With three presses the last one arrives while the lamp is in
        # "bright", which has no receiving edge: the broadcast must still be
        # able to fire (Section 3.1), so all presses can be used up.
        network = automatic_lamp_network(presses=3, press_period=2)
        semantics = NetworkSemantics(network)
        goal = lambda state: state.value("presses_left") == 0
        result = reachable(semantics, goal, max_states=20_000)
        assert result.found


class TestReachabilityEngines:
    def test_lamp_reaches_bright_when_pressed_quickly(self):
        network = lamp_network(presses=2, press_period=2)
        semantics = NetworkSemantics(network)
        lamp_index = network.automaton_index("lamp")
        result = reachable(semantics, lambda s: s.locations[lamp_index] == "bright")
        assert result.found
        assert trace_duration(result.trace) >= 4

    def test_lamp_cannot_reach_bright_with_slow_presses(self):
        # With 6 ticks between presses the y < 5 guard towards "bright" can
        # never be satisfied.  The explicit state space is unbounded in the
        # clock values, so the search is capped; the goal must not be found
        # within a budget that far exceeds the three presses.
        network = lamp_network(presses=3, press_period=6)
        semantics = NetworkSemantics(network)
        lamp_index = network.automaton_index("lamp")
        result = reachable(semantics, lambda s: s.locations[lamp_index] == "bright", max_states=5000)
        assert not result.found

    def test_minimum_cost_reachability_finds_cheapest_path(self):
        # The automatic lamp: reaching "bright" costs the switch-on cost plus
        # at least one tick of rate-10 burning; the optimum presses again as
        # soon as possible (after press_period ticks in "low").
        network = automatic_lamp_network(switch_on_cost=50, presses=2, press_period=2)
        semantics = NetworkSemantics(network)
        lamp_index = network.automaton_index("lamp")
        result = minimum_cost_reachability(
            semantics, lambda s: s.locations[lamp_index] == "bright", max_states=20_000
        )
        assert result.found
        assert result.cost == pytest.approx(50 + 2 * 10)

    def test_mcr_respects_state_budget(self):
        network = lamp_network(presses=3, press_period=2)
        semantics = NetworkSemantics(network)
        result = minimum_cost_reachability(semantics, lambda s: False, max_states=10)
        assert not result.found and result.truncated

    def test_deterministic_run_with_chooser(self):
        network = Network(automata=(counter_automaton(4),), initial_variables={"count": 0})
        semantics = NetworkSemantics(network)
        result = run_deterministic(semantics, lambda s: s.value("count") >= 4)
        assert result.found
        assert result.goal_state.value("count") == 4
        assert trace_duration(result.trace) == 8  # 2 ticks per increment

    def test_trace_helpers(self):
        network = Network(automata=(counter_automaton(2),), initial_variables={"count": 0})
        semantics = NetworkSemantics(network)
        result = run_deterministic(semantics, lambda s: s.value("count") >= 2)
        names = action_names(result.trace)
        assert names.count("counter.tick") == 2
        decisions = decisions_in_trace(result.trace, lambda t: "tick" in t.label)
        assert [tick for tick, _ in decisions] == [2, 4]
