"""Unit tests for the analytical (transformed-coordinate) KiBaM."""

import math

import pytest

from repro.kibam.analytical import (
    KibamState,
    available_charge,
    bound_charge,
    initial_state,
    is_empty,
    state_of_charge,
    step_constant_current,
)
from repro.kibam.parameters import B1
from repro.kibam.transformed import from_wells, height_difference, to_wells


class TestInitialState:
    def test_full_battery(self, b1):
        state = initial_state(b1)
        assert state.gamma == pytest.approx(b1.capacity)
        assert state.delta == 0.0

    def test_initial_wells_match_c_split(self, b1):
        y1, y2 = to_wells(b1, initial_state(b1))
        assert y1 == pytest.approx(b1.available_capacity)
        assert y2 == pytest.approx(b1.bound_capacity)


class TestStepConstantCurrent:
    def test_total_charge_decreases_linearly(self, b1):
        state = step_constant_current(b1, initial_state(b1), current=0.25, duration=2.0)
        assert state.gamma == pytest.approx(5.5 - 0.5)

    def test_height_difference_follows_closed_form(self, b1):
        duration = 1.5
        current = 0.25
        state = step_constant_current(b1, initial_state(b1), current, duration)
        delta_inf = current / (b1.c * b1.k_prime)
        expected = delta_inf * (1.0 - math.exp(-b1.k_prime * duration))
        assert state.delta == pytest.approx(expected)

    def test_zero_duration_is_identity(self, b1):
        state = KibamState(gamma=3.0, delta=1.0)
        assert step_constant_current(b1, state, 0.5, 0.0) == state

    def test_idle_step_decays_height_difference(self, b1):
        state = KibamState(gamma=3.0, delta=2.0)
        rested = step_constant_current(b1, state, 0.0, 1.0)
        assert rested.gamma == pytest.approx(3.0)
        assert rested.delta == pytest.approx(2.0 * math.exp(-b1.k_prime))

    def test_two_half_steps_equal_one_full_step(self, b1):
        full = step_constant_current(b1, initial_state(b1), 0.3, 2.0)
        half = step_constant_current(b1, initial_state(b1), 0.3, 1.0)
        half = step_constant_current(b1, half, 0.3, 1.0)
        assert half.gamma == pytest.approx(full.gamma)
        assert half.delta == pytest.approx(full.delta)

    def test_negative_duration_rejected(self, b1):
        with pytest.raises(ValueError):
            step_constant_current(b1, initial_state(b1), 0.1, -1.0)


class TestChargeAccessors:
    def test_available_plus_bound_equals_total(self, b1):
        state = step_constant_current(b1, initial_state(b1), 0.4, 1.0)
        assert available_charge(b1, state) + bound_charge(b1, state) == pytest.approx(state.gamma)

    def test_empty_condition_matches_zero_available_charge(self, b1):
        # Construct the state exactly on the empty boundary gamma = (1-c) delta.
        delta = 3.0
        state = KibamState(gamma=(1.0 - b1.c) * delta, delta=delta)
        assert available_charge(b1, state) == pytest.approx(0.0, abs=1e-12)
        assert is_empty(b1, state, tolerance=1e-12)

    def test_full_battery_is_not_empty(self, b1):
        assert not is_empty(b1, initial_state(b1))

    def test_state_of_charge_is_fraction_of_capacity(self, b1):
        state = step_constant_current(b1, initial_state(b1), 0.25, 2.0)
        assert state_of_charge(b1, state) == pytest.approx((5.5 - 0.5) / 5.5)

    def test_is_empty_rejects_negative_tolerance(self, b1):
        with pytest.raises(ValueError):
            is_empty(b1, initial_state(b1), tolerance=-1.0)


class TestCoordinateTransform:
    def test_round_trip_wells(self, b1):
        state = KibamState(gamma=4.2, delta=1.7)
        y1, y2 = to_wells(b1, state)
        back = from_wells(b1, y1, y2)
        assert back.gamma == pytest.approx(state.gamma)
        assert back.delta == pytest.approx(state.delta)

    def test_height_difference_definition(self, b1):
        y1, y2 = 0.5, 3.0
        assert height_difference(b1, y1, y2) == pytest.approx(y2 / (1 - b1.c) - y1 / b1.c)

    def test_equal_heights_give_zero_delta(self, b1):
        # Heights equal when y1/c == y2/(1-c); e.g. the fully charged split.
        assert height_difference(b1, b1.available_capacity, b1.bound_capacity) == pytest.approx(0.0)
