"""Property-based tests (hypothesis) for the core invariants."""

import dataclasses
import math

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.optimal import discrete_bound_slack_for, find_optimal_schedule
from repro.core.simulator import simulate_policy
from repro.engine.optimal_batch import find_optimal_schedule_batched
from repro.kibam.analytical import (
    KibamState,
    available_charge,
    initial_state,
    step_constant_current,
)
from repro.kibam.discrete import DiscreteKibam
from repro.kibam.lifetime import lifetime_constant_current, lifetime_under_segments
from repro.kibam.parameters import BatteryParameters
from repro.kibam.transformed import from_wells, to_wells
from repro.workloads.load import Epoch, Load

#: Strategy for physically plausible battery parameters.
battery_parameters = st.builds(
    BatteryParameters,
    capacity=st.floats(min_value=0.5, max_value=20.0),
    c=st.floats(min_value=0.05, max_value=0.95),
    k_prime=st.floats(min_value=0.01, max_value=2.0),
)

currents = st.floats(min_value=0.01, max_value=1.0)
durations = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def short_loads(draw):
    """Small random job/idle loads with representable durations."""
    n_epochs = draw(st.integers(min_value=1, max_value=8))
    epochs = []
    for _ in range(n_epochs):
        current = draw(st.sampled_from([0.0, 0.25, 0.5]))
        duration = draw(st.sampled_from([0.5, 1.0, 2.0]))
        if current == 0.0:
            epochs.append(Epoch(current=0.0, duration=duration))
        else:
            epochs.append(Epoch(current=current, duration=duration))
    return Load(name="hypothesis", epochs=tuple(epochs))


class TestKibamStateProperties:
    @given(params=battery_parameters, current=currents, duration=durations)
    @settings(max_examples=80, deadline=None)
    def test_total_charge_conservation(self, params, current, duration):
        state = step_constant_current(params, initial_state(params), current, duration)
        assert state.gamma == pytest.approx(params.capacity - current * duration, rel=1e-9, abs=1e-9)

    @given(params=battery_parameters, current=currents, duration=st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=80, deadline=None)
    def test_height_difference_stays_below_steady_state(self, params, current, duration):
        state = step_constant_current(params, initial_state(params), current, duration)
        assert -1e-9 <= state.delta <= params.steady_state_height_difference(current) + 1e-9

    @given(params=battery_parameters, gamma=st.floats(0.1, 10.0), delta=st.floats(0.0, 5.0))
    @settings(max_examples=80, deadline=None)
    def test_well_transform_round_trip(self, params, gamma, delta):
        state = KibamState(gamma=gamma, delta=delta)
        y1, y2 = to_wells(params, state)
        back = from_wells(params, y1, y2)
        assert back.gamma == pytest.approx(gamma, rel=1e-9, abs=1e-9)
        assert back.delta == pytest.approx(delta, rel=1e-9, abs=1e-9)

    @given(params=battery_parameters, delta=st.floats(0.0, 5.0), duration=st.floats(0.0, 20.0))
    @settings(max_examples=80, deadline=None)
    def test_idle_recovery_never_increases_height_difference(self, params, delta, duration):
        state = KibamState(gamma=params.capacity, delta=delta)
        rested = step_constant_current(params, state, 0.0, duration)
        assert rested.delta <= delta + 1e-12
        assert available_charge(params, rested) >= available_charge(params, state) - 1e-9


class TestLifetimeProperties:
    @given(params=battery_parameters, low=currents, high=currents)
    @settings(max_examples=60, deadline=None)
    def test_lifetime_is_monotone_in_current(self, params, low, high):
        if math.isclose(low, high):
            return
        low, high = min(low, high), max(low, high)
        assert lifetime_constant_current(params, low) >= lifetime_constant_current(params, high)

    @given(params=battery_parameters, current=currents)
    @settings(max_examples=60, deadline=None)
    def test_kibam_never_beats_the_ideal_battery(self, params, current):
        assert lifetime_constant_current(params, current) <= params.capacity / current + 1e-9

    @given(load=short_loads())
    @settings(max_examples=40, deadline=None)
    def test_discrete_model_tracks_the_analytical_model(self, load):
        """The dKiBaM lifetime lies in the analytical margin-sensitivity bracket.

        Comparing lifetimes against a fixed relative tolerance is ill-posed:
        the lifetime is a *discontinuous* functional of the load (a crossing
        that barely grazes the empty threshold can move the death to a later
        job epoch, or past the end of the load), so any discretization --
        however fine -- occasionally shows large lifetime deviations on
        grazing loads.  The principled comparison bounds the discrete state
        error in *margin* space instead: the dKiBaM tracks the continuous
        margin ``gamma - (1 - c) * delta`` to within a few charge/height
        units (empirically under one height unit per job epoch), and since
        delta's dynamics are independent of gamma, shifting the empty
        threshold by ``+-eps`` Amin is exactly a capacity shift of ``-+eps``.
        The discrete lifetime must therefore lie between the analytical
        lifetimes of batteries with capacity ``C - eps`` and ``C + eps``
        (plus a small tick-granularity slack).  Where the load crosses the
        threshold steeply the bracket is tight (median width ~0.26 min on
        these loads); where it grazes, the bracket widens exactly as much as
        the lifetime is genuinely ill-conditioned.
        """
        params = BatteryParameters(capacity=2.0, c=0.166, k_prime=0.122)
        model = DiscreteKibam(params, time_step=0.01, charge_unit=0.01)
        segments = load.segments()
        discrete = model.lifetime_under_segments(segments)
        eps = model.height_unit * (1 + load.job_count)
        early = lifetime_under_segments(
            dataclasses.replace(params, capacity=params.capacity - eps), segments
        )
        late = lifetime_under_segments(
            dataclasses.replace(params, capacity=params.capacity + eps), segments
        )
        tick_slack = 0.05
        if discrete is None:
            # The discrete battery survived: the optimistic analytical
            # battery must survive too (or die within slack of the end).
            assert late is None or late >= load.total_duration - tick_slack
        else:
            lower = (early if early is not None else load.total_duration) - tick_slack
            assert lower <= discrete
            if late is not None:
                assert discrete <= late + tick_slack
            if early is None:
                # Even the pessimistic battery survives: the discrete one
                # may only die within slack of the end of the load.
                assert discrete >= load.total_duration - tick_slack


class TestSchedulingProperties:
    @given(load=short_loads(), seed=st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_policy_hierarchy_and_pooling_bound(self, load, seed):
        """sequential <= best-of-two <= optimal <= pooled single battery.

        The optimal search is capped (node budget + merge tolerance) to keep
        the property test cheap; the inequalities hold for capped searches
        too because the incumbent already includes best-of-two and any found
        schedule respects the pooling bound.
        """
        params = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122)
        if load.job_count == 0:
            return
        # Extend the load so that the batteries are exhausted.
        long_load = load.repeated(20)
        sequential = simulate_policy([params, params], long_load, "sequential")
        best = simulate_policy([params, params], long_load, "best-of-two")
        if sequential.survived or best.survived:
            return
        optimal = find_optimal_schedule(
            [params, params], long_load, dominance_tolerance=0.01, max_nodes=2000
        )
        pooled = lifetime_under_segments(params.scaled(2.0), long_load.segments())
        assert sequential.lifetime <= best.lifetime + 1e-6
        assert best.lifetime <= optimal.lifetime + 1e-6
        assert pooled is None or optimal.lifetime <= pooled + 1e-6

    @given(
        load=short_loads(),
        cap_a=st.floats(min_value=0.5, max_value=2.0),
        cap_b=st.floats(min_value=0.5, max_value=2.0),
        c=st.floats(min_value=0.1, max_value=0.4),
        k_prime=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=10, deadline=None)
    def test_batched_optimal_is_bracketed_by_heuristics_and_pooling(
        self, load, cap_a, cap_b, c, k_prime
    ):
        """Batched-optimal >= every heuristic policy, <= the pooling bound.

        Random loads x random battery pairs (shared ``c``/``k'`` so the
        perfect-pooling bound applies; the capacities differ).  The batched
        search is capped like the sweep default; the inequalities hold for
        capped searches too, because the incumbent already includes every
        heuristic and any found schedule respects the pooling bound.
        """
        if load.job_count == 0:
            return
        pair = [
            BatteryParameters(capacity=cap_a, c=c, k_prime=k_prime),
            BatteryParameters(capacity=cap_b, c=c, k_prime=k_prime),
        ]
        long_load = load.repeated(20)
        heuristics = {}
        for policy in ("sequential", "round-robin", "best-of-two"):
            result = simulate_policy(pair, long_load, policy)
            if result.survived:
                return
            heuristics[policy] = result.lifetime
        optimal = find_optimal_schedule_batched(
            pair, long_load, dominance_tolerance=0.01, max_nodes=2000
        )
        for policy, lifetime in heuristics.items():
            assert optimal.lifetime >= lifetime - 1e-6, policy
        pooled = lifetime_under_segments(
            BatteryParameters(capacity=cap_a + cap_b, c=c, k_prime=k_prime),
            long_load.segments(),
        )
        assert pooled is None or optimal.lifetime <= pooled + 1e-6

    @given(load=short_loads(), cap=st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=6, deadline=None)
    def test_batched_discrete_optimal_is_bracketed(self, load, cap):
        """The dKiBaM batched-optimal obeys the same bracket, plus the
        documented discretization slack: a coarse grid (T = Gamma = 0.1
        here) inflates dKiBaM lifetimes above the analytical pooling bound
        by up to ``discrete_bound_slack_for`` relatively, plus tick
        granularity at the crossing."""
        if load.job_count == 0:
            return
        pair = [
            BatteryParameters(capacity=cap, c=0.166, k_prime=0.122),
            BatteryParameters(capacity=cap, c=0.166, k_prime=0.122),
        ]
        coarse = dict(time_step=0.1, charge_unit=0.1)
        long_load = load.repeated(20)
        heuristics = {}
        for policy in ("sequential", "best-of-two"):
            result = simulate_policy(pair, long_load, policy, backend="discrete", **coarse)
            if result.survived:
                return
            heuristics[policy] = result.lifetime
        optimal = find_optimal_schedule_batched(
            pair,
            long_load,
            model="discrete",
            dominance_tolerance=0.01,
            max_nodes=2000,
            **coarse,
        )
        for policy, lifetime in heuristics.items():
            assert optimal.lifetime >= lifetime - 1e-6, policy
        pooled = lifetime_under_segments(
            BatteryParameters(capacity=2 * cap, c=0.166, k_prime=0.122),
            long_load.segments(),
        )
        slack = discrete_bound_slack_for(**coarse)
        if pooled is not None:
            assert optimal.lifetime <= pooled * (1.0 + slack) + 0.5

    @given(
        load=short_loads(),
        scales=st.lists(
            st.sampled_from([0.6, 0.7, 0.8, 0.9, 1.0, 1.1]),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        base=st.floats(min_value=0.8, max_value=1.6),
    )
    @settings(max_examples=8, deadline=None)
    def test_seeded_optimal_sweeps_match_fresh_sweeps_exactly(
        self, load, scales, base
    ):
        """Spec-level dominance pruning never changes sweep results.

        Over random capacity grids x random loads, the seeded optimal
        column (cross-grid-point incumbent seeding, the SweepRunner
        default) must return *bitwise identical* lifetimes, completeness
        masks, decision counts and residual charge to an unseeded run --
        only the expanded-node accounting may differ.  This holds for
        capped searches too, because a seeded search that hits its node
        cap is re-run without the seed before the scalar-DFS fallback.
        """
        import numpy as np

        from repro.sweep import LoadAxis, SweepRunner, SweepSpec, battery_grid

        if load.job_count == 0:
            return
        long_load = load.repeated(12)
        spec = SweepSpec(
            name="property-grid",
            batteries=battery_grid(
                [round(base * scale, 6) for scale in sorted(scales)],
                c=0.166,
                k_prime=0.122,
            ),
            loads=(LoadAxis.explicit([long_load]),),
            policies=("sequential",),
        ).with_optimal(max_nodes=1500, dominance_tolerance=0.005)
        seeded = SweepRunner(None, seed_optimal=True).run(spec)
        fresh = SweepRunner(None, seed_optimal=False).run(spec)
        for field in ("lifetimes", "decisions", "residual_charge"):
            np.testing.assert_array_equal(
                getattr(seeded, field)["optimal"],
                getattr(fresh, field)["optimal"],
            )
        np.testing.assert_array_equal(
            seeded.complete["optimal"], fresh.complete["optimal"]
        )


class TestRecoveryLimitedBoundProperties:
    """The recovery-limited refinement of the pooling bound stays admissible.

    Random loads x random battery pairs (shared ``c``/``k'`` so pooling
    applies; capacities differ).  Admissibility is checked the strong way:
    a certified (tolerance-0, uncapped-within-budget) search with the
    refinement enabled must return exactly the lifetime of a certified
    search with the refinement disabled -- if the bound ever dipped below
    the true remaining optimum at *any* node, the refined search would
    prune the optimal schedule and come back lower.
    """

    @staticmethod
    def _without_refinement(run):
        from repro.core.optimal import OptimalScheduler

        original = OptimalScheduler._recovery_limited_bound
        OptimalScheduler._recovery_limited_bound = lambda self, *a, **k: None
        try:
            return run()
        finally:
            OptimalScheduler._recovery_limited_bound = original

    @given(
        load=short_loads(),
        cap_a=st.floats(min_value=0.4, max_value=1.2),
        cap_b=st.floats(min_value=0.4, max_value=1.2),
        c=st.floats(min_value=0.1, max_value=0.4),
        k_prime=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=10, deadline=None)
    def test_analytical_bound_is_admissible_and_no_looser_than_pooling(
        self, load, cap_a, cap_b, c, k_prime
    ):
        from repro.core.battery import make_battery_models
        from repro.core.optimal import OptimalScheduler

        if load.job_count == 0:
            return
        pair = [
            BatteryParameters(capacity=cap_a, c=c, k_prime=k_prime),
            BatteryParameters(capacity=cap_b, c=c, k_prime=k_prime),
        ]
        long_load = load.repeated(10)
        refined_search = find_optimal_schedule(pair, long_load, max_nodes=3000)
        baseline = self._without_refinement(
            lambda: find_optimal_schedule(pair, long_load, max_nodes=3000)
        )
        if not (refined_search.complete and baseline.complete):
            return
        assert refined_search.lifetime == pytest.approx(
            baseline.lifetime, abs=1e-9
        )
        # Root-bound hierarchy: recovery-limited <= perfect pooling, and
        # both stay above the certified optimum.
        scheduler = OptimalScheduler(make_battery_models(pair), long_load)
        states = tuple(model.initial_state() for model in scheduler.models)
        pooled = scheduler._pooled_bound(states, 0, 0.0)
        refined = scheduler._recovery_limited_bound(states, 0, 0.0)
        assert pooled >= baseline.lifetime - 1e-9
        if refined is not None:
            assert refined <= pooled + 1e-9
            assert refined >= baseline.lifetime - 1e-9

    @given(load=short_loads(), cap=st.floats(min_value=0.4, max_value=1.2))
    @settings(max_examples=6, deadline=None)
    def test_coarse_discrete_bound_falls_back_to_admissible_pooling(
        self, load, cap
    ):
        """dKiBaM searches keep the slack-inflated pooling bound: the
        chain-feasibility half of the refinement is a theorem of the
        continuous dynamics only (tick rounding can keep a marginal burst
        alive), so the refinement must gate itself off and the effective
        root bound must still cover the certified discrete optimum (up to
        the same tick-granularity allowance as the coarse-discrete bracket
        property above: the relative slack covers the models' rate
        mismatch, the crossing itself lands on a tick)."""
        from repro.core.battery import make_battery_models
        from repro.core.optimal import OptimalScheduler

        if load.job_count == 0:
            return
        pair = [
            BatteryParameters(capacity=cap, c=0.166, k_prime=0.122),
            BatteryParameters(capacity=cap, c=0.166, k_prime=0.122),
        ]
        coarse = dict(time_step=0.1, charge_unit=0.1)
        long_load = load.repeated(10)
        result = find_optimal_schedule(
            pair, long_load, backend="discrete", max_nodes=3000, **coarse
        )
        if not result.complete:
            return
        scheduler = OptimalScheduler(
            make_battery_models(pair, backend="discrete", **coarse), long_load
        )
        states = tuple(model.initial_state() for model in scheduler.models)
        assert scheduler._recovery_limited_bound(states, 0, 0.0) is None
        root_bound = scheduler._remaining_lifetime_bound(states, 0, 0.0)
        # The allowance has an absolute granularity term on top of the tick
        # slack: the dKiBaM empties on a quantized threshold, so each
        # battery can overdeliver up to about one charge unit, worth
        # charge_unit / current minutes at the gentlest drain (0.4 min per
        # battery on this 0.1 grid at 0.25 A) -- which dwarfs the relative
        # slack when small batteries die early.
        unit_time = coarse["charge_unit"] / 0.25
        assert root_bound >= result.lifetime - (0.5 + len(pair) * unit_time)

    @given(load=short_loads())
    @settings(max_examples=20, deadline=None)
    def test_schedule_segments_cover_the_lifetime(self, load):
        params = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122)
        if load.job_count == 0:
            return
        long_load = load.repeated(20)
        result = simulate_policy([params, params], long_load, "round-robin")
        if result.survived:
            return
        for segments in result.schedule.per_battery_segments(horizon=result.lifetime):
            assert sum(duration for _, duration in segments) == pytest.approx(result.lifetime)


#: Random fleet capacities: 2-6 batteries, each between a third and a full
#: unit, so short heavy loads exhaust the whole fleet quickly.
fleet_capacities = st.lists(
    st.floats(min_value=0.3, max_value=1.0), min_size=2, max_size=6
)


class TestFleetProperties:
    """Random 2-6-battery fleets: bracketing, bound hierarchy, generators.

    The N>2 generalization of the pair properties above.  Fleets share
    ``c``/``k'`` (so the pooling family of bounds applies) but draw each
    capacity independently, which covers homogeneous, grouped and fully
    heterogeneous fleets -- and thereby every code path of the group-wise
    symmetry reduction.
    """

    @given(
        load=short_loads(),
        caps=fleet_capacities,
        c=st.floats(min_value=0.1, max_value=0.4),
        k_prime=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=8, deadline=None)
    def test_fleet_optimal_is_bracketed_by_heuristics_and_pooling(
        self, load, caps, c, k_prime
    ):
        """Fleet-optimal >= every heuristic policy, <= the pooling bound."""
        if load.job_count == 0:
            return
        fleet = [
            BatteryParameters(capacity=cap, c=c, k_prime=k_prime) for cap in caps
        ]
        long_load = load.repeated(12)
        heuristics = {}
        for policy in ("sequential", "round-robin", "best-of-two"):
            result = simulate_policy(fleet, long_load, policy)
            if result.survived:
                return
            heuristics[policy] = result.lifetime
        optimal = find_optimal_schedule_batched(
            fleet, long_load, dominance_tolerance=0.01, max_nodes=1500
        )
        for policy, lifetime in heuristics.items():
            assert optimal.lifetime >= lifetime - 1e-6, policy
        pooled = lifetime_under_segments(
            BatteryParameters(capacity=sum(caps), c=c, k_prime=k_prime),
            long_load.segments(),
        )
        assert pooled is None or optimal.lifetime <= pooled + 1e-6

    @given(
        load=short_loads(),
        caps=fleet_capacities,
        c=st.floats(min_value=0.1, max_value=0.4),
        k_prime=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=8, deadline=None)
    def test_fleet_root_bound_hierarchy(self, load, caps, c, k_prime):
        """total-charge >= pooling >= recovery-limited >= found schedule.

        The root-bound hierarchy of the search, asserted on random fleets:
        the ideal-battery total-charge bound dominates the KiBaM pooling
        bound, which dominates its recovery-limited refinement (when it
        applies), and every bound covers any schedule the capped search
        finds (a lower bound on the true optimum).
        """
        from repro.core.battery import make_battery_models
        from repro.core.optimal import OptimalScheduler

        if load.job_count == 0:
            return
        fleet = [
            BatteryParameters(capacity=cap, c=c, k_prime=k_prime) for cap in caps
        ]
        long_load = load.repeated(12)
        best = simulate_policy(fleet, long_load, "best-of-two")
        if best.survived:
            return
        scheduler = OptimalScheduler(make_battery_models(fleet), long_load)
        states = tuple(model.initial_state() for model in scheduler.models)
        total = scheduler._total_charge_bound(states, 0, 0.0)
        pooled = scheduler._pooled_bound(states, 0, 0.0)
        refined = scheduler._recovery_limited_bound(states, 0, 0.0)
        assert pooled <= total + 1e-9
        if refined is not None:
            assert refined <= pooled + 1e-9
        tightest = pooled if refined is None else min(pooled, refined)
        found = find_optimal_schedule_batched(
            fleet, long_load, dominance_tolerance=0.01, max_nodes=1500
        )
        assert found.lifetime <= tightest + 1e-6

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_fleet_generators_are_seed_deterministic(self, seed):
        """The sweep-facing generators rebuild bit-identical loads from
        their seeds -- the property behind stable sweep content hashes."""
        from repro.workloads.generator import duty_cycled_sensor_load, mmpp_load

        first = mmpp_load(seed=seed, total_duration=40.0)
        second = mmpp_load(seed=seed, total_duration=40.0)
        assert first.segments() == second.segments()
        jittered = duty_cycled_sensor_load(jitter=0.3, seed=seed, cycles=12)
        again = duty_cycled_sensor_load(jitter=0.3, seed=seed, cycles=12)
        assert jittered.segments() == again.segments()
