"""Tests for the TA-KiBaM: arrays, network construction, validation and optimality."""

import pytest

from repro.core.optimal import find_optimal_schedule
from repro.core.policies import BestOfTwoPolicy, RoundRobinPolicy, SequentialPolicy
from repro.kibam.discrete import DiscreteKibam
from repro.kibam.parameters import B1, BatteryParameters
from repro.takibam.arrays import load_arrays
from repro.takibam.builder import build_takibam
from repro.takibam.runner import (
    run_policy_on_takibam,
    takibam_optimal_schedule,
    takibam_single_battery_lifetime,
)
from repro.workloads.load import Epoch, Load


@pytest.fixture(scope="module")
def small_pair():
    """Two reduced-capacity batteries and a coarse discretization."""
    params = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="small")
    return [params, params]


@pytest.fixture(scope="module")
def coarse_kwargs():
    return {"time_step": 0.1, "charge_unit": 0.1}


class TestLoadArrays:
    def test_paper_discretization_of_the_currents(self, b1, loads):
        arrays = load_arrays(loads["ILs alt"], DiscreteKibam(b1))
        # Job epochs alternate 500 mA (1 unit / 2 ticks) and 250 mA
        # (1 unit / 4 ticks); idle epochs have cur == 0.
        assert arrays.cur[0] == 1 and arrays.cur_times[0] == 2
        assert arrays.cur[1] == 0
        assert arrays.cur[2] == 1 and arrays.cur_times[2] == 4

    def test_load_time_is_cumulative_in_ticks(self, b1, loads):
        arrays = load_arrays(loads["ILs 500"], DiscreteKibam(b1))
        assert arrays.load_time[0] == 100
        assert arrays.load_time[1] == 200

    def test_epoch_current_round_trip(self, b1, loads):
        model = DiscreteKibam(b1)
        arrays = load_arrays(loads["CL alt"], model)
        for index in range(4):
            assert arrays.epoch_current(index, model.charge_unit, model.time_step) == pytest.approx(
                loads["CL alt"].epochs[index].current
            )

    def test_mismatched_array_lengths_rejected(self):
        from repro.takibam.arrays import LoadArrays

        with pytest.raises(ValueError):
            LoadArrays(load_time=(1, 2), cur=(1,), cur_times=(1, 1), currents=(0.1, 0.1))


class TestNetworkConstruction:
    def test_network_has_two_automata_per_battery_plus_three(self, small_pair, tiny_load, coarse_kwargs):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        names = {automaton.name for automaton in model.network.automata}
        assert names == {
            "total_charge_0",
            "height_difference_0",
            "total_charge_1",
            "height_difference_1",
            "load",
            "scheduler",
            "maximum_finder",
        }

    def test_initial_variables(self, small_pair, tiny_load, coarse_kwargs):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        variables = model.network.initial_variables
        assert variables["n_gamma_0"] == 10  # 1.0 Amin / 0.1 Amin
        assert variables["m_delta_0"] == 0
        assert variables["empty_count"] == 0

    def test_channel_table_matches_table_2(self, small_pair, tiny_load, coarse_kwargs):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        channels = model.network.channels()
        assert "new_job" in channels and "emptied" in channels and "all_empty" in channels
        assert "go_on_0" in channels and "use_charge_1" in channels
        assert "all_empty" in model.network.broadcast_channels

    def test_requires_at_least_one_battery(self, tiny_load):
        with pytest.raises(ValueError):
            build_takibam([], tiny_load)


class TestSingleBatteryValidation:
    @pytest.mark.parametrize("load_name", ["CL 500", "ILs 500", "ILs alt"])
    def test_ta_matches_dkibam_exactly(self, b1, loads, load_name):
        # The TA-KiBaM and the direct dKiBaM simulation implement the same
        # discretized model and must agree to within one time step.
        ta = takibam_single_battery_lifetime(b1, loads[load_name])
        dk = DiscreteKibam(b1).lifetime_under_segments(loads[load_name].segments())
        assert ta == pytest.approx(dk, abs=0.011)

    def test_ta_close_to_analytical_kibam(self, b1, loads):
        # Table 3 reports at most ~1 % difference between the two.
        from repro.kibam.lifetime import lifetime_under_segments

        ta = takibam_single_battery_lifetime(b1, loads["CL alt"])
        analytical = lifetime_under_segments(b1, loads["CL alt"].segments())
        assert abs(ta - analytical) / analytical < 0.015

    def test_too_short_load_is_reported(self, b1):
        light = Load(name="short", epochs=(Epoch(current=0.25, duration=1.0),))
        with pytest.raises(RuntimeError):
            takibam_single_battery_lifetime(b1, light)


class TestPolicyRuns:
    def test_policy_ordering_on_the_network(self, small_pair, short_alternating_load, coarse_kwargs):
        model = build_takibam(small_pair, short_alternating_load, **coarse_kwargs)
        sequential = run_policy_on_takibam(model, SequentialPolicy()).lifetime
        round_robin = run_policy_on_takibam(model, RoundRobinPolicy()).lifetime
        best = run_policy_on_takibam(model, BestOfTwoPolicy()).lifetime
        assert sequential <= round_robin + 1e-9
        assert round_robin <= best + 1e-9

    def test_policy_run_matches_discrete_simulator(self, small_pair, short_alternating_load, coarse_kwargs):
        from repro.core.simulator import simulate_policy

        model = build_takibam(small_pair, short_alternating_load, **coarse_kwargs)
        ta = run_policy_on_takibam(model, SequentialPolicy()).lifetime
        sim = simulate_policy(
            small_pair, short_alternating_load, "sequential", backend="discrete", **coarse_kwargs
        ).lifetime_or_raise()
        assert ta == pytest.approx(sim, abs=2 * coarse_kwargs["time_step"] + 1e-9)


class TestOptimalQuery:
    def test_optimal_is_at_least_as_good_as_policies(self, small_pair, tiny_load, coarse_kwargs):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        optimal = takibam_optimal_schedule(model)
        best = run_policy_on_takibam(model, BestOfTwoPolicy()).lifetime
        assert optimal.lifetime >= best - 1e-9

    def test_optimal_agrees_with_branch_and_bound_on_discrete_backend(
        self, small_pair, tiny_load, coarse_kwargs
    ):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        ta_optimal = takibam_optimal_schedule(model)
        search_optimal = find_optimal_schedule(
            small_pair, tiny_load, backend="discrete", **coarse_kwargs
        )
        assert ta_optimal.lifetime == pytest.approx(search_optimal.lifetime, abs=0.2 + 1e-9)

    def test_residual_cost_is_reported_in_charge_units(self, small_pair, tiny_load, coarse_kwargs):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        optimal = takibam_optimal_schedule(model)
        assert 0.0 <= optimal.residual_charge_units <= 2 * model.discretizers[0].total_units

    def test_state_budget_is_enforced(self, small_pair, tiny_load, coarse_kwargs):
        model = build_takibam(small_pair, tiny_load, **coarse_kwargs)
        with pytest.raises(RuntimeError):
            takibam_optimal_schedule(model, max_states=5)
