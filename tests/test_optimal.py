"""Tests for the optimal (branch-and-bound) scheduler."""

import pytest

from repro.core.optimal import OptimalScheduler, find_optimal_schedule
from repro.core.battery import make_battery_models
from repro.core.policies import FixedAssignmentPolicy
from repro.core.simulator import simulate_policy
from repro.kibam.parameters import B1, BatteryParameters
from repro.workloads.load import Epoch, Load
from repro.workloads.profiles import paper_loads


class TestOptimalVersusPolicies:
    @pytest.mark.parametrize("load_name", ["CL 500", "CL alt", "ILs 500", "ILs alt", "IL` 500"])
    def test_optimal_is_at_least_as_good_as_every_policy(self, b1, loads, load_name):
        load = loads[load_name]
        optimal = find_optimal_schedule([b1, b1], load)
        for policy in ("sequential", "round-robin", "best-of-two"):
            lifetime = simulate_policy([b1, b1], load, policy).lifetime_or_raise()
            assert optimal.lifetime >= lifetime - 1e-9

    def test_ils_alt_gain_over_round_robin_matches_paper(self, b1, loads):
        # Table 5: the optimal schedule beats round robin by about 32 % on ILs alt.
        load = loads["ILs alt"]
        round_robin = simulate_policy([b1, b1], load, "round-robin").lifetime_or_raise()
        optimal = find_optimal_schedule([b1, b1], load)
        gain = (optimal.lifetime - round_robin) / round_robin * 100.0
        assert 25.0 < gain < 40.0

    def test_il_500_gain_matches_paper(self, b1, loads):
        # Table 5: IL` 500 optimal is ~17 % above round robin / best-of-two.
        load = loads["IL` 500"]
        best = simulate_policy([b1, b1], load, "best-of-two").lifetime_or_raise()
        optimal = find_optimal_schedule([b1, b1], load)
        gain = (optimal.lifetime - best) / best * 100.0
        assert 10.0 < gain < 25.0

    def test_single_battery_has_nothing_to_optimize(self, b1, loads):
        load = loads["ILs 500"]
        optimal = find_optimal_schedule([b1], load)
        sequential = simulate_policy([b1], load, "sequential").lifetime_or_raise()
        assert optimal.lifetime == pytest.approx(sequential)


class TestOptimalSchedule:
    def test_replaying_the_assignment_reproduces_the_lifetime(self, b1, loads):
        load = loads["ILs alt"]
        optimal = find_optimal_schedule([b1, b1], load)
        replay = simulate_policy([b1, b1], load, FixedAssignmentPolicy(optimal.assignment))
        assert replay.lifetime_or_raise() == pytest.approx(optimal.lifetime)

    def test_schedule_entries_are_contiguous(self, b1, loads):
        optimal = find_optimal_schedule([b1, b1], loads["CL alt"])
        entries = optimal.schedule.entries
        for previous, current in zip(entries[:-1], entries[1:]):
            assert current.start_time == pytest.approx(previous.end_time)

    def test_result_metadata(self, b1, loads):
        optimal = find_optimal_schedule([b1, b1], loads["ILs 500"])
        assert optimal.complete
        assert optimal.nodes_expanded > 0
        assert optimal.backend == "analytical"
        assert optimal.incumbent_policy in {"sequential", "round-robin", "best-of-two"}


class TestSearchControls:
    def test_max_nodes_yields_incomplete_but_valid_result(self, b1, loads):
        load = loads["ILs alt"]
        capped = find_optimal_schedule([b1, b1], load, max_nodes=3)
        full = find_optimal_schedule([b1, b1], load)
        assert not capped.complete
        assert capped.lifetime <= full.lifetime + 1e-9
        best = simulate_policy([b1, b1], load, "best-of-two").lifetime_or_raise()
        assert capped.lifetime >= best - 1e-9  # never worse than the incumbent

    def test_dominance_tolerance_does_not_change_the_result_materially(self, b1, loads):
        load = loads["ILs alt"]
        exact = find_optimal_schedule([b1, b1], load, dominance_tolerance=0.0)
        relaxed = find_optimal_schedule([b1, b1], load, dominance_tolerance=0.005)
        assert relaxed.lifetime == pytest.approx(exact.lifetime, rel=0.005)
        assert relaxed.nodes_expanded <= exact.nodes_expanded

    def test_disabling_dominance_gives_the_same_lifetime(self, b1):
        # Small instance so the undominated search stays cheap.
        small = BatteryParameters(capacity=1.5, c=0.166, k_prime=0.122)
        epochs = tuple(
            Epoch(current=0.5 if i % 2 == 0 else 0.25, duration=1.0) for i in range(10)
        )
        load = Load(name="small-alt", epochs=epochs)
        with_dominance = find_optimal_schedule([small, small], load)
        without = find_optimal_schedule([small, small], load, use_dominance=False)
        assert with_dominance.lifetime == pytest.approx(without.lifetime, abs=1e-6)

    def test_discrete_backend_agrees_with_analytical_on_small_instance(self):
        small = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122)
        epochs = []
        for _ in range(8):
            epochs.append(Epoch(current=0.5, duration=1.0))
            epochs.append(Epoch(current=0.0, duration=1.0))
        load = Load(name="small-ils", epochs=tuple(epochs))
        analytical = find_optimal_schedule([small, small], load, backend="analytical")
        discrete = find_optimal_schedule(
            [small, small], load, backend="discrete", time_step=0.01, charge_unit=0.01
        )
        # The dKiBaM observes emptiness only at draw instants, so for a small
        # 1 Amin battery the discretization error is a few percent.
        assert discrete.lifetime == pytest.approx(analytical.lifetime, rel=0.06)

    def test_requires_at_least_one_battery(self, loads):
        with pytest.raises(ValueError):
            OptimalScheduler([], loads["CL 500"])

    def test_rejects_negative_tolerance(self, b1, loads):
        models = make_battery_models([b1, b1])
        with pytest.raises(ValueError):
            OptimalScheduler(models, loads["CL 500"], dominance_tolerance=-1.0)


class TestPoolingBoundProperties:
    def test_pooled_bound_upper_bounds_the_optimum(self, b1, loads):
        # The perfect-pooling bound from the root must not be below the
        # optimal lifetime (otherwise the pruning would be unsound).
        load = loads["ILs alt"]
        models = make_battery_models([b1, b1])
        scheduler = OptimalScheduler(models, load)
        states = tuple(model.initial_state() for model in models)
        root_bound = scheduler._remaining_lifetime_bound(states, 0, 0.0)
        optimal = find_optimal_schedule([b1, b1], load)
        assert root_bound >= optimal.lifetime - 1e-6

    def test_pooled_bound_equals_double_capacity_battery_lifetime(self, b1, b2, loads):
        # Pooling two B1 batteries gives exactly one B2 battery, so the root
        # bound must equal B2's single-battery lifetime on the same load.
        from repro.kibam.lifetime import lifetime_under_segments

        load = loads["ILs 250"]
        models = make_battery_models([b1, b1])
        scheduler = OptimalScheduler(models, load)
        states = tuple(model.initial_state() for model in models)
        bound = scheduler._remaining_lifetime_bound(states, 0, 0.0)
        assert bound == pytest.approx(lifetime_under_segments(b2, load.segments()), abs=1e-6)
