"""Extension E12: batched branch-and-bound throughput vs the scalar search.

The optimal scheduler was the last scalar-only hot path: every frontier
node advanced batteries one Python call at a time and scanned a pure-Python
dominance archive.  This harness measures the batched best-first search
(``repro.engine.optimal_batch``) against the scalar depth-first reference
on the heaviest Table-5 search (ILs 250, two B1 batteries), in *expanded
nodes per second* -- the natural unit of branch-and-bound work, independent
of how many nodes each strategy happens to need -- and records the rates in
``BENCH_optimal.json``.

Both searches run under the same node budget and state-merge tolerance, so
wall time is bounded and the two sides do identical amounts of expansion
work.  A separate uncapped run on a smaller instance re-checks the parity
contract inside the benchmark, and the end-to-end batched Table-5 optimal
column (all ten loads) is timed as the headline number the paper section
cares about (the scalar equivalent takes ~30s and is not re-measured here;
its node rate is what the gate compares).

The acceptance bar of the batched-optimal PR is a 3x node-throughput ratio
on one core (observed: ~5-7x since the frontier-array refactor);
``scripts/check_bench.py`` tracks the recorded ratio against the committed
baseline thereafter.

A second harness measures *spec-level dominance pruning*: the sweep
runner's cross-grid-point incumbent seeding on a table5-style capacity
grid, recorded as the seeded-vs-fresh expanded-node ratio
(``sweep_nodes_ratio``, also gated) with a bitwise result-identity check
inside the benchmark.

A third harness measures the *recovery-limited admissible bound*: fresh
(unseeded) node counts on the certification-floor loads where seeding
cannot help (``certification_nodes_ratio``, also gated).  All harnesses
merge their keys into ``BENCH_optimal.json`` so any can run alone without
clobbering the others' gated records.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.optimal import find_optimal_schedule
from repro.engine.optimal_batch import (
    find_optimal_schedule_batched,
    optimal_schedules_batch,
)
from repro.kibam.parameters import B1
from repro.sweep import LoadAxis, SweepRunner, SweepSpec, battery_grid

BENCH_OPTIMAL_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_optimal.json"


def update_bench_record(updates: dict) -> None:
    """Merge keys into ``BENCH_optimal.json`` without dropping the others.

    Two harnesses share the record (node throughput here, the seeded-sweep
    node ratio below); merge-style writes keep a partial run from deleting
    the other harness's gated keys.
    """
    record = {}
    if BENCH_OPTIMAL_PATH.is_file():
        record = json.loads(BENCH_OPTIMAL_PATH.read_text())
    record.update(updates)
    BENCH_OPTIMAL_PATH.write_text(json.dumps(record, indent=2) + "\n")

#: Node budget for the timed searches: enough to dominate the fixed costs
#: (incumbent simulation, replay) on both sides, small enough to keep the
#: scalar reference around a second.
MEASURE_NODES = 1500

#: The sweep-column settings (state-merge tolerance of half a charge unit).
TOLERANCE = 0.005


@pytest.mark.benchmark(group="optimal")
def test_optimal_batch_node_throughput(benchmark, loads, b1):
    load = loads["ILs 250"]

    def scalar_search():
        return find_optimal_schedule(
            [b1, b1], load, dominance_tolerance=TOLERANCE, max_nodes=MEASURE_NODES
        )

    def batched_search():
        return find_optimal_schedule_batched(
            [b1, b1], load, dominance_tolerance=TOLERANCE, max_nodes=MEASURE_NODES
        )

    # Scalar reference: one warmup, then the best of two timed repeats
    # (mirrors the min-of-rounds treatment the batch side gets).
    scalar_search()
    scalar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_result = scalar_search()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    scalar_rate = scalar_result.nodes_expanded / scalar_seconds

    batched_result = benchmark.pedantic(
        batched_search, rounds=3, iterations=1, warmup_rounds=1
    )
    batched_seconds = benchmark.stats.stats.min
    batched_rate = batched_result.nodes_expanded / batched_seconds
    speedup = batched_rate / scalar_rate

    # Both sides did real, budgeted work.
    assert scalar_result.nodes_expanded == MEASURE_NODES
    assert batched_result.nodes_expanded == MEASURE_NODES

    # Parity spot-check inside the benchmark: an uncapped certified search
    # on a reduced instance must agree to 1e-9 (the full contract lives in
    # tests/test_optimal_batch.py).
    scaled = B1.scaled(0.75)
    exact_scalar = find_optimal_schedule([scaled, scaled], loads["ILs alt"])
    exact_batched = find_optimal_schedule_batched([scaled, scaled], loads["ILs alt"])
    assert exact_batched.lifetime == pytest.approx(exact_scalar.lifetime, abs=1e-9)
    assert exact_batched.complete == exact_scalar.complete

    # End-to-end headline: the full Table-5 optimal column, batched.
    start = time.perf_counter()
    table5_results = optimal_schedules_batch(
        list(loads.values()), [b1, b1], max_nodes=None, dominance_tolerance=TOLERANCE
    )
    table5_seconds = time.perf_counter() - start
    assert all(result.complete for result in table5_results)

    assert speedup >= 3.0, f"batched optimal speedup {speedup:.1f}x fell below 3x"

    update_bench_record(
        {
            "experiment": "optimal-batch-vs-scalar-search",
            "batteries": "2 x B1",
            "load": "ILs 250",
            "max_nodes": MEASURE_NODES,
            "dominance_tolerance": TOLERANCE,
            "scalar_nodes_per_sec": round(scalar_rate, 1),
            # The frontier-array node throughput (structure-of-arrays
            # slot pools; the per-round node-stacking search this replaced
            # peaked around 5.6k nodes/sec on this box).
            "batched_nodes_per_sec": round(batched_rate, 1),
            "batched_seconds_per_search": round(batched_seconds, 4),
            "table5_optimal_seconds": round(table5_seconds, 2),
            "speedup": round(speedup, 1),
        }
    )
    emit(
        "Extension E12 -- batched optimal search throughput (ILs 250, 2 x B1)",
        f"scalar search : {scalar_rate:10.1f} nodes/sec\n"
        f"batched search: {batched_rate:10.1f} nodes/sec\n"
        f"speedup       : {speedup:10.1f} x   -> BENCH_optimal.json\n"
        f"Table 5 optimal column (10 loads, batched): {table5_seconds:.2f}s",
    )


#: The seeded-sweep measurement grid: a table5-style capacity study (the
#: 2-battery B1 family under paper loads) dense enough near full capacity
#: that each completed search's schedule transfers well into the next
#: point's incumbent.  The loads are the ones whose heuristic-to-optimal
#: gap leaves the incumbent cutoff real work to do; on loads where
#: best-of-two is already optimal (e.g. ILs 250) the bound certification
#: floor dominates and no admissible incumbent can prune it.
SEED_GRID_SCALES = (0.85, 0.9, 0.925, 0.95, 0.975, 1.0)
SEED_GRID_LOADS = ("CL alt", "ILs alt", "IL` 500")


@pytest.mark.benchmark(group="optimal")
def test_seeded_sweep_prunes_nodes_with_identical_results(b1):
    """Spec-level dominance pruning: seeded-vs-fresh sweep node counts.

    Runs the capacity-grid campaign twice through the SweepRunner -- with
    cross-grid-point incumbent seeding (the default) and without -- and
    records the expanded-node totals in ``BENCH_optimal.json``.  Node
    counts are deterministic (no timing noise), so the recorded ratio is
    exactly reproducible for a given code revision; the acceptance bar is
    >= 20% fewer nodes with bitwise-identical sweep results.
    """
    spec = SweepSpec(
        name="table5-capacity-grid",
        batteries=battery_grid(
            [round(b1.capacity * scale, 6) for scale in SEED_GRID_SCALES],
            c=b1.c,
            k_prime=b1.k_prime,
        ),
        loads=(LoadAxis.paper(list(SEED_GRID_LOADS)),),
        policies=("sequential", "round-robin", "best-of-two"),
    ).with_optimal()

    started = time.perf_counter()
    seeded = SweepRunner(None, seed_optimal=True).run(spec)
    seeded_seconds = time.perf_counter() - started
    fresh = SweepRunner(None, seed_optimal=False).run(spec)

    # The invariant first: pruning work must not move a single bit of the
    # results.
    for field in ("lifetimes", "decisions", "residual_charge"):
        np.testing.assert_array_equal(
            getattr(seeded, field)["optimal"], getattr(fresh, field)["optimal"]
        )
    np.testing.assert_array_equal(
        seeded.complete["optimal"], fresh.complete["optimal"]
    )
    assert seeded.complete["optimal"].all()

    seeded_nodes = int(seeded.nodes["optimal"].sum())
    fresh_nodes = int(fresh.nodes["optimal"].sum())
    ratio = fresh_nodes / seeded_nodes
    assert seeded_nodes <= 0.8 * fresh_nodes, (
        f"seeding saved only {1 - seeded_nodes / fresh_nodes:.1%} nodes "
        f"({seeded_nodes} vs {fresh_nodes}); the bar is >= 20%"
    )

    update_bench_record(
        {
            "seeded_sweep_grid": {
                "scales": list(SEED_GRID_SCALES),
                "loads": list(SEED_GRID_LOADS),
                "batteries": 2,
            },
            "seeded_sweep_nodes": seeded_nodes,
            "fresh_sweep_nodes": fresh_nodes,
            "seeded_sweep_seconds": round(seeded_seconds, 3),
            "sweep_nodes_ratio": round(ratio, 3),
        }
    )
    emit(
        "Spec-level dominance pruning -- seeded vs fresh optimal sweeps "
        "(table5-style capacity grid)",
        f"fresh searches : {fresh_nodes:6d} nodes\n"
        f"seeded searches: {seeded_nodes:6d} nodes "
        f"({int(seeded.seeded['optimal'].sum())} of "
        f"{seeded.nodes['optimal'].shape[0]} seeded)\n"
        f"nodes ratio    : {ratio:6.3f} x fewer -> BENCH_optimal.json\n"
        "sweep results bitwise identical (lifetimes, complete, decisions, "
        "residual)",
    )


#: The certification-floor loads: best-of-two is already (near-)optimal, so
#: every expanded node is pure bound-certification work that incumbent
#: seeding cannot touch -- only a tighter admissible bound can.  Reference
#: node counts and lifetimes are fresh (unseeded) batched searches at the
#: sweep-column settings, measured at the pre-recovery-limited-bound
#: revision on this grid; the gated ratio is reference-total over
#: current-total, so >1 means the bound got tighter and a regression below
#: the committed value fails CI like a throughput regression would.
CERT_FLOOR_SETTINGS = dict(max_nodes=20_000, dominance_tolerance=TOLERANCE)
CERT_FLOOR_BASE_NODES = {"ILs 250": 4601, "IL` 250": 19135}
CERT_FLOOR_BASE_LIFETIMES = {
    "ILs 250": 40.724273694191396,
    "IL` 250": 78.834220217177,
}
#: The certified (tolerance-0) optimum on ILs 250, identical between the
#: scalar and batched searches before and after the bound change.
CERT_ILS250_OPTIMUM = 40.72468066943123


@pytest.mark.benchmark(group="optimal")
def test_certification_floor_node_counts(b1, loads):
    """Recovery-limited bound: fresh node counts on the certification floor.

    Runs the two floor loads fresh (no incumbent seeding) at the sweep
    settings and records the expanded-node totals.  Node counts are
    deterministic, so the recorded ratio is exactly reproducible for a
    given revision.  The acceptance bar is >= 20% fewer nodes than the
    pre-bound reference on at least one load, with results never worse
    than the reference and within the tolerance contract of the certified
    optimum.
    """
    nodes = {}
    for name, base_nodes in CERT_FLOOR_BASE_NODES.items():
        result = find_optimal_schedule_batched(
            [b1, b1], loads[name], **CERT_FLOOR_SETTINGS
        )
        assert result.complete
        # Tolerance searches trade certification for speed, never result
        # quality below the reference revision's.
        assert result.lifetime >= CERT_FLOOR_BASE_LIFETIMES[name] - 1e-9
        nodes[name] = result.nodes_expanded

    # The certified optimum itself is pinned unchanged (the full parity
    # contract lives in tests/test_optimal_batch.py), and the tolerance
    # search stays within its contract of it.
    certified = find_optimal_schedule_batched([b1, b1], loads["ILs 250"])
    assert certified.complete
    assert certified.lifetime == pytest.approx(CERT_ILS250_OPTIMUM, abs=1e-9)

    reductions = {
        name: 1.0 - nodes[name] / CERT_FLOOR_BASE_NODES[name]
        for name in nodes
    }
    assert max(reductions.values()) >= 0.20, (
        f"best certification-floor node cut {max(reductions.values()):.1%} "
        f"({nodes} vs {CERT_FLOOR_BASE_NODES}); the bar is >= 20%"
    )
    ratio = sum(CERT_FLOOR_BASE_NODES.values()) / sum(nodes.values())

    update_bench_record(
        {
            "certification_floor_settings": dict(CERT_FLOOR_SETTINGS),
            "certification_floor_base_nodes": dict(CERT_FLOOR_BASE_NODES),
            "certification_floor_nodes": nodes,
            "certification_nodes_ratio": round(ratio, 3),
        }
    )
    emit(
        "Recovery-limited bound -- fresh certification-floor node counts "
        "(sweep settings, 2 x B1)",
        "\n".join(
            f"{name:8s}: {nodes[name]:6d} nodes "
            f"(reference {CERT_FLOOR_BASE_NODES[name]}, "
            f"{reductions[name]:.1%} fewer)"
            for name in nodes
        )
        + f"\nnodes ratio: {ratio:.3f} x fewer -> BENCH_optimal.json",
    )
