"""Extension E12: batched branch-and-bound throughput vs the scalar search.

The optimal scheduler was the last scalar-only hot path: every frontier
node advanced batteries one Python call at a time and scanned a pure-Python
dominance archive.  This harness measures the batched best-first search
(``repro.engine.optimal_batch``) against the scalar depth-first reference
on the heaviest Table-5 search (ILs 250, two B1 batteries), in *expanded
nodes per second* -- the natural unit of branch-and-bound work, independent
of how many nodes each strategy happens to need -- and records the rates in
``BENCH_optimal.json``.

Both searches run under the same node budget and state-merge tolerance, so
wall time is bounded and the two sides do identical amounts of expansion
work.  A separate uncapped run on a smaller instance re-checks the parity
contract inside the benchmark, and the end-to-end batched Table-5 optimal
column (all ten loads) is timed as the headline number the paper section
cares about (the scalar equivalent takes ~30s and is not re-measured here;
its node rate is what the gate compares).

The acceptance bar of the batched-optimal PR is a 3x node-throughput ratio
on one core (observed: ~5-7x); ``scripts/check_bench.py`` tracks the
recorded ratio against the committed baseline thereafter.
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import emit
from repro.core.optimal import find_optimal_schedule
from repro.engine.optimal_batch import (
    find_optimal_schedule_batched,
    optimal_schedules_batch,
)
from repro.kibam.parameters import B1

BENCH_OPTIMAL_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_optimal.json"

#: Node budget for the timed searches: enough to dominate the fixed costs
#: (incumbent simulation, replay) on both sides, small enough to keep the
#: scalar reference around a second.
MEASURE_NODES = 1500

#: The sweep-column settings (state-merge tolerance of half a charge unit).
TOLERANCE = 0.005


@pytest.mark.benchmark(group="optimal")
def test_optimal_batch_node_throughput(benchmark, loads, b1):
    load = loads["ILs 250"]

    def scalar_search():
        return find_optimal_schedule(
            [b1, b1], load, dominance_tolerance=TOLERANCE, max_nodes=MEASURE_NODES
        )

    def batched_search():
        return find_optimal_schedule_batched(
            [b1, b1], load, dominance_tolerance=TOLERANCE, max_nodes=MEASURE_NODES
        )

    # Scalar reference: one warmup, then the best of two timed repeats
    # (mirrors the min-of-rounds treatment the batch side gets).
    scalar_search()
    scalar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_result = scalar_search()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    scalar_rate = scalar_result.nodes_expanded / scalar_seconds

    batched_result = benchmark.pedantic(
        batched_search, rounds=3, iterations=1, warmup_rounds=1
    )
    batched_seconds = benchmark.stats.stats.min
    batched_rate = batched_result.nodes_expanded / batched_seconds
    speedup = batched_rate / scalar_rate

    # Both sides did real, budgeted work.
    assert scalar_result.nodes_expanded == MEASURE_NODES
    assert batched_result.nodes_expanded == MEASURE_NODES

    # Parity spot-check inside the benchmark: an uncapped certified search
    # on a reduced instance must agree to 1e-9 (the full contract lives in
    # tests/test_optimal_batch.py).
    scaled = B1.scaled(0.75)
    exact_scalar = find_optimal_schedule([scaled, scaled], loads["ILs alt"])
    exact_batched = find_optimal_schedule_batched([scaled, scaled], loads["ILs alt"])
    assert exact_batched.lifetime == pytest.approx(exact_scalar.lifetime, abs=1e-9)
    assert exact_batched.complete == exact_scalar.complete

    # End-to-end headline: the full Table-5 optimal column, batched.
    start = time.perf_counter()
    table5_results = optimal_schedules_batch(
        list(loads.values()), [b1, b1], max_nodes=None, dominance_tolerance=TOLERANCE
    )
    table5_seconds = time.perf_counter() - start
    assert all(result.complete for result in table5_results)

    assert speedup >= 3.0, f"batched optimal speedup {speedup:.1f}x fell below 3x"

    record = {
        "experiment": "optimal-batch-vs-scalar-search",
        "batteries": "2 x B1",
        "load": "ILs 250",
        "max_nodes": MEASURE_NODES,
        "dominance_tolerance": TOLERANCE,
        "scalar_nodes_per_sec": round(scalar_rate, 1),
        "batched_nodes_per_sec": round(batched_rate, 1),
        "batched_seconds_per_search": round(batched_seconds, 4),
        "table5_optimal_seconds": round(table5_seconds, 2),
        "speedup": round(speedup, 1),
    }
    BENCH_OPTIMAL_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Extension E12 -- batched optimal search throughput (ILs 250, 2 x B1)",
        f"scalar search : {scalar_rate:10.1f} nodes/sec\n"
        f"batched search: {batched_rate:10.1f} nodes/sec\n"
        f"speedup       : {speedup:10.1f} x   -> BENCH_optimal.json\n"
        f"Table 5 optimal column (10 loads, batched): {table5_seconds:.2f}s",
    )
