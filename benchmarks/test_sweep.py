"""Extension E10: sweep orchestration throughput and cache-hit speedup.

The sweep subsystem's pitch is that campaigns are described once, computed
once and then re-read for free.  This harness measures both halves on a
mid-size random-load campaign -- a cold run (load generation + vectorized
simulation + store writes) and an immediately repeated run (pure cache
reads) -- and records the rates in ``BENCH_sweep.json`` next to
``BENCH_engine.json`` so the orchestration layer's perf trajectory is
tracked PR over PR.

The acceptance bar of the sweep PR -- an immediate re-run at least 10x
faster than the cold run -- is asserted here (observed: well above 20x on a
quiet single core; wall-clock ratios on shared runners are noisy, so the
hard gate sits at the bar itself rather than the observed headroom).
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import emit
from repro.kibam.parameters import B1
from repro.sweep import BatteryConfig, LoadAxis, ResultStore, SweepRunner, SweepSpec
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

BENCH_SWEEP_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_sweep.json"


@pytest.mark.benchmark(group="sweep")
def test_sweep_throughput_and_cache_speedup(benchmark, tmp_path):
    spec = SweepSpec(
        name="bench-sweep",
        batteries=(BatteryConfig(label="2xB1", params=(B1, B1)),),
        loads=(LoadAxis.random(400, seed=0, config=ILS_LIKE_RANDOM_CONFIG),),
        policies=("sequential", "round-robin", "best-of-two"),
        chunk_size=100,
    )
    runner = SweepRunner(ResultStore(tmp_path / "store"))

    start = time.perf_counter()
    cold = runner.run(spec)
    cold_seconds = time.perf_counter() - start
    assert cold.stats.chunks_run == spec.n_chunks

    def warm_run():
        return runner.run(spec)

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1, warmup_rounds=1)
    warm_seconds = benchmark.stats.stats.min
    assert warm.stats.chunks_cached == spec.n_chunks
    for policy in spec.policies:
        assert (warm.lifetimes[policy] == cold.lifetimes[policy]).all()

    scenario_policies = spec.n_scenarios * len(spec.policies)
    cold_rate = scenario_policies / cold_seconds
    warm_rate = scenario_policies / warm_seconds
    speedup = cold_seconds / warm_seconds
    assert speedup >= 10.0, (
        f"cache-hit re-run only {speedup:.1f}x faster than the cold sweep"
    )

    record = {
        "experiment": "sweep-orchestration",
        "spec": spec.name,
        "spec_hash": spec.spec_hash(),
        "n_scenarios": spec.n_scenarios,
        "n_chunks": spec.n_chunks,
        "policies": list(spec.policies),
        "cold_seconds": round(cold_seconds, 4),
        "cold_scenario_policies_per_sec": round(cold_rate, 1),
        "warm_seconds": round(warm_seconds, 4),
        "warm_scenario_policies_per_sec": round(warm_rate, 1),
        "cache_hit_speedup": round(speedup, 1),
    }
    BENCH_SWEEP_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Extension E10 -- sweep orchestration (400 samples x 3 policies, 2 x B1)",
        f"cold run : {cold_seconds:8.3f} s  ({cold_rate:10.1f} scenario-policies/sec,"
        f" generation + simulation + store writes)\n"
        f"cache hit: {warm_seconds:8.3f} s  ({warm_rate:10.1f} scenario-policies/sec,"
        f" pure store reads)\n"
        f"speedup  : {speedup:8.1f} x   -> BENCH_sweep.json",
    )
