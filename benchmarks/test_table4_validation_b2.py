"""Experiment E2 (Table 4): single-battery validation for battery B2.

Same as Table 3 but for the 11 Amin battery; the doubled capacity means the
recovery effect has more room to act, and the CL 250 / CL alt rows show the
discretization effect the paper discusses (the height difference saturates
at the point where discharge and recovery rates balance).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_validation_table
from repro.analysis.tables import PAPER_TABLE4, table4


@pytest.mark.benchmark(group="table4")
def test_table4_validation_b2(benchmark, loads):
    rows = benchmark.pedantic(lambda: table4(loads=loads), rounds=1, iterations=1)

    emit("Table 4 -- battery B2: analytical KiBaM vs dKiBaM (paper values right)",
         render_validation_table(rows, "load / lifetime (min)"))

    for row in rows:
        reference = PAPER_TABLE4.get(row.load_name)
        assert abs(row.difference_percent) < 1.5
        if reference is not None:
            assert row.analytical_lifetime == pytest.approx(reference[0], abs=0.03)
            assert row.discrete_lifetime == pytest.approx(reference[1], abs=0.06)
