"""Experiment E8 (extension, Section 7 outlook): random-load analysis.

The paper's conclusion calls for analysing realistic random loads, which the
Cora toolchain cannot express.  This harness samples random ILs-like loads,
runs the deterministic schedulers and the (capped) optimal scheduler on each
sample, and reports the lifetime distributions -- the Monte-Carlo companion
of Table 5.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.montecarlo import lifetime_distribution, render_distributions
from repro.kibam.parameters import B1
from repro.workloads.generator import RandomLoadConfig


@pytest.mark.benchmark(group="random-loads")
def test_random_load_distribution(benchmark, b1):
    config = RandomLoadConfig(
        levels=(0.25, 0.5),
        job_duration_range=(0.5, 1.5),
        idle_duration_range=(0.5, 2.0),
        total_duration=120.0,
        duration_step=0.25,
    )

    def sweep():
        return lifetime_distribution(
            [B1, B1],
            n_samples=20,
            config=config,
            seed=42,
            include_optimal=True,
            optimal_max_nodes=4000,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension -- lifetime distribution over 20 random ILs-like loads (2 x B1)",
        render_distributions(result)
        + "\n\nmean gain of best-of-two over round robin: "
        + f"{result.mean_gain_percent('best-of-two', 'round-robin'):.1f} %"
        + "\nmean gain of the (capped) optimal search over best-of-two: "
        + f"{result.mean_gain_percent('optimal', 'best-of-two'):.1f} %",
    )

    # The optimal search starts from the best-of-two incumbent, so it can
    # never lose to it on any sample.
    for best, optimal in zip(result.per_sample["best-of-two"], result.per_sample["optimal"]):
        assert best <= optimal + 1e-9
    # The qualitative Table 5 ordering survives randomization on average:
    # sequential is the weakest scheme and battery-state-aware picks beat the
    # blind round robin on non-uniform loads.
    distributions = result.distributions
    assert distributions["sequential"].mean <= distributions["round-robin"].mean + 1e-9
    assert result.mean_gain_percent("best-of-two", "round-robin") > 0.0
    assert result.mean_gain_percent("optimal", "round-robin") > 0.0
