"""Experiment E8 (extension, Section 7 outlook): random-load analysis.

The paper's conclusion calls for analysing realistic random loads, which the
Cora toolchain cannot express.  This harness samples random ILs-like loads,
runs the deterministic schedulers and the (capped) optimal scheduler on each
sample, and reports the lifetime distributions -- the Monte-Carlo companion
of Table 5.
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.montecarlo import lifetime_distribution, render_distributions
from repro.core.simulator import simulate_policy
from repro.engine import BatchSimulator, ScenarioSet
from repro.kibam.parameters import B1
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

#: Where the engine throughput record lands (repo root, next to the other
#: reproduction artifacts) so the perf trajectory is tracked PR over PR.
BENCH_ENGINE_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


@pytest.mark.benchmark(group="random-loads")
def test_random_load_distribution(benchmark, b1):
    config = ILS_LIKE_RANDOM_CONFIG

    def sweep():
        return lifetime_distribution(
            [B1, B1],
            n_samples=20,
            config=config,
            seed=42,
            include_optimal=True,
            optimal_max_nodes=4000,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension -- lifetime distribution over 20 random ILs-like loads (2 x B1)",
        render_distributions(result)
        + "\n\nmean gain of best-of-two over round robin: "
        + f"{result.mean_gain_percent('best-of-two', 'round-robin'):.1f} %"
        + "\nmean gain of the (capped) optimal search over best-of-two: "
        + f"{result.mean_gain_percent('optimal', 'best-of-two'):.1f} %",
    )

    # The optimal search starts from the best-of-two incumbent, so it can
    # never lose to it on any sample.
    for best, optimal in zip(result.per_sample["best-of-two"], result.per_sample["optimal"]):
        assert best <= optimal + 1e-9
    assert result.engine == "batch"  # auto engine vectorizes this sweep
    # The qualitative Table 5 ordering survives randomization on average:
    # sequential is the weakest scheme and battery-state-aware picks beat the
    # blind round robin on non-uniform loads.
    distributions = result.distributions
    assert distributions["sequential"].mean <= distributions["round-robin"].mean + 1e-9
    assert result.mean_gain_percent("best-of-two", "round-robin") > 0.0
    assert result.mean_gain_percent("optimal", "round-robin") > 0.0


@pytest.mark.benchmark(group="engine")
def test_engine_throughput_1000_samples(benchmark, b1):
    """Extension E9: fleet-scale Monte-Carlo throughput, scalar vs batch.

    Runs the acceptance sweep of the batch engine PR -- 1000 random-load
    samples x 3 policies on 2 x B1 -- through ``BatchSimulator`` and
    measures the scalar loop on a subset (the full scalar sweep would take
    minutes), then records both rates in ``BENCH_engine.json`` so the perf
    trajectory is tracked from this PR onward.
    """
    config = ILS_LIKE_RANDOM_CONFIG
    policies = ("sequential", "round-robin", "best-of-two")
    n_samples = 1000
    scalar_subset = 30
    scenarios = ScenarioSet.random(n_samples, config, seed=0)
    simulator = BatchSimulator([b1, b1])

    # Scalar reference loop (the pre-engine Monte-Carlo hot path), timed on
    # the first ``scalar_subset`` of the same samples: one warmup pass, then
    # the best of two timed repeats, mirroring the min-of-rounds treatment
    # the batch side gets so one scheduler hiccup cannot skew the ratio.
    def scalar_sweep():
        return {
            policy: [
                simulate_policy([b1, b1], load, policy).lifetime
                for load in scenarios.loads[:scalar_subset]
            ]
            for policy in policies
        }

    scalar_sweep()
    scalar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_lifetimes = scalar_sweep()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    scalar_rate = scalar_subset * len(policies) / scalar_seconds

    def sweep():
        return simulator.run_many(scenarios, policies)

    results = benchmark.pedantic(sweep, rounds=3, iterations=1, warmup_rounds=1)
    batch_seconds = benchmark.stats.stats.min
    batch_rate = n_samples * len(policies) / batch_seconds
    speedup = batch_rate / scalar_rate

    # The batch engine must agree with the scalar loop sample for sample...
    for policy in policies:
        for index, scalar_value in enumerate(scalar_lifetimes[policy]):
            assert abs(results[policy].lifetimes[index] - scalar_value) <= 1e-9
    # ... and clearly beat the scalar loop.  The engine's bar is 10x and it
    # measures ~19x on a quiet single core, but wall-clock ratios on shared
    # CI runners are noisy, so the hard gate sits at half the bar; the true
    # measured ratio is recorded in BENCH_engine.json either way.
    assert speedup >= 5.0, f"batch engine speedup {speedup:.1f}x fell below 5x"

    record = {
        "experiment": "montecarlo-random-loads",
        "batteries": "2 x B1",
        "n_samples": n_samples,
        "policies": list(policies),
        "scalar_subset": scalar_subset,
        "scalar_scenarios_per_sec": round(scalar_rate, 1),
        "batch_scenarios_per_sec": round(batch_rate, 1),
        "batch_seconds_per_sweep": round(batch_seconds, 4),
        "speedup": round(speedup, 1),
    }
    BENCH_ENGINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Extension E9 -- batch engine throughput (1000 samples x 3 policies, 2 x B1)",
        f"scalar loop : {scalar_rate:10.1f} scenario-policies/sec "
        f"(measured on {scalar_subset} samples)\n"
        f"batch engine: {batch_rate:10.1f} scenario-policies/sec "
        f"(full {n_samples}-sample sweep)\n"
        f"speedup     : {speedup:10.1f} x   -> BENCH_engine.json",
    )
