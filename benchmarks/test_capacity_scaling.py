"""Experiment E5 (Section 6, text): residual charge vs battery capacity.

The paper notes that with the small B1 batteries roughly 70 % of the charge
is still bound when the system dies, and that with a ten times larger
capacity the fraction left behind under best-of-two scheduling drops below
10 %.  This harness sweeps the capacity scale factor and reports the
residual fraction and lifetime for the best-of-two scheduler.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.simulator import simulate_policy
from repro.kibam.parameters import B1
from repro.workloads.profiles import continuous_load, intermittent_load


def _residual_fraction(scale: float, load) -> tuple:
    params = B1.scaled(scale)
    result = simulate_policy([params, params], load, "best-of-two")
    lifetime = result.lifetime_or_raise()
    fraction = result.residual_charge / (2 * params.capacity)
    return lifetime, fraction


@pytest.mark.benchmark(group="capacity-scaling")
def test_capacity_scaling(benchmark):
    scales = (1.0, 2.0, 5.0, 10.0)
    # Loads long enough to exhaust even the 10x batteries.
    loads = {
        "CL 250": continuous_load(0.25, total_duration=600.0, name="CL 250"),
        "ILs 500": intermittent_load(0.5, 1.0, total_duration=600.0, name="ILs 500"),
    }

    def sweep():
        return {
            (load_name, scale): _residual_fraction(scale, load)
            for load_name, load in loads.items()
            for scale in scales
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'load':10s} {'scale':>6s} {'lifetime (min)':>15s} {'residual %':>11s}"]
    for (load_name, scale), (lifetime, fraction) in results.items():
        lines.append(f"{load_name:10s} {scale:6.1f} {lifetime:15.2f} {fraction * 100.0:11.1f}")
    emit("Section 6 -- residual charge fraction vs capacity (best-of-two)", "\n".join(lines))

    for load_name in loads:
        fractions = [results[(load_name, scale)][1] for scale in scales]
        # The residual fraction decreases monotonically with the capacity and
        # approaches the paper's "below 10 %" figure at ten times the capacity
        # (measured: 9.7 % on CL 250 and 11.0 % on ILs 500).
        assert all(later < earlier + 1e-9 for earlier, later in zip(fractions, fractions[1:]))
        assert fractions[-1] < 0.12
        # The small batteries leave a large part of their charge stranded.
        assert fractions[0] > 0.45
    assert results[("CL 250", 10.0)][1] < 0.10
