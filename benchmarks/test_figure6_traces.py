"""Experiment E4 (Figure 6): charge evolution under best-of-two vs optimal.

Regenerates the data series of Figure 6 for the ILs alt load on two B1
batteries: per-battery total and available charge over time plus the
chosen-battery step function, for the best-of-two and the optimal schedule.
The assertions check the features visible in the paper's figure: the
recovery effect (available charge rising during idle phases), the longer
lifetime of the optimal schedule, and the large residual charge (~70 % of
the combined capacity) left when the system dies.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import figure6, residual_charge_summary
from repro.analysis.report import render_figure6_summary, render_schedule_ascii


@pytest.mark.benchmark(group="figure6")
def test_figure6_traces(benchmark):
    data = benchmark.pedantic(lambda: figure6(sample_interval=0.05), rounds=1, iterations=1)

    emit(
        "Figure 6 -- ILs alt, two B1 batteries: best-of-two (a) vs optimal (b)",
        "\n\n".join(
            [
                render_figure6_summary(data),
                render_schedule_ascii(data.best_of_two),
                render_schedule_ascii(data.optimal),
            ]
        ),
    )

    # Paper values: best-of-two 16.30 min, optimal 16.91 min.
    assert data.best_of_two.lifetime == pytest.approx(16.30, rel=0.03)
    assert data.optimal.lifetime == pytest.approx(16.91, rel=0.03)
    assert data.optimal.lifetime >= data.best_of_two.lifetime

    # Roughly 70 % of the combined 11 Amin is still bound at system death
    # (the paper quotes ~3.9 Amin per battery).
    summary = residual_charge_summary(data.best_of_two)
    assert 0.55 < summary["residual_fraction"] < 0.8

    # The recovery effect must be visible: available charge rises during
    # idle periods on both panels.
    for trace in (data.best_of_two, data.optimal):
        rises = sum(
            1
            for series in trace.available_charge
            for a, b in zip(series, series[1:])
            if b > a + 1e-9
        )
        assert rises > 0
