"""Experiment E7 (ablation, Section 4.4): cost of finding the optimal schedule.

Section 4.4 observes that the complexity of the optimal-schedule search is
exponential in the number of scheduling decisions, with the number of
batteries as the base.  This harness measures, on a family of alternating
loads of growing length:

* the number of decision nodes expanded by the branch-and-bound search with
  its prunings enabled (the library's replacement for Cora), and
* the effect of switching off dominance pruning,

and, separately, the explicit state count of the faithful TA-KiBaM
minimum-cost query on a small instance -- the route that mirrors the
paper's tooling most closely.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.optimal import find_optimal_schedule
from repro.kibam.parameters import BatteryParameters
from repro.takibam.builder import build_takibam
from repro.takibam.runner import takibam_optimal_schedule
from repro.workloads.load import Epoch, Load

#: Small battery for the explicit-state TA-KiBaM query, which is the most
#: expensive route (Section 4.4): its state space grows with the number of
#: charge units, so the coarse query uses a 1 Amin cell.
TA_SMALL = BatteryParameters(capacity=1.0, c=0.166, k_prime=0.122, name="ta-small")


def alternating_load(cycles: int) -> Load:
    epochs = []
    for index in range(cycles):
        current = 0.5 if index % 2 == 0 else 0.25
        epochs.append(Epoch(current=current, duration=1.0))
        epochs.append(Epoch(current=0.0, duration=1.0))
    return Load(name=f"alt-{cycles}", epochs=tuple(epochs))


@pytest.mark.benchmark(group="search-complexity")
def test_branch_and_bound_complexity(benchmark, loads, b1):
    """Search effort on the paper's own loads under three pruning settings.

    The number of scheduling decisions grows with the lifetime (Section 4.4
    observes the exponential dependence), so the three Table 5 loads used
    here span short (CL alt), medium (ILs alt) and long (CL 250) searches.
    """
    load_names = ("CL alt", "ILs alt", "IL` 500", "CL 250")

    def sweep():
        results = {}
        for name in load_names:
            load = loads[name]
            exact = find_optimal_schedule([b1, b1], load)
            merged = find_optimal_schedule([b1, b1], load, dominance_tolerance=0.005)
            no_dominance = find_optimal_schedule([b1, b1], load, use_dominance=False)
            results[name] = (exact, merged, no_dominance)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'load':10s} {'lifetime':>9s} {'nodes exact':>12s} {'nodes merged':>13s} {'nodes no-dominance':>19s}"
    ]
    for name, (exact, merged, no_dominance) in results.items():
        lines.append(
            f"{name:10s} {exact.lifetime:9.2f} {exact.nodes_expanded:12d} "
            f"{merged.nodes_expanded:13d} {no_dominance.nodes_expanded:19d}"
        )
    emit(
        "Ablation -- optimal-search cost on Table 5 loads (2 x B1, three pruning settings)",
        "\n".join(lines),
    )

    for name, (exact, merged, no_dominance) in results.items():
        # Pruning never changes the result materially, only the work.
        assert merged.lifetime == pytest.approx(exact.lifetime, rel=0.005)
        assert no_dominance.lifetime == pytest.approx(exact.lifetime, abs=1e-6)
        assert exact.nodes_expanded <= no_dominance.nodes_expanded
        assert merged.nodes_expanded <= exact.nodes_expanded


@pytest.mark.benchmark(group="search-complexity")
def test_takibam_state_space(benchmark):
    load = alternating_load(8)

    def run():
        model = build_takibam([TA_SMALL, TA_SMALL], load, time_step=0.1, charge_unit=0.1)
        return takibam_optimal_schedule(model)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    fast = find_optimal_schedule(
        [TA_SMALL, TA_SMALL], load, backend="discrete", time_step=0.1, charge_unit=0.1
    )

    emit(
        "Ablation -- faithful TA-KiBaM optimal query (coarse discretization)",
        f"lifetime {result.lifetime:.2f} min, explicit states {result.states_explored}, "
        f"branch-and-bound (same discretization): {fast.lifetime:.2f} min, "
        f"{fast.nodes_expanded} decision nodes",
    )

    # The two routes to the optimum agree on the same discretized model up to
    # the coarse time step.
    assert result.lifetime == pytest.approx(fast.lifetime, abs=0.2 + 1e-9)
