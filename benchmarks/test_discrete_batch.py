"""Extension E11: vectorized dKiBaM throughput, batch engine vs scalar ticks.

The discrete-time KiBaM (Section 2.3) has no closed form: the scalar
golden-reference path walks every battery one 0.01-minute tick at a time in
pure Python, which is why discrete columns used to be the slowest part of
every campaign.  This harness measures the event-jumping batch dKiBaM
(``model="discrete"``) against that scalar tick loop on the reference
Monte-Carlo sweep -- random ILs-like loads x 3 policies on 2 x B1 -- checks
the exact tick-for-tick parity contract on the measured subset, and records
both rates in ``BENCH_dkibam.json`` next to the other throughput records.

The acceptance bar of the dKiBaM-vectorization PR is a 10x batch-vs-scalar
throughput ratio on one core (observed: well above 20x; wall-clock ratios
on shared runners are noisy, so the hard in-test gate sits at half the bar
while ``scripts/check_bench.py`` tracks the recorded ratio against the
committed baseline).
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import emit
from repro.core.simulator import simulate_policy
from repro.engine import BatchSimulator, ScenarioSet
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

BENCH_DKIBAM_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_dkibam.json"


@pytest.mark.benchmark(group="dkibam")
def test_dkibam_batch_throughput(benchmark, b1):
    config = ILS_LIKE_RANDOM_CONFIG
    policies = ("sequential", "round-robin", "best-of-two")
    n_samples = 600
    scalar_subset = 6
    scenarios = ScenarioSet.random(n_samples, config, seed=0)
    simulator = BatchSimulator([b1, b1], model="discrete")
    time_step = simulator.time_step

    # Scalar reference: the per-tick Python loop, timed on the first
    # ``scalar_subset`` samples (the full scalar sweep would take minutes);
    # one warmup pass, then the best of two timed repeats, mirroring the
    # min-of-rounds treatment the batch side gets.
    def scalar_sweep():
        return {
            policy: [
                simulate_policy([b1, b1], load, policy, backend="discrete")
                for load in scenarios.loads[:scalar_subset]
            ]
            for policy in policies
        }

    scalar_sweep()
    scalar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_results = scalar_sweep()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
    scalar_rate = scalar_subset * len(policies) / scalar_seconds

    def sweep():
        return simulator.run_many(scenarios, policies)

    results = benchmark.pedantic(sweep, rounds=3, iterations=1, warmup_rounds=1)
    batch_seconds = benchmark.stats.stats.min
    batch_rate = n_samples * len(policies) / batch_seconds
    speedup = batch_rate / scalar_rate

    # The batch dKiBaM's contract is *exact* integer parity with the scalar
    # tick loop -- lifetimes in ticks and final charge units, not a float
    # tolerance -- verified here on every measured scalar sample.
    for policy in policies:
        for index, scalar in enumerate(scalar_results[policy]):
            assert results[policy].lifetime_ticks[index] == round(
                scalar.lifetime / time_step
            )
            for battery, state in enumerate(scalar.final_states):
                assert results[policy].charge_units[index, battery, 0] == state.n
                assert results[policy].charge_units[index, battery, 1] == state.m

    assert speedup >= 5.0, f"batch dKiBaM speedup {speedup:.1f}x fell below 5x"

    record = {
        "experiment": "dkibam-batch-vs-scalar-ticks",
        "batteries": "2 x B1",
        "model": "discrete",
        "n_samples": n_samples,
        "policies": list(policies),
        "scalar_subset": scalar_subset,
        "scalar_scenarios_per_sec": round(scalar_rate, 1),
        "batch_scenarios_per_sec": round(batch_rate, 1),
        "batch_seconds_per_sweep": round(batch_seconds, 4),
        "speedup": round(speedup, 1),
    }
    BENCH_DKIBAM_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Extension E11 -- batch dKiBaM throughput (600 samples x 3 policies, 2 x B1)",
        f"scalar ticks: {scalar_rate:10.1f} scenario-policies/sec "
        f"(measured on {scalar_subset} samples)\n"
        f"batch dKiBaM: {batch_rate:10.1f} scenario-policies/sec "
        f"(full {n_samples}-sample sweep)\n"
        f"speedup     : {speedup:10.1f} x   -> BENCH_dkibam.json",
    )
