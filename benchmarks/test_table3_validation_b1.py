"""Experiment E1 (Table 3): single-battery validation for battery B1.

Regenerates the analytical-KiBaM and dKiBaM lifetimes of battery B1 (5.5
Amin) for all ten test loads and compares them with the published values.
The paper reports relative differences of at most about 1 %.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_validation_table
from repro.analysis.tables import PAPER_TABLE3, table3


@pytest.mark.benchmark(group="table3")
def test_table3_validation_b1(benchmark, loads):
    rows = benchmark.pedantic(lambda: table3(loads=loads), rounds=1, iterations=1)

    emit("Table 3 -- battery B1: analytical KiBaM vs dKiBaM (paper values right)",
         render_validation_table(rows, "load / lifetime (min)"))

    for row in rows:
        reference = PAPER_TABLE3.get(row.load_name)
        # The relative error band of the paper holds for every load.
        assert abs(row.difference_percent) < 1.5
        if reference is not None:
            assert row.analytical_lifetime == pytest.approx(reference[0], abs=0.02)
            assert row.discrete_lifetime == pytest.approx(reference[1], abs=0.06)
