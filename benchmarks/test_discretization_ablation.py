"""Experiment E6 (ablation, Section 2.3 / 5): discretization granularity sweep.

The paper fixes the dKiBaM discretization at T = 0.01 min and Gamma = 0.01
Amin and reports that the error against the analytical KiBaM stays around
1 %.  This ablation sweeps the granularity and reports the error, showing
how the paper's choice trades accuracy against state-space size (the number
of charge units N = C / Gamma drives the TA-KiBaM state count, Section 4.4).
"""

import pytest

from benchmarks.conftest import emit
from repro.kibam.discrete import DiscreteKibam
from repro.kibam.lifetime import lifetime_under_segments
from repro.kibam.parameters import B1

GRANULARITIES = (
    # (time_step, charge_unit)
    (0.05, 0.05),
    (0.02, 0.02),
    (0.01, 0.01),   # the paper's choice
    (0.005, 0.005),
)

LOAD_NAMES = ("CL 500", "CL alt", "ILs alt", "IL` 500")


@pytest.mark.benchmark(group="discretization")
def test_discretization_ablation(benchmark, loads):
    def sweep():
        results = {}
        for load_name in LOAD_NAMES:
            segments = loads[load_name].segments()
            analytical = lifetime_under_segments(B1, segments)
            for time_step, charge_unit in GRANULARITIES:
                model = DiscreteKibam(B1, time_step=time_step, charge_unit=charge_unit)
                discrete = model.lifetime_under_segments(segments)
                error = (discrete - analytical) / analytical * 100.0
                results[(load_name, time_step)] = (analytical, discrete, error, model.total_units)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'load':10s} {'T=Gamma':>8s} {'N':>6s} {'KiBaM':>8s} {'dKiBaM':>8s} {'error %':>8s}"]
    for (load_name, time_step), (analytical, discrete, error, units) in results.items():
        lines.append(
            f"{load_name:10s} {time_step:8.3f} {units:6d} {analytical:8.2f} {discrete:8.2f} {error:8.2f}"
        )
    emit("Ablation -- dKiBaM granularity vs accuracy (battery B1)", "\n".join(lines))

    for load_name in LOAD_NAMES:
        # The paper's granularity keeps the error around one percent.
        assert abs(results[(load_name, 0.01)][2]) < 1.5
        # Refining the discretization does not make the error worse.
        coarse_error = abs(results[(load_name, 0.05)][2])
        fine_error = abs(results[(load_name, 0.005)][2])
        assert fine_error <= coarse_error + 0.25
