"""Fleet-scale scheduling: N-battery search throughput and symmetry pruning.

The fleet extension takes the optimal search beyond the paper's two
batteries.  This harness measures two things and records them in
``BENCH_fleet.json`` (gated by ``scripts/check_bench.py``):

* **node throughput at fleet width** -- the batched best-first search on
  the 4- and 8-battery mixed-B1-scale fleets of the ``fleet``/``fleet-8``
  sweep specs, under the duty-cycled sensor load that drives both searches
  into their node budget, in expanded nodes per second
  (``fleet4_nodes_per_sec``, ``fleet8_nodes_per_sec``);
* **group-wise symmetry pruning** -- certified searches on fleets with
  identical subgroups (2+2, 3+1 and 4+4), with the group-wise symmetry
  reduction on vs off, recorded as the expanded-node ratio
  (``group_symmetry_nodes_ratio``).  Node counts are deterministic, so the
  ratio is exactly reproducible for a given revision; the result-identity
  check (bitwise-equal lifetimes) runs inside the benchmark.

Both harnesses merge their keys into ``BENCH_fleet.json`` so either can
run alone without clobbering the other's gated record.
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import emit
from repro.engine.optimal_batch import find_optimal_schedule_batched
from repro.kibam.parameters import B1, BatteryParameters
from repro.workloads.generator import duty_cycled_sensor_load
from repro.workloads.load import Epoch, Load

BENCH_FLEET_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


def update_bench_record(updates: dict) -> None:
    """Merge keys into ``BENCH_fleet.json`` without dropping the others."""
    record = {}
    if BENCH_FLEET_PATH.is_file():
        record = json.loads(BENCH_FLEET_PATH.read_text())
    record.update(updates)
    BENCH_FLEET_PATH.write_text(json.dumps(record, indent=2) + "\n")


#: The ``fleet`` / ``fleet-8`` sweep-spec batteries (mixed B1 scales).
HALF = B1.scaled(0.5)
SMALL = B1.scaled(0.375)
FLEET4 = [HALF, HALF, SMALL, SMALL]
FLEET8 = [HALF] * 4 + [SMALL] * 4

#: Node budget for the timed searches (both fleet widths exceed it under
#: the sensor load, so each timed search does exactly this much work).
MEASURE_NODES = 1500

#: The sweep-column state-merge tolerance.
TOLERANCE = 0.005


def _sensor_load() -> Load:
    """The fleet specs' duty-cycled sensor load (DCS 500)."""
    return duty_cycled_sensor_load(
        sense_current=0.1,
        transmit_current=0.5,
        sense_duration=0.5,
        transmit_duration=0.5,
        period=2.0,
        transmit_every=2,
        cycles=80,
    )


@pytest.mark.benchmark(group="fleet")
def test_fleet_node_throughput(benchmark):
    """Batched-search node throughput at 4 and 8 batteries."""
    load = _sensor_load()

    def fleet4_search():
        return find_optimal_schedule_batched(
            FLEET4, load, dominance_tolerance=TOLERANCE, max_nodes=MEASURE_NODES
        )

    def fleet8_search():
        return find_optimal_schedule_batched(
            FLEET8, load, dominance_tolerance=TOLERANCE, max_nodes=MEASURE_NODES
        )

    result4 = benchmark.pedantic(
        fleet4_search, rounds=3, iterations=1, warmup_rounds=1
    )
    seconds4 = benchmark.stats.stats.min
    rate4 = result4.nodes_expanded / seconds4

    # The 8-battery side: one warmup, then the best of two timed repeats
    # (one pedantic call per test; mirrors the min-of-rounds treatment).
    fleet8_search()
    seconds8 = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        result8 = fleet8_search()
        seconds8 = min(seconds8, time.perf_counter() - start)
    rate8 = result8.nodes_expanded / seconds8

    # Both widths did exactly the budgeted amount of expansion work.
    assert result4.nodes_expanded == MEASURE_NODES
    assert result8.nodes_expanded == MEASURE_NODES

    update_bench_record(
        {
            "experiment": "fleet-scale-optimal-search",
            "load": "DCS 500 (duty-cycled sensor)",
            "max_nodes": MEASURE_NODES,
            "dominance_tolerance": TOLERANCE,
            "fleet4_batteries": "2 x B1x0.5 + 2 x B1x0.375",
            "fleet8_batteries": "4 x B1x0.5 + 4 x B1x0.375",
            "fleet4_nodes_per_sec": round(rate4, 1),
            "fleet8_nodes_per_sec": round(rate8, 1),
        }
    )
    emit(
        "Fleet extension -- batched optimal search throughput at fleet width",
        f"4-battery fleet: {rate4:10.1f} nodes/sec\n"
        f"8-battery fleet: {rate8:10.1f} nodes/sec -> BENCH_fleet.json",
    )


#: Symmetry-ratio fleets: small identical-subgroup fleets whose certified
#: searches finish quickly even with the reduction disabled.
SYM_A = BatteryParameters(capacity=1.2, c=0.166, k_prime=0.122)
SYM_B = BatteryParameters(capacity=0.9, c=0.166, k_prime=0.122)
SYM_FLEETS = {
    "4 (2+2)": [SYM_A, SYM_A, SYM_B, SYM_B],
    "4 (3+1)": [SYM_A, SYM_A, SYM_A, SYM_B],
    "8 (4+4)": [SYM_A] * 4 + [SYM_B] * 4,
}


def _symmetry_load(n_cycles: int = 20) -> Load:
    """A job/idle alternation deep enough for non-trivial fleet searches."""
    epochs = []
    for index in range(n_cycles):
        epochs.append(
            Epoch(current=0.5 if index % 2 == 0 else 0.25, duration=1.0)
        )
        epochs.append(Epoch(current=0.0, duration=0.5))
    return Load(name="fleet-deep", epochs=tuple(epochs))


@pytest.mark.benchmark(group="fleet")
def test_group_symmetry_prunes_nodes_with_identical_results():
    """Group-wise symmetry: certified node counts with the reduction on/off.

    Node counts are deterministic (no timing noise); the gated ratio is
    total nodes without the reduction over total nodes with it, and the
    invariant checked inside the benchmark is bitwise result identity --
    permuting identical batteries yields the same float trajectory, so
    pruning permuted duplicates must not move the lifetime at all.
    """
    load = _symmetry_load()
    per_fleet = {}
    with_total = without_total = 0
    for label, fleet in SYM_FLEETS.items():
        pruned = find_optimal_schedule_batched(fleet, load, max_nodes=60_000)
        full = find_optimal_schedule_batched(
            fleet, load, max_nodes=60_000, use_symmetry=False
        )
        assert pruned.complete and full.complete
        assert pruned.lifetime == full.lifetime
        assert pruned.nodes_expanded < full.nodes_expanded
        per_fleet[label] = (pruned.nodes_expanded, full.nodes_expanded)
        with_total += pruned.nodes_expanded
        without_total += full.nodes_expanded

    ratio = without_total / with_total
    assert ratio > 1.0

    update_bench_record(
        {
            "symmetry_fleets": {
                label: {"with_symmetry": with_n, "without_symmetry": without_n}
                for label, (with_n, without_n) in per_fleet.items()
            },
            "symmetry_nodes_with": with_total,
            "symmetry_nodes_without": without_total,
            "group_symmetry_nodes_ratio": round(ratio, 3),
        }
    )
    emit(
        "Fleet extension -- group-wise symmetry pruning (certified searches)",
        "\n".join(
            f"{label:8s}: {with_n:6d} nodes with symmetry, "
            f"{without_n:6d} without"
            for label, (with_n, without_n) in per_fleet.items()
        )
        + f"\nnodes ratio: {ratio:.3f} x fewer -> BENCH_fleet.json\n"
        "results bitwise identical with and without the reduction",
    )
