"""Shared fixtures and reporting helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and, in addition to timing the computation
with ``pytest-benchmark``, prints the reproduced rows next to the published
values so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
experiment runner behind EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.kibam.parameters import B1, B2
from repro.workloads.profiles import paper_loads


@pytest.fixture(scope="session")
def loads():
    """The ten test loads of the paper."""
    return paper_loads()


@pytest.fixture(scope="session")
def b1():
    return B1


@pytest.fixture(scope="session")
def b2():
    return B2


def emit(title: str, body: str) -> None:
    """Print a reproduced table with a recognizable banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
