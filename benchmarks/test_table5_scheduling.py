"""Experiment E3 (Table 5): two-battery scheduling comparison.

Regenerates the system lifetimes of two B1 batteries under the sequential,
round-robin, best-of-two and optimal schedules for all ten test loads,
together with the relative differences to round robin that the paper
reports.  The qualitative claims that must hold:

* sequential is the worst schedule on every load (negative difference),
* best-of-two equals round robin except on the alternating loads, where it
  is clearly better (about +27 % on ILs alt),
* the optimal schedule never loses and gains up to ~30 % (ILs alt) and
  ~17 % (IL` 500) over round robin.

The paper's random loads r1/r2 use unpublished job sequences, so their
absolute values are not comparable; the ordering assertions still apply.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_scheduling_table
from repro.analysis.tables import PAPER_TABLE5, table5


@pytest.mark.benchmark(group="table5")
def test_table5_scheduling(benchmark, loads):
    rows = benchmark.pedantic(lambda: table5(loads=loads), rounds=1, iterations=1)

    emit("Table 5 -- two B1 batteries under four scheduling schemes",
         render_scheduling_table(rows, "system lifetime (min), diff vs round robin (%)"))

    by_name = {row.load_name: row for row in rows}
    for name, row in by_name.items():
        # Ordering claims hold on every load, including the random ones.
        assert row.sequential <= row.round_robin + 1e-9
        assert row.round_robin <= row.best_of_two + 1e-9
        assert row.best_of_two <= row.optimal + 1e-9
        reference = PAPER_TABLE5.get(name)
        if reference is not None:
            paper_seq, paper_rr, paper_best, paper_opt = reference
            assert row.sequential == pytest.approx(paper_seq, rel=0.03)
            assert row.round_robin == pytest.approx(paper_rr, rel=0.03)
            assert row.best_of_two == pytest.approx(paper_best, rel=0.03)
            assert row.optimal == pytest.approx(paper_opt, rel=0.03)

    # The headline crossover: round robin is close to optimal on the uniform
    # loads but far from it on ILs alt, where best-of-two recovers most of
    # the gap and the optimal schedule adds a little more.
    ils_alt = by_name["ILs alt"]
    assert ils_alt.best_of_two_diff_percent > 20.0
    assert ils_alt.optimal_diff_percent > 25.0
    il_500 = by_name["IL` 500"]
    assert il_500.optimal_diff_percent > 10.0
