"""Linear priced timed automata (LPTA) with discrete-time semantics.

This subpackage is the reproduction's stand-in for Uppaal Cora (Section 3 of
the paper).  It provides:

* :mod:`repro.pta.automaton` -- locations, edges, guards, invariants,
  updates, clock resets, synchronisation labels and cost annotations;
* :mod:`repro.pta.network` -- networks of automata with binary and
  broadcast channels and global integer variables;
* :mod:`repro.pta.state` / :mod:`repro.pta.semantics` -- explicit
  discrete-time successor semantics (delay one tick or take a switch);
* :mod:`repro.pta.mcr` -- minimum-cost reachability (the Cora query used to
  generate optimal schedules) plus plain reachability and deterministic runs;
* :mod:`repro.pta.trace` -- extraction of action traces and schedules;
* :mod:`repro.pta.examples` -- the lamp/user example of Section 3.

The TA-KiBaM of Section 4 only uses integer clock bounds and integer data,
so the discrete-time semantics is exact for the models built here; see
DESIGN.md for the (documented) deviations from Uppaal's dense-time engine.
"""

from repro.pta.automaton import Location, Edge, Sync, Automaton
from repro.pta.network import Network
from repro.pta.state import NetworkState
from repro.pta.semantics import NetworkSemantics, Transition
from repro.pta.mcr import MCRResult, minimum_cost_reachability, reachable, run_deterministic
from repro.pta.trace import action_names, decisions_in_trace, trace_duration

__all__ = [
    "Location",
    "Edge",
    "Sync",
    "Automaton",
    "Network",
    "NetworkState",
    "NetworkSemantics",
    "Transition",
    "MCRResult",
    "minimum_cost_reachability",
    "reachable",
    "run_deterministic",
    "action_names",
    "decisions_in_trace",
    "trace_duration",
]
