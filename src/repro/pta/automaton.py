"""Building blocks of a (linear priced) timed automaton.

Guards, invariants, updates and cost expressions are plain Python callables
over the global variable valuation and the clock valuation; this keeps the
substrate small and lets model builders (such as the TA-KiBaM of
:mod:`repro.takibam`) capture constant tables in closures instead of
encoding them as state.

Callable signatures:

* guard / invariant: ``f(variables, clocks) -> bool``
* update: ``f(variables) -> None`` (mutates the variable dict in place; the
  semantics layer always passes a fresh copy)
* cost rate / edge cost: an ``int``/``float`` or ``f(variables) -> number``

Clocks are identified by name and advance in integer ticks.  Every clock
name must be unique within the network, so builders typically suffix clock
names with the owning automaton's identifier.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, MutableMapping, Optional, Sequence, Tuple, Union

GuardFn = Callable[[Mapping[str, int], Mapping[str, int]], bool]
UpdateFn = Callable[[MutableMapping[str, int]], None]
CostSpec = Union[int, float, Callable[[Mapping[str, int]], float]]


def always_true(_variables: Mapping[str, int], _clocks: Mapping[str, int]) -> bool:
    """The trivial guard/invariant."""
    return True


def no_update(_variables: MutableMapping[str, int]) -> None:
    """The trivial update."""


@dataclasses.dataclass(frozen=True)
class Sync:
    """Synchronisation label of an edge.

    Attributes:
        channel: channel name.
        is_send: ``True`` for the ``!`` (send) side, ``False`` for ``?``.
    """

    channel: str
    is_send: bool

    @classmethod
    def send(cls, channel: str) -> "Sync":
        return cls(channel=channel, is_send=True)

    @classmethod
    def receive(cls, channel: str) -> "Sync":
        return cls(channel=channel, is_send=False)

    def __str__(self) -> str:
        return f"{self.channel}{'!' if self.is_send else '?'}"


@dataclasses.dataclass(frozen=True)
class Location:
    """A location (control state) of an automaton.

    Attributes:
        name: location name, unique within the automaton.
        invariant: predicate that must keep holding for time to pass while
            the automaton occupies this location.
        cost_rate: cost accumulated per tick spent in this location.
        committed: when any automaton of the network is in a committed
            location, time may not pass and the next switch must leave a
            committed location.
        urgent: time may not pass while this location is occupied (but
            unlike ``committed`` it does not constrain which switch fires).
    """

    name: str
    invariant: GuardFn = always_true
    cost_rate: CostSpec = 0
    committed: bool = False
    urgent: bool = False


@dataclasses.dataclass(frozen=True)
class Edge:
    """A switch between two locations of one automaton.

    Attributes:
        source: name of the source location.
        target: name of the target location.
        guard: enabling condition over variables and clocks.
        sync: optional synchronisation label (``None`` for internal edges).
        update: variable update applied when the switch fires.
        clock_resets: clocks reset to zero when the switch fires.
        cost: cost added when the switch fires.
        name: optional label used in traces (defaults to source->target).
    """

    source: str
    target: str
    guard: GuardFn = always_true
    sync: Optional[Sync] = None
    update: UpdateFn = no_update
    clock_resets: Tuple[str, ...] = ()
    cost: CostSpec = 0
    name: str = ""

    def label(self, automaton_name: str) -> str:
        """Human readable label for traces."""
        base = self.name or f"{self.source}->{self.target}"
        sync = f" {self.sync}" if self.sync else ""
        return f"{automaton_name}.{base}{sync}"


@dataclasses.dataclass(frozen=True)
class Automaton:
    """One timed automaton: locations, clocks and edges.

    Attributes:
        name: automaton name, unique within the network.
        locations: the automaton's locations (the first entries' names must
            include ``initial_location``).
        initial_location: name of the initial location.
        clocks: names of the clocks owned by this automaton (must be unique
            across the whole network).
        edges: the switches.
    """

    name: str
    locations: Tuple[Location, ...]
    initial_location: str
    clocks: Tuple[str, ...] = ()
    edges: Tuple[Edge, ...] = ()

    def __post_init__(self) -> None:
        names = [location.name for location in self.locations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate location names in automaton {self.name!r}")
        if self.initial_location not in names:
            raise ValueError(
                f"initial location {self.initial_location!r} is not a location of {self.name!r}"
            )
        known = set(names)
        for edge in self.edges:
            if edge.source not in known or edge.target not in known:
                raise ValueError(
                    f"edge {edge.source!r}->{edge.target!r} of {self.name!r} refers to "
                    "an unknown location"
                )
            for clock in edge.clock_resets:
                if clock not in self.clocks:
                    raise ValueError(
                        f"edge {edge.source!r}->{edge.target!r} of {self.name!r} resets "
                        f"clock {clock!r}, which the automaton does not own"
                    )

    def location(self, name: str) -> Location:
        """Look up a location by name."""
        for location in self.locations:
            if location.name == name:
                return location
        raise KeyError(f"automaton {self.name!r} has no location {name!r}")

    def edges_from(self, location_name: str) -> Tuple[Edge, ...]:
        """All edges leaving the given location."""
        return tuple(edge for edge in self.edges if edge.source == location_name)


def evaluate_cost(spec: CostSpec, variables: Mapping[str, int]) -> float:
    """Evaluate a cost specification (constant or callable) on a valuation."""
    if callable(spec):
        return float(spec(variables))
    return float(spec)
