"""Helpers for inspecting transition traces produced by the engines."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.pta.semantics import Transition


def action_names(trace: Sequence[Transition]) -> List[str]:
    """The labels of the non-delay transitions of a trace, in order."""
    return [transition.label for transition in trace if not transition.is_delay]


def trace_duration(trace: Sequence[Transition]) -> int:
    """Number of ticks that pass along a trace."""
    return sum(1 for transition in trace if transition.is_delay)


def decisions_in_trace(
    trace: Sequence[Transition],
    is_decision: Callable[[Transition], bool],
) -> List[Tuple[int, Transition]]:
    """The decision transitions of a trace with the tick at which they fire.

    ``is_decision`` selects the relevant transitions (for the TA-KiBaM these
    are the scheduler's ``go_on`` synchronisations); the returned tick is
    the elapsed time when the decision is taken.
    """
    decisions: List[Tuple[int, Transition]] = []
    elapsed = 0
    for transition in trace:
        if transition.is_delay:
            elapsed += 1
        elif is_decision(transition):
            decisions.append((elapsed, transition))
    return decisions


def final_state_time(trace: Sequence[Transition]) -> int:
    """Elapsed ticks at the end of the trace (0 for an empty trace)."""
    return trace[-1].state.time if trace else 0
