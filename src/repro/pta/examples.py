"""The lamp / user example of Section 3 of the paper.

The example is of no relevance to battery scheduling, but it exercises every
ingredient of the substrate (channels, clocks, guards, invariants, committed
behaviour, costs) and therefore doubles as living documentation and as a
test fixture.
"""

from __future__ import annotations

from repro.pta.automaton import Automaton, Edge, Location, Sync
from repro.pta.network import Network


def lamp_network(presses: int = 3, press_period: int = 3) -> Network:
    """The manual lamp of Figure 2: off -> low -> bright, driven by a user.

    Args:
        presses: how many times the user presses the button before idling
            forever.
        press_period: ticks between two presses of the user.
    """
    lamp = Automaton(
        name="lamp",
        locations=(
            Location(name="off"),
            Location(name="low"),
            Location(name="bright"),
        ),
        initial_location="off",
        clocks=("y",),
        edges=(
            Edge(
                source="off",
                target="low",
                sync=Sync.receive("press"),
                clock_resets=("y",),
                name="switch_on",
            ),
            Edge(
                source="low",
                target="off",
                guard=lambda v, c: c["y"] >= 5,
                sync=Sync.receive("press"),
                name="switch_off_slow",
            ),
            Edge(
                source="low",
                target="bright",
                guard=lambda v, c: c["y"] < 5,
                sync=Sync.receive("press"),
                name="brighten",
            ),
            Edge(
                source="bright",
                target="off",
                sync=Sync.receive("press"),
                name="switch_off",
            ),
        ),
    )

    def press_update(variables) -> None:
        variables["presses_left"] -= 1

    user = Automaton(
        name="user",
        locations=(
            Location(name="idle"),
        ),
        initial_location="idle",
        clocks=("u",),
        edges=(
            Edge(
                source="idle",
                target="idle",
                guard=lambda v, c: v["presses_left"] > 0 and c["u"] >= press_period,
                sync=Sync.send("press"),
                update=press_update,
                clock_resets=("u",),
                name="press",
            ),
        ),
    )
    return Network(
        automata=(lamp, user),
        initial_variables={"presses_left": presses},
    )


def automatic_lamp_network(switch_on_cost: int = 50, presses: int = 2, press_period: int = 3) -> Network:
    """The automatic lamp with costs of Figure 4.

    The lamp switches itself off after 10 ticks; keeping it on costs 10 per
    tick in ``low`` and 20 per tick in ``bright``, and switching it on costs
    ``switch_on_cost``.  The ``press`` channel is a broadcast channel so the
    user can press the button even when nobody listens (Section 3.1).

    Unlike the manual lamp, the user here presses *exactly* every
    ``press_period`` ticks (enforced by an invariant) until the presses run
    out.  This keeps the priced state space finite along zero-cost paths,
    which the minimum-cost reachability engine needs: with a lazy user the
    cheapest behaviour would be to wait forever and never switch the lamp on.
    """
    lamp = Automaton(
        name="lamp",
        locations=(
            Location(name="off"),
            Location(
                name="low",
                invariant=lambda v, c: c["y"] <= 10,
                cost_rate=10,
            ),
            Location(
                name="bright",
                invariant=lambda v, c: c["y"] <= 10,
                cost_rate=20,
            ),
        ),
        initial_location="off",
        clocks=("y",),
        edges=(
            Edge(
                source="off",
                target="low",
                sync=Sync.receive("press"),
                clock_resets=("y",),
                cost=switch_on_cost,
                name="switch_on",
            ),
            Edge(
                source="low",
                target="bright",
                guard=lambda v, c: c["y"] < 5,
                sync=Sync.receive("press"),
                name="brighten",
            ),
            Edge(
                source="low",
                target="off",
                guard=lambda v, c: c["y"] >= 10,
                name="auto_off_low",
            ),
            Edge(
                source="bright",
                target="off",
                guard=lambda v, c: c["y"] >= 10,
                name="auto_off_bright",
            ),
        ),
    )

    def press_update(variables) -> None:
        variables["presses_left"] -= 1

    user = Automaton(
        name="user",
        locations=(
            Location(
                name="idle",
                # Time may only pass while the next press is not yet due (or
                # all presses have been used up).
                invariant=lambda v, c: v["presses_left"] == 0 or c["u"] <= press_period,
            ),
        ),
        initial_location="idle",
        clocks=("u",),
        edges=(
            Edge(
                source="idle",
                target="idle",
                guard=lambda v, c: v["presses_left"] > 0 and c["u"] >= press_period,
                sync=Sync.send("press"),
                update=press_update,
                clock_resets=("u",),
                name="press",
            ),
        ),
    )
    return Network(
        automata=(lamp, user),
        initial_variables={"presses_left": presses},
        broadcast_channels=frozenset({"press"}),
    )
