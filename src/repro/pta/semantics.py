"""Discrete-time successor semantics for networks of priced timed automata.

The semantics offers two kinds of transitions from a state:

* **action transitions**: an internal edge, a binary synchronisation (one
  sender, one receiver on the same channel) or a broadcast synchronisation
  (one sender plus every automaton with an enabled receiving edge); the
  edge guards must hold, updates are applied (sender first), clocks are
  reset, and edge costs are added;
* **delay transitions**: one tick passes; every clock advances by one, the
  cost grows by the sum of the location cost rates, and the transition is
  only allowed when no committed or urgent location is occupied and every
  location invariant still holds after the delay.

Committed locations are handled as in Uppaal: while any automaton occupies
a committed location, delays are forbidden and the next action must involve
at least one committed location.

Deviation from Uppaal (documented in DESIGN.md): invariants only restrict
delays, not the ability to enter a location via an action.  The TA-KiBaM
uses invariants solely to force timely draws/recoveries, for which this
weaker interpretation is equivalent.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.pta.automaton import Automaton, Edge, evaluate_cost
from repro.pta.network import Network
from repro.pta.state import NetworkState

#: Safety cap on the number of receiver combinations explored for a single
#: broadcast sender (combinatorial blow-ups indicate a modelling error).
_MAX_BROADCAST_COMBINATIONS = 64


@dataclasses.dataclass(frozen=True)
class Transition:
    """One transition of the semantics: the action label and the successor."""

    label: str
    state: NetworkState
    is_delay: bool = False
    #: Indices of the automata that took part in the action (empty for delays).
    participants: Tuple[int, ...] = ()


class NetworkSemantics:
    """Explicit-state, discrete-time semantics of a network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._clock_names = network.clock_names
        self._variable_names = network.variable_names
        # Pre-index locations by (automaton index, name) for fast lookup.
        self._locations: Dict[Tuple[int, str], object] = {}
        for index, automaton in enumerate(network.automata):
            for location in automaton.locations:
                self._locations[(index, location.name)] = location

    # ------------------------------------------------------------------ #
    # state construction
    # ------------------------------------------------------------------ #
    def initial_state(self) -> NetworkState:
        """The initial configuration of the network."""
        variables = dict(self.network.initial_variables)
        clocks = {name: 0 for name in self._clock_names}
        return NetworkState(
            locations=tuple(a.initial_location for a in self.network.automata),
            clocks=tuple(clocks[name] for name in self._clock_names),
            variables=tuple(variables[name] for name in self._variable_names),
            clock_names=self._clock_names,
            variable_names=self._variable_names,
            cost=0.0,
            time=0,
        )

    # ------------------------------------------------------------------ #
    # transition enumeration
    # ------------------------------------------------------------------ #
    def successors(self, state: NetworkState) -> List[Transition]:
        """All transitions enabled in ``state`` (actions first, then delay)."""
        transitions = list(self.action_successors(state))
        delay = self.delay_successor(state)
        if delay is not None:
            transitions.append(delay)
        return transitions

    def action_successors(self, state: NetworkState) -> Iterator[Transition]:
        """Enabled action transitions, honouring committed locations."""
        variables = state.variable_valuation()
        clocks = state.clock_valuation()
        committed = self._committed_automata(state)

        # Internal edges.
        for index, automaton in enumerate(self.network.automata):
            for edge in automaton.edges_from(state.locations[index]):
                if edge.sync is not None:
                    continue
                if committed and index not in committed:
                    continue
                if not edge.guard(variables, clocks):
                    continue
                yield self._fire(state, [(index, edge)])

        # Synchronisations.
        for channel, users in self.network.channels().items():
            is_broadcast = channel in self.network.broadcast_channels
            senders = self._enabled_sync_edges(state, variables, clocks, channel, is_send=True)
            if not senders:
                continue
            receivers = self._enabled_sync_edges(state, variables, clocks, channel, is_send=False)
            for sender_index, sender_edge in senders:
                if is_broadcast:
                    yield from self._broadcast_transitions(
                        state, committed, sender_index, sender_edge, receivers
                    )
                else:
                    for receiver_index, receiver_edge in receivers:
                        if receiver_index == sender_index:
                            continue
                        if committed and sender_index not in committed and receiver_index not in committed:
                            continue
                        yield self._fire(
                            state, [(sender_index, sender_edge), (receiver_index, receiver_edge)]
                        )

    def delay_successor(self, state: NetworkState) -> Optional[Transition]:
        """The one-tick delay transition, or ``None`` when delay is blocked."""
        variables = state.variable_valuation()
        clocks = state.clock_valuation()
        cost_rate = 0.0
        for index, automaton in enumerate(self.network.automata):
            location = self._locations[(index, state.locations[index])]
            if location.committed or location.urgent:
                return None
            cost_rate += evaluate_cost(location.cost_rate, variables)
        delayed_clocks = {name: value + 1 for name, value in clocks.items()}
        for index, automaton in enumerate(self.network.automata):
            location = self._locations[(index, state.locations[index])]
            if not location.invariant(variables, delayed_clocks):
                return None
        successor = state.with_updates(
            locations=state.locations,
            clocks=delayed_clocks,
            variables=variables,
            cost=state.cost + cost_rate,
            time=state.time + 1,
        )
        return Transition(label="delay", state=successor, is_delay=True)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _committed_automata(self, state: NetworkState) -> Tuple[int, ...]:
        return tuple(
            index
            for index in range(len(self.network.automata))
            if self._locations[(index, state.locations[index])].committed
        )

    def _enabled_sync_edges(
        self,
        state: NetworkState,
        variables: Dict[str, int],
        clocks: Dict[str, int],
        channel: str,
        is_send: bool,
    ) -> List[Tuple[int, Edge]]:
        enabled: List[Tuple[int, Edge]] = []
        for index, automaton in enumerate(self.network.automata):
            for edge in automaton.edges_from(state.locations[index]):
                if edge.sync is None or edge.sync.channel != channel:
                    continue
                if edge.sync.is_send != is_send:
                    continue
                if edge.guard(variables, clocks):
                    enabled.append((index, edge))
        return enabled

    def _broadcast_transitions(
        self,
        state: NetworkState,
        committed: Tuple[int, ...],
        sender_index: int,
        sender_edge: Edge,
        receivers: Sequence[Tuple[int, Edge]],
    ) -> Iterator[Transition]:
        """All broadcast firings for one enabled sender."""
        by_automaton: Dict[int, List[Edge]] = {}
        for index, edge in receivers:
            if index != sender_index:
                by_automaton.setdefault(index, []).append(edge)
        participant_indices = sorted(by_automaton)
        if committed:
            involved = set(participant_indices) | {sender_index}
            if not involved & set(committed):
                return
        choice_lists = [by_automaton[index] for index in participant_indices]
        combinations = itertools.product(*choice_lists) if choice_lists else [()]
        for count, combination in enumerate(combinations):
            if count >= _MAX_BROADCAST_COMBINATIONS:
                raise RuntimeError(
                    f"broadcast on channel {sender_edge.sync.channel!r} has too many "
                    "receiver combinations; simplify the model"
                )
            participants = [(sender_index, sender_edge)]
            participants.extend(zip(participant_indices, combination))
            yield self._fire(state, participants)

    def _fire(
        self, state: NetworkState, participants: Sequence[Tuple[int, Edge]]
    ) -> Transition:
        """Apply a (multi-)edge firing and build the successor transition."""
        variables = state.variable_valuation()
        clocks = state.clock_valuation()
        locations = list(state.locations)
        cost = state.cost
        labels = []
        for index, edge in participants:
            edge.update(variables)
            for clock in edge.clock_resets:
                clocks[clock] = 0
            locations[index] = edge.target
            cost += evaluate_cost(edge.cost, variables)
            labels.append(edge.label(self.network.automata[index].name))
        successor = state.with_updates(
            locations=tuple(locations),
            clocks=clocks,
            variables=variables,
            cost=cost,
            time=state.time,
        )
        return Transition(
            label=" | ".join(labels),
            state=successor,
            is_delay=False,
            participants=tuple(index for index, _ in participants),
        )
