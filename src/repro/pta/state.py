"""Explicit network states.

A state records, for every automaton, its current location, plus the values
of all clocks, the global variable valuation, the accumulated cost and the
elapsed time (in ticks).  States are immutable and hashable so that search
algorithms can deduplicate them; cost and time are excluded from equality
because two states that differ only in accumulated cost represent the same
configuration for reachability purposes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple


@dataclasses.dataclass(frozen=True)
class NetworkState:
    """One configuration of a network of priced timed automata.

    Attributes:
        locations: per-automaton location names (network order).
        clocks: clock values in ticks, aligned with ``clock_names``.
        variables: variable values, aligned with ``variable_names``.
        clock_names: clock name layout (shared tuple).
        variable_names: variable name layout (shared tuple).
        cost: accumulated cost along the path that reached this state.
        time: elapsed time in ticks along that path.
    """

    locations: Tuple[str, ...]
    clocks: Tuple[int, ...]
    variables: Tuple[int, ...]
    clock_names: Tuple[str, ...]
    variable_names: Tuple[str, ...]
    cost: float = 0.0
    time: int = 0

    def configuration(self) -> Tuple:
        """The hashable part of the state (without cost and time)."""
        return (self.locations, self.clocks, self.variables)

    def clock_valuation(self) -> Dict[str, int]:
        """Clock values as a name-indexed dictionary."""
        return dict(zip(self.clock_names, self.clocks))

    def variable_valuation(self) -> Dict[str, int]:
        """Variable values as a name-indexed dictionary."""
        return dict(zip(self.variable_names, self.variables))

    def value(self, name: str) -> int:
        """Value of one global variable."""
        try:
            index = self.variable_names.index(name)
        except ValueError:
            raise KeyError(f"state has no variable named {name!r}") from None
        return self.variables[index]

    def location_of(self, automaton_name: str, network) -> str:
        """Location of one automaton (requires the owning network)."""
        return self.locations[network.automaton_index(automaton_name)]

    def with_updates(
        self,
        locations: Tuple[str, ...],
        clocks: Mapping[str, int],
        variables: Mapping[str, int],
        cost: float,
        time: int,
    ) -> "NetworkState":
        """Build a successor state reusing this state's name layout."""
        return NetworkState(
            locations=locations,
            clocks=tuple(clocks[name] for name in self.clock_names),
            variables=tuple(variables[name] for name in self.variable_names),
            clock_names=self.clock_names,
            variable_names=self.variable_names,
            cost=cost,
            time=time,
        )
