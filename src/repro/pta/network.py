"""Networks of priced timed automata.

A network is a set of automata running in parallel, a global integer
variable valuation and a set of channels.  Channels are binary by default
(one sender synchronises with exactly one receiver); channels listed in
``broadcast_channels`` follow broadcast semantics (the sender synchronises
with every automaton that currently has an enabled receiving edge, possibly
none).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.pta.automaton import Automaton


@dataclasses.dataclass(frozen=True)
class Network:
    """A network of timed automata with shared integer variables.

    Attributes:
        automata: the component automata, in a fixed order.
        initial_variables: initial valuation of the global variables.
        broadcast_channels: names of the channels with broadcast semantics.
    """

    automata: Tuple[Automaton, ...]
    initial_variables: Mapping[str, int] = dataclasses.field(default_factory=dict)
    broadcast_channels: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.automata:
            raise ValueError("a network needs at least one automaton")
        names = [automaton.name for automaton in self.automata]
        if len(set(names)) != len(names):
            raise ValueError("automaton names must be unique within a network")
        clocks = [clock for automaton in self.automata for clock in automaton.clocks]
        if len(set(clocks)) != len(clocks):
            raise ValueError("clock names must be unique across the network")
        # Normalise the variable mapping into a plain dict so that the
        # semantics layer can copy it cheaply.
        object.__setattr__(self, "initial_variables", dict(self.initial_variables))
        object.__setattr__(self, "broadcast_channels", frozenset(self.broadcast_channels))

    @property
    def clock_names(self) -> Tuple[str, ...]:
        """All clock names of the network, in automaton order."""
        return tuple(clock for automaton in self.automata for clock in automaton.clocks)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """All global variable names, sorted for a stable state layout."""
        return tuple(sorted(self.initial_variables))

    def automaton_index(self, name: str) -> int:
        """Index of an automaton by name."""
        for index, automaton in enumerate(self.automata):
            if automaton.name == name:
                return index
        raise KeyError(f"network has no automaton named {name!r}")

    def channels(self) -> Dict[str, Tuple[int, ...]]:
        """Map from channel name to the indices of automata that use it."""
        users: Dict[str, set] = {}
        for index, automaton in enumerate(self.automata):
            for edge in automaton.edges:
                if edge.sync is not None:
                    users.setdefault(edge.sync.channel, set()).add(index)
        return {channel: tuple(sorted(indices)) for channel, indices in users.items()}


def make_network(
    automata: Iterable[Automaton],
    initial_variables: Mapping[str, int],
    broadcast_channels: Iterable[str] = (),
) -> Network:
    """Convenience constructor mirroring :class:`Network` with iterables."""
    return Network(
        automata=tuple(automata),
        initial_variables=dict(initial_variables),
        broadcast_channels=frozenset(broadcast_channels),
    )
