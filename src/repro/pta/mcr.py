"""Reachability engines on top of the discrete-time semantics.

Three queries are provided:

* :func:`minimum_cost_reachability` -- the Cora query: find a path from the
  initial state to a goal state with minimal accumulated cost (uniform-cost
  search / Dijkstra over the explicit state graph);
* :func:`reachable` -- plain reachability (used for sanity checks and the
  lamp example of Section 3);
* :func:`run_deterministic` -- execute the network with an *eager*
  deterministic strategy (actions before delays), resolving any remaining
  nondeterminism through a caller-supplied chooser.  This is how the
  validation experiments drive the TA-KiBaM with a fixed scheduling policy.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.pta.semantics import NetworkSemantics, Transition
from repro.pta.state import NetworkState

GoalFn = Callable[[NetworkState], bool]
ChooserFn = Callable[[NetworkState, List[Transition]], int]


@dataclasses.dataclass(frozen=True)
class MCRResult:
    """Result of a minimum-cost reachability query.

    Attributes:
        found: whether a goal state was reached.
        cost: cost of the cheapest path to a goal state (``inf`` otherwise).
        goal_state: the goal state that was reached, if any.
        trace: the transitions of the cheapest path, in order.
        states_explored: number of distinct configurations expanded.
        truncated: ``True`` when the search stopped because ``max_states``
            was hit before the goal was proven (un)reachable.
    """

    found: bool
    cost: float
    goal_state: Optional[NetworkState]
    trace: Tuple[Transition, ...]
    states_explored: int
    truncated: bool = False


def minimum_cost_reachability(
    semantics: NetworkSemantics,
    goal: GoalFn,
    max_states: Optional[int] = None,
) -> MCRResult:
    """Find a minimum-cost path from the initial state to a goal state.

    This is the query the paper runs in Uppaal Cora (``A[] not max.done``
    with cost-optimal counterexample generation): the returned trace is the
    cost-optimal schedule.
    """
    initial = semantics.initial_state()
    counter = itertools.count()
    frontier: List[Tuple[float, int, NetworkState]] = [(initial.cost, next(counter), initial)]
    best_cost: Dict[Tuple, float] = {initial.configuration(): initial.cost}
    parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[Transition]]] = {
        initial.configuration(): (None, None)
    }
    explored = 0

    while frontier:
        cost, _, state = heapq.heappop(frontier)
        configuration = state.configuration()
        if cost > best_cost.get(configuration, float("inf")):
            continue
        if goal(state):
            return MCRResult(
                found=True,
                cost=cost,
                goal_state=state,
                trace=_reconstruct(parents, configuration),
                states_explored=explored,
            )
        explored += 1
        if max_states is not None and explored > max_states:
            return MCRResult(
                found=False,
                cost=float("inf"),
                goal_state=None,
                trace=(),
                states_explored=explored,
                truncated=True,
            )
        for transition in semantics.successors(state):
            successor = transition.state
            successor_configuration = successor.configuration()
            if successor.cost < best_cost.get(successor_configuration, float("inf")):
                best_cost[successor_configuration] = successor.cost
                parents[successor_configuration] = (configuration, transition)
                heapq.heappush(frontier, (successor.cost, next(counter), successor))

    return MCRResult(
        found=False,
        cost=float("inf"),
        goal_state=None,
        trace=(),
        states_explored=explored,
    )


def reachable(
    semantics: NetworkSemantics,
    goal: GoalFn,
    max_states: Optional[int] = None,
) -> MCRResult:
    """Plain reachability: like MCR but ignores costs (breadth-first order)."""
    initial = semantics.initial_state()
    queue: List[NetworkState] = [initial]
    seen = {initial.configuration()}
    parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[Transition]]] = {
        initial.configuration(): (None, None)
    }
    explored = 0
    head = 0
    while head < len(queue):
        state = queue[head]
        head += 1
        if goal(state):
            return MCRResult(
                found=True,
                cost=state.cost,
                goal_state=state,
                trace=_reconstruct(parents, state.configuration()),
                states_explored=explored,
            )
        explored += 1
        if max_states is not None and explored > max_states:
            return MCRResult(
                found=False,
                cost=float("inf"),
                goal_state=None,
                trace=(),
                states_explored=explored,
                truncated=True,
            )
        for transition in semantics.successors(state):
            configuration = transition.state.configuration()
            if configuration not in seen:
                seen.add(configuration)
                parents[configuration] = (state.configuration(), transition)
                queue.append(transition.state)
    return MCRResult(
        found=False, cost=float("inf"), goal_state=None, trace=(), states_explored=explored
    )


def run_deterministic(
    semantics: NetworkSemantics,
    goal: GoalFn,
    chooser: Optional[ChooserFn] = None,
    max_steps: int = 10_000_000,
) -> MCRResult:
    """Execute the network eagerly until a goal state or a deadlock.

    At every step the enabled action transitions are preferred over the
    delay transition (eager semantics, which matches the dKiBaM's behaviour
    of drawing charge and recovering exactly when the corresponding clock
    bound is reached).  When several action transitions are enabled the
    ``chooser`` picks one; without a chooser the first is taken.
    """
    state = semantics.initial_state()
    trace: List[Transition] = []
    for _ in range(max_steps):
        if goal(state):
            return MCRResult(
                found=True,
                cost=state.cost,
                goal_state=state,
                trace=tuple(trace),
                states_explored=len(trace),
            )
        actions = list(semantics.action_successors(state))
        if actions:
            if len(actions) == 1 or chooser is None:
                transition = actions[0]
            else:
                index = chooser(state, actions)
                if not 0 <= index < len(actions):
                    raise ValueError(f"chooser returned invalid index {index}")
                transition = actions[index]
        else:
            delay = semantics.delay_successor(state)
            if delay is None:
                return MCRResult(
                    found=False,
                    cost=state.cost,
                    goal_state=state,
                    trace=tuple(trace),
                    states_explored=len(trace),
                )
            transition = delay
        trace.append(transition)
        state = transition.state
    raise RuntimeError(f"deterministic run did not terminate within {max_steps} steps")


def _reconstruct(
    parents: Dict[Tuple, Tuple[Optional[Tuple], Optional[Transition]]],
    goal_configuration: Tuple,
) -> Tuple[Transition, ...]:
    """Rebuild the transition sequence leading to a configuration."""
    transitions: List[Transition] = []
    configuration: Optional[Tuple] = goal_configuration
    while configuration is not None:
        parent, transition = parents[configuration]
        if transition is not None:
            transitions.append(transition)
        configuration = parent
    transitions.reverse()
    return tuple(transitions)
