"""Chunked multiprocessing executor for non-vectorizable workloads.

The analytical and discrete battery models scale across *array lanes* (see
:mod:`repro.engine.batch`); what remains Python-loop heavy -- chiefly the
optimal branch-and-bound scheduler, plus scalar golden-reference
verification sweeps -- scales across *cores* instead.  This module provides
the small amount of plumbing those need: an order-preserving parallel map
over chunks of work items, degrading gracefully to an in-process loop when
only one worker is requested (or available), so callers never need two code
paths.

Worker callables must be picklable (module-level functions);
:func:`simulate_lifetimes_chunk` and :func:`optimal_lifetimes_chunk` are
ready-made workers for the two workloads named above.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.battery import make_battery_models
from repro.core.simulator import MultiBatterySimulator
from repro.kibam.parameters import BatteryParameters
from repro.workloads.load import Load

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """Number of workers to use by default: the visible CPU count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return multiprocessing.cpu_count()


def _chunk_indices(n_items: int, chunk_size: int) -> List[Tuple[int, int]]:
    return [(start, min(start + chunk_size, n_items)) for start in range(0, n_items, chunk_size)]


def run_chunked(
    worker: Callable[[Sequence[T]], Sequence[R]],
    items: Sequence[T],
    n_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Apply ``worker`` to chunks of ``items`` across processes, in order.

    Args:
        worker: picklable callable mapping a chunk (a sequence of items) to
            a sequence of per-item results of the same length.
        items: the work items.
        n_workers: process count; ``None`` uses the visible CPU count and
            ``1`` (or a single chunk) runs inline without spawning anything.
        chunk_size: items per chunk; defaults to an even split across
            workers.

    Returns:
        The per-item results in the original item order.
    """
    items = list(items)
    if not items:
        return []
    workers = default_worker_count() if n_workers is None else max(1, n_workers)
    if chunk_size is None:
        chunk_size = max(1, (len(items) + workers - 1) // workers)
    bounds = _chunk_indices(len(items), chunk_size)

    # Chunks are sliced lazily, one per dispatch, instead of materializing
    # every chunk list up front (which doubled the peak reference count of
    # large load sets and held all chunks alive for the whole map).  The
    # inline path therefore keeps at most one chunk extant; the pool path
    # feeds ``imap`` from a generator, which preserves submission order.
    def sliced():
        for start, stop in bounds:
            yield items[start:stop]

    results: List[R] = []

    def collect(chunk_results) -> List[R]:
        for (start, stop), chunk_result in zip(bounds, chunk_results):
            if len(chunk_result) != stop - start:
                raise ValueError(
                    f"worker returned {len(chunk_result)} results for a "
                    f"chunk of {stop - start} items"
                )
            results.extend(chunk_result)
        return results

    if workers == 1 or len(bounds) == 1:
        return collect(worker(chunk) for chunk in sliced())
    with multiprocessing.Pool(processes=min(workers, len(bounds))) as pool:
        return collect(pool.imap(worker, sliced()))


class ChunkedExecutor:
    """A reusable order-preserving chunked parallel map.

    A thin object wrapper over :func:`run_chunked` that pins worker and
    chunk-size settings once, for callers that map several workers over
    several item batches with one configuration.
    """

    def __init__(
        self, n_workers: Optional[int] = None, chunk_size: Optional[int] = None
    ) -> None:
        self.n_workers = n_workers
        self.chunk_size = chunk_size

    def map(
        self, worker: Callable[[Sequence[T]], Sequence[R]], items: Sequence[T]
    ) -> List[R]:
        return run_chunked(
            worker, items, n_workers=self.n_workers, chunk_size=self.chunk_size
        )


# ---------------------------------------------------------------------- #
# ready-made picklable workers (bind the fixed arguments with
# ``functools.partial``, which pickles fine for module-level functions)
# ---------------------------------------------------------------------- #
def simulate_lifetimes_chunk(
    loads: Sequence[Load],
    params: Sequence[BatteryParameters],
    policy_name: str,
    backend: str = "analytical",
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> List[Optional[float]]:
    """Worker: scalar policy lifetimes for a chunk of loads.

    Returns one lifetime per load (``None`` when the batteries survive).
    Used for scalar golden-reference sweeps (``engine="scalar"`` with
    ``n_workers > 1``); since the dKiBaM tick loop was vectorized, the
    batch engine covers discrete sweeps directly.
    """
    from repro.core.policies import make_policy

    models = make_battery_models(
        params, backend=backend, time_step=time_step, charge_unit=charge_unit
    )
    simulator = MultiBatterySimulator(models)
    policy = make_policy(policy_name)
    return [simulator.run(load, policy).lifetime for load in loads]


def optimal_schedules_chunk(
    loads: Sequence[Load],
    params: Sequence[BatteryParameters],
    backend: str = "analytical",
    max_nodes: Optional[int] = 20_000,
    dominance_tolerance: float = 0.005,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
):
    """Worker: full scalar optimal-search results for a chunk of loads.

    The scalar depth-first search doubles as the fallback for batched
    best-first searches that hit their node cap (depth-first drives its
    incumbent much deeper under the same budget), so the full
    :class:`repro.core.optimal.OptimalScheduleResult` objects are returned
    -- a caller replacing a capped result must replace its lifetime,
    decision count and residual charge *together*.
    """
    from repro.core.optimal import find_optimal_schedule

    return [
        find_optimal_schedule(
            params,
            load,
            backend=backend,
            time_step=time_step,
            charge_unit=charge_unit,
            dominance_tolerance=dominance_tolerance,
            max_nodes=max_nodes,
        )
        for load in loads
    ]


def optimal_lifetimes_chunk(
    loads: Sequence[Load],
    params: Sequence[BatteryParameters],
    backend: str = "analytical",
    max_nodes: Optional[int] = 20_000,
    dominance_tolerance: float = 0.005,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> List[float]:
    """Worker: optimal-scheduler lifetimes for a chunk of loads.

    Accepts the full set of solver settings -- including the dKiBaM
    discretization -- so multiprocessing callers can bind them into the
    partial; a worker that silently fell back to the default 0.01 grid
    while the inline path honored the caller's grid was a real (and
    regression-tested) parity bug.
    """
    return [
        result.lifetime
        for result in optimal_schedules_chunk(
            loads,
            params,
            backend=backend,
            max_nodes=max_nodes,
            dominance_tolerance=dominance_tolerance,
            time_step=time_step,
            charge_unit=charge_unit,
        )
    ]
