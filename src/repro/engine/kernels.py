"""Vectorized NumPy kernels for the analytical KiBaM and the dKiBaM.

These kernels are the array-shaped counterpart of
:mod:`repro.kibam.analytical` and :func:`repro.kibam.lifetime.time_to_empty`.
A *batch state* is an array of shape ``(..., n_batteries, 2)`` whose last
axis holds the transformed coordinates ``(gamma, delta)`` of Section 2.2 of
the paper; the kernels advance every battery of every scenario in one NumPy
call instead of one Python call per battery per step.

Floating-point parity with the scalar path matters here: the scheduling
policies break ties on exact float equality of the available charge, so the
kernels evaluate the closed-form solutions with exactly the same operation
order as the scalar code.  The only intentional difference is the root
finder for the empty-crossing time: the scalar path uses Brent's method
(``xtol=rtol=1e-12``) while the batch path uses a fixed-point vectorized
bisection, both of which locate the crossing to well below 1e-10 minutes.

The *discrete* model (``model="discrete"``, Section 2.3's dKiBaM) is carried
by :class:`DiscreteKernelParams`: integer charge/height-unit counts, the
per-mille emptiness coefficients and the precomputed equation-(6) recovery
tables, one row per distinct battery parameter set, in either the shared
``(n_batteries,)`` or the per-scenario ``(n_scenarios, n_batteries)`` layout
of :class:`KernelParams`.  Here the parity bar is *exact*: the batch state
is integer charge units stepped by the same Bresenham draw accumulator as
:class:`repro.kibam.discrete.DiscreteKibam`, so batch and scalar dKiBaM
agree unit for unit and tick for tick, not merely to a float tolerance.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.kibam.discrete import DiscreteKibam
from repro.kibam.parameters import BatteryParameters

#: Index of gamma (total charge) in the last axis of a batch state array.
GAMMA = 0
#: Index of delta (well height difference) in the last axis of a batch state.
DELTA = 1

#: Absolute accuracy (minutes) to which the crossing time is located; the
#: scalar Brent solver runs at ``xtol=1e-12``, so both paths sit orders of
#: magnitude below the 1e-9 equivalence budget.
_ROOT_TOL = 1e-12
#: Hard iteration cap for the safeguarded Newton solve (bisection steps are
#: taken whenever Newton leaves the bracket, so 80 halvings always suffice).
_ROOT_MAX_ITER = 80


@dataclasses.dataclass(frozen=True)
class KernelParams:
    """KiBaM parameters in array form.

    Two shapes are supported, distinguished by :attr:`per_scenario`:

    * ``(n_batteries,)`` -- one battery set *shared* by every scenario of a
      batch (the original engine contract); the arrays broadcast against
      ``(n_scenarios, n_batteries)`` state slices.
    * ``(n_scenarios, n_batteries)`` -- one battery set *per scenario*, the
      parameter-sweep lever: every scenario lane may carry its own
      capacity/c/k' triple and the kernels stay a single NumPy call.

    The shared form is left untouched by the lane-alignment helpers
    (:meth:`take`, :meth:`tiled`), so the floating-point operation order of
    shared-parameter batches is bit-identical to the pre-sweep engine.
    """

    capacity: np.ndarray
    c: np.ndarray
    k_prime: np.ndarray

    @staticmethod
    def from_parameters(params: Sequence[BatteryParameters]) -> "KernelParams":
        if not params:
            raise ValueError("at least one battery parameter set is required")
        return KernelParams(
            capacity=np.array([p.capacity for p in params], dtype=np.float64),
            c=np.array([p.c for p in params], dtype=np.float64),
            k_prime=np.array([p.k_prime for p in params], dtype=np.float64),
        )

    @staticmethod
    def from_parameter_rows(
        rows: Sequence[Sequence[BatteryParameters]],
    ) -> "KernelParams":
        """Per-scenario parameters: one row of battery sets per scenario."""
        if not rows:
            raise ValueError("at least one scenario parameter row is required")
        widths = {len(row) for row in rows}
        if widths == {0}:
            raise ValueError("at least one battery parameter set is required")
        if len(widths) != 1:
            raise ValueError(
                f"every scenario needs the same number of batteries, got row "
                f"widths {sorted(widths)}"
            )
        return KernelParams(
            capacity=np.array([[p.capacity for p in row] for row in rows]),
            c=np.array([[p.c for p in row] for row in rows]),
            k_prime=np.array([[p.k_prime for p in row] for row in rows]),
        )

    @property
    def per_scenario(self) -> bool:
        """Whether the parameters vary along a scenario axis."""
        return self.capacity.ndim == 2

    @property
    def n_batteries(self) -> int:
        return self.capacity.shape[-1]

    @property
    def n_scenarios(self) -> "int | None":
        """Scenario count of per-scenario parameters, ``None`` when shared."""
        return self.capacity.shape[0] if self.per_scenario else None

    def take(self, lanes: np.ndarray) -> "KernelParams":
        """Parameters row-aligned with the given scenario lanes.

        Shared parameters broadcast against any lane subset, so they are
        returned as-is (preserving the exact pre-sweep operation order);
        per-scenario parameters are row-indexed.
        """
        if not self.per_scenario:
            return self
        return KernelParams(
            capacity=self.capacity[lanes],
            c=self.c[lanes],
            k_prime=self.k_prime[lanes],
        )

    def battery(self, choice: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(c, k_prime)`` of one chosen battery per row, shape ``(K,)``.

        ``self`` must already be row-aligned with ``choice`` (via
        :meth:`take` for per-scenario parameters).
        """
        if self.per_scenario:
            rows = np.arange(choice.shape[0])
            return self.c[rows, choice], self.k_prime[rows, choice]
        return self.c[choice], self.k_prime[choice]

    def tiled(self, times: int) -> "KernelParams":
        """Scenario rows repeated ``times`` times (for stacked policy runs)."""
        if times < 1:
            raise ValueError("times must be at least 1")
        if not self.per_scenario or times == 1:
            return self
        return KernelParams(
            capacity=np.tile(self.capacity, (times, 1)),
            c=np.tile(self.c, (times, 1)),
            k_prime=np.tile(self.k_prime, (times, 1)),
        )

    def discretize(
        self, time_step: float = 0.01, charge_unit: float = 0.01
    ) -> "DiscreteKernelParams":
        """The dKiBaM form of these parameters (``model="discrete"``)."""
        return DiscreteKernelParams.from_kernel_params(
            self, time_step=time_step, charge_unit=charge_unit
        )


#: Recovery-table sentinel: an entry no tick counter ever reaches (the
#: scalar table uses ``2**62`` for the non-recovering heights 0 and 1).
DISCRETE_UNREACHABLE = 2**62


@dataclasses.dataclass(frozen=True)
class DiscreteKernelParams:
    """dKiBaM parameters in array form, shaped like :class:`KernelParams`.

    All per-battery arrays follow the same two layouts as the analytical
    parameters: ``(n_batteries,)`` shared by every scenario, or
    ``(n_scenarios, n_batteries)`` per-scenario.  The integer tables are
    built through the scalar :class:`repro.kibam.discrete.DiscreteKibam`
    (one instance per distinct parameter triple), so every derived quantity
    -- unit counts, per-mille coefficients, equation-(6) recovery ticks,
    the ``Gamma / c`` height unit -- is byte-identical to what the scalar
    reference computes.

    Attributes:
        time_step: tick length ``T`` in minutes.
        charge_unit: charge unit ``Gamma`` in Amin.
        total_units: full-charge unit count ``N`` per battery lane (int64).
        c_permille: integer per-mille ``c`` per lane (equation (8)'s form).
        c: float ``c`` per lane (for the policy-facing available charge).
        height_unit: height-difference step ``Gamma / c`` per lane (Amin).
        tables: recovery tick tables, shape ``(n_distinct, max_len)``,
            padded with :data:`DISCRETE_UNREACHABLE`; ``tables[k, m]`` is
            the number of ticks for the height difference to drop from
            ``m`` to ``m - 1`` units under parameter set ``k``.
        table_id: per-lane row index into ``tables`` (int64).
    """

    time_step: float
    charge_unit: float
    total_units: np.ndarray
    c_permille: np.ndarray
    c: np.ndarray
    height_unit: np.ndarray
    tables: np.ndarray
    table_id: np.ndarray

    @staticmethod
    def from_kernel_params(
        kp: KernelParams, time_step: float = 0.01, charge_unit: float = 0.01
    ) -> "DiscreteKernelParams":
        shape = kp.capacity.shape
        triples = np.stack(
            [
                kp.capacity.reshape(-1),
                kp.c.reshape(-1),
                kp.k_prime.reshape(-1),
            ],
            axis=1,
        )
        distinct: Dict[Tuple[float, float, float], int] = {}
        models: List[DiscreteKibam] = []
        table_id = np.zeros(triples.shape[0], dtype=np.int64)
        for lane, (capacity, c, k_prime) in enumerate(triples):
            key = (float(capacity), float(c), float(k_prime))
            if key not in distinct:
                distinct[key] = len(models)
                models.append(
                    DiscreteKibam(
                        BatteryParameters(capacity=key[0], c=key[1], k_prime=key[2]),
                        time_step=time_step,
                        charge_unit=charge_unit,
                    )
                )
            table_id[lane] = distinct[key]
        max_len = max(len(model.recovery_steps) for model in models)
        tables = np.full((len(models), max_len), DISCRETE_UNREACHABLE, dtype=np.int64)
        for row, model in enumerate(models):
            tables[row, : len(model.recovery_steps)] = model.recovery_steps
        flat_ids = table_id
        return DiscreteKernelParams(
            time_step=time_step,
            charge_unit=charge_unit,
            total_units=np.array(
                [models[i].total_units for i in flat_ids], dtype=np.int64
            ).reshape(shape),
            c_permille=np.array(
                [models[i].c_permille for i in flat_ids], dtype=np.int64
            ).reshape(shape),
            c=kp.c.astype(np.float64, copy=True),
            height_unit=np.array(
                [models[i].height_unit for i in flat_ids], dtype=np.float64
            ).reshape(shape),
            tables=tables,
            table_id=flat_ids.reshape(shape),
        )

    @property
    def per_scenario(self) -> bool:
        return self.total_units.ndim == 2

    @property
    def n_batteries(self) -> int:
        return self.total_units.shape[-1]

    @property
    def n_scenarios(self) -> "int | None":
        return self.total_units.shape[0] if self.per_scenario else None

    def expanded(self, n_scenarios: int) -> "DiscreteKernelParams":
        """Per-lane arrays materialized to ``(n_scenarios, n_batteries)``.

        The batch dKiBaM loop indexes lanes with fancy ``(scenario,
        battery)`` pairs, which needs concrete 2-D arrays; shared parameters
        are broadcast, per-scenario parameters are validated and returned
        as-is.
        """
        if self.per_scenario:
            if self.n_scenarios != n_scenarios:
                raise ValueError(
                    f"per-scenario parameters cover {self.n_scenarios} "
                    f"scenarios, but the batch has {n_scenarios}"
                )
            return self
        shape = (n_scenarios, self.n_batteries)

        def spread(array: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(np.broadcast_to(array[None, :], shape))

        return DiscreteKernelParams(
            time_step=self.time_step,
            charge_unit=self.charge_unit,
            total_units=spread(self.total_units),
            c_permille=spread(self.c_permille),
            c=spread(self.c),
            height_unit=spread(self.height_unit),
            tables=self.tables,
            table_id=spread(self.table_id),
        )

    def tiled(self, times: int) -> "DiscreteKernelParams":
        """Scenario rows repeated ``times`` times (for stacked policy runs)."""
        if times < 1:
            raise ValueError("times must be at least 1")
        if not self.per_scenario or times == 1:
            return self
        return DiscreteKernelParams(
            time_step=self.time_step,
            charge_unit=self.charge_unit,
            total_units=np.tile(self.total_units, (times, 1)),
            c_permille=np.tile(self.c_permille, (times, 1)),
            c=np.tile(self.c, (times, 1)),
            height_unit=np.tile(self.height_unit, (times, 1)),
            tables=self.tables,
            table_id=np.tile(self.table_id, (times, 1)),
        )


def initial_state_array(kp: KernelParams, n_scenarios: int) -> np.ndarray:
    """Fully charged batch state of shape ``(n_scenarios, n_batteries, 2)``."""
    if n_scenarios < 1:
        raise ValueError("n_scenarios must be at least 1")
    if kp.per_scenario and kp.n_scenarios != n_scenarios:
        raise ValueError(
            f"per-scenario parameters cover {kp.n_scenarios} scenarios, "
            f"but the batch has {n_scenarios}"
        )
    state = np.zeros((n_scenarios, kp.n_batteries, 2), dtype=np.float64)
    state[:, :, GAMMA] = kp.capacity if kp.per_scenario else kp.capacity[None, :]
    return state


def step_constant_current_array(
    kp: KernelParams,
    state: np.ndarray,
    currents: np.ndarray,
    durations: np.ndarray,
) -> np.ndarray:
    """Advance a batch state by per-element constant-current spans.

    Args:
        kp: battery parameters (``(n_batteries,)`` arrays).
        state: batch state, shape ``(..., n_batteries, 2)``.
        currents: discharge current per battery, broadcastable to
            ``(..., n_batteries)``; zero means idle/recovery.
        durations: span length per scenario (or per battery), broadcastable
            to ``(..., n_batteries)``; must be non-negative.

    Returns:
        A new batch state array.  Note that a zero duration is *not* an
        exact no-op in floating point (``delta_inf + (delta - delta_inf)``
        can differ from ``delta`` in the last ulp); callers that need to
        freeze a lane should mask it out instead of passing duration 0.
    """
    gamma = state[..., GAMMA]
    delta = state[..., DELTA]
    decay = np.exp(-kp.k_prime * durations)
    delta_inf = currents / (kp.c * kp.k_prime)
    new = np.empty_like(state)
    new[..., DELTA] = delta_inf + (delta - delta_inf) * decay
    new[..., GAMMA] = gamma - currents * durations
    return new


def empty_margin_array(kp: KernelParams, state: np.ndarray) -> np.ndarray:
    """Signed distance to the empty condition, ``gamma - (1 - c) * delta``.

    Zero or negative means empty (equation (3) of the paper).
    """
    return state[..., GAMMA] - (1.0 - kp.c) * state[..., DELTA]


def available_charge_array(kp: KernelParams, state: np.ndarray) -> np.ndarray:
    """Available-well charge ``max(0, c * (gamma - (1 - c) * delta))``.

    Clamped at zero exactly like
    :meth:`repro.core.battery.AnalyticalBattery.available_charge`, whose
    values the scheduling policies compare (and tie-break) on.
    """
    return np.maximum(
        0.0, kp.c * (state[..., GAMMA] - (1.0 - kp.c) * state[..., DELTA])
    )


def total_charge_array(state: np.ndarray) -> np.ndarray:
    """Total charge left per battery, clamped at zero (``max(0, gamma)``)."""
    return np.maximum(0.0, state[..., GAMMA])


def _margin_at(
    c: np.ndarray,
    k_prime: np.ndarray,
    gamma: np.ndarray,
    delta: np.ndarray,
    current: np.ndarray,
    t: np.ndarray,
) -> np.ndarray:
    """Empty margin after discharging for ``t`` minutes at ``current``."""
    decay = np.exp(-k_prime * t)
    delta_inf = current / (c * k_prime)
    new_delta = delta_inf + (delta - delta_inf) * decay
    new_gamma = gamma - current * t
    return new_gamma - (1.0 - c) * new_delta


def time_to_empty_array(
    c: np.ndarray,
    k_prime: np.ndarray,
    gamma: np.ndarray,
    delta: np.ndarray,
    current: np.ndarray,
    horizon: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized time until the empty condition at constant current.

    All arguments are flat float64 arrays of a common shape; each element is
    an independent battery.  Semantics match
    :func:`repro.kibam.lifetime.time_to_empty` with a horizon:

    * an element whose margin is already non-positive crosses at ``0.0``,
    * a non-positive current never crosses (idle only recovers),
    * otherwise the crossing is searched in ``[0, min(gamma/I, horizon)]``
      and reported only if the margin at the bracket end is non-positive.

    Returns:
        ``(crossing, crossed)`` where ``crossed`` is a boolean mask and
        ``crossing`` holds the crossing times (NaN where ``crossed`` is
        False).
    """
    gamma = np.asarray(gamma, dtype=np.float64)
    crossing = np.full(gamma.shape, np.nan)
    crossed = np.zeros(gamma.shape, dtype=bool)

    margin0 = gamma - (1.0 - c) * delta
    already = margin0 <= 0.0
    crossing[already] = 0.0
    crossed[already] = True

    searching = (~already) & (current > 0.0)
    if not np.any(searching):
        return crossing, crossed

    idx = np.flatnonzero(searching)
    c_s = np.broadcast_to(c, gamma.shape)[idx]
    k_s = np.broadcast_to(k_prime, gamma.shape)[idx]
    g_s = gamma[idx]
    d_s = np.asarray(delta, dtype=np.float64)[idx]
    i_s = np.asarray(current, dtype=np.float64)[idx]
    h_s = np.broadcast_to(horizon, gamma.shape)[idx]

    # Hard upper bound: even if every unit of charge were available the
    # battery would be flat after gamma / current minutes.
    upper = np.minimum(g_s / i_s, h_s)
    margin_up = _margin_at(c_s, k_s, g_s, d_s, i_s, upper)
    hit = margin_up <= 0.0
    if not np.any(hit):
        return crossing, crossed

    # Newton iteration on the strictly decreasing margin, safeguarded by the
    # bracket [lo, hi] with margin(lo) > 0 >= margin(hi): any Newton step
    # that leaves the bracket (or divides by a vanishing derivative) is
    # replaced by a bisection step, so convergence is guaranteed and in
    # practice takes a handful of iterations.
    sub = np.flatnonzero(hit)
    lo = np.zeros(sub.shape[0])
    hi = upper[sub]
    k_b, g_b, i_b = k_s[sub], g_s[sub], i_s[sub]
    # The margin in Horner-friendly form: f(t) = g - i*t - a - b*exp(-k*t)
    # with a = (1-c)*delta_inf and b = (1-c)*(delta - delta_inf), so the
    # derivative is f'(t) = -i + k*b*exp(-k*t).
    delta_inf = i_b / (c_s[sub] * k_b)
    a = (1.0 - c_s[sub]) * delta_inf
    b = (1.0 - c_s[sub]) * (d_s[sub] - delta_inf)
    kb = k_b * b
    # Secant start from the known bracket values f(0) = margin0 > 0 and
    # f(upper) = margin_up <= 0: the margin is close to linear over a span
    # (the exponential's curvature is mild at KiBaM rate constants), so this
    # lands near the root and Newton converges in a handful of iterations.
    m0 = margin0[idx[sub]]
    mu = margin_up[sub]
    t = hi * (m0 / (m0 - mu))
    t = np.where((t > lo) & (t < hi), t, 0.5 * (lo + hi))
    with np.errstate(divide="ignore", invalid="ignore"):
        for iteration in range(_ROOT_MAX_ITER):
            decay = np.exp(-k_b * t)
            f = g_b - i_b * t - a - b * decay
            positive = f > 0.0
            lo = np.where(positive, t, lo)
            hi = np.where(positive, hi, t)
            t_new = t - f / (kb * decay - i_b)
            fallback = ~((t_new > lo) & (t_new < hi))
            t_new = np.where(fallback, 0.5 * (lo + hi), t_new)
            # Skip the convergence reductions while Newton is still far from
            # its quadratic basin; afterwards one check per iteration.
            if iteration >= 2 and bool(
                np.all(
                    (np.abs(t_new - t) <= _ROOT_TOL) | (hi - lo <= _ROOT_TOL)
                )
            ):
                t = t_new
                break
            t = t_new
    out = idx[sub]
    crossing[out] = t
    crossed[out] = True
    return crossing, crossed
