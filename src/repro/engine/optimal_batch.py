"""Batched branch-and-bound search for optimal schedules.

:class:`BatchOptimalScheduler` is the array-native counterpart of
:class:`repro.core.optimal.OptimalScheduler`.  The scalar search walks one
decision node at a time, advancing each battery through Python calls; this
search keeps a *frontier* of unexpanded decision nodes ordered by their
admissible lifetime bound (best-first) and processes them in batches:

* the deterministic between-decision battery advances -- serving the chosen
  battery up to its empty crossing, idling the others, skipping idle epochs
  -- run as ``(n_nodes, n_batteries, 2)`` NumPy kernels
  (:mod:`repro.engine.kernels`) for the analytical model, and as the exact
  integer event-jumping dKiBaM (:func:`discrete_segment_array`, the
  lane-parallel form of :meth:`repro.kibam.discrete.DiscreteKibam.
  run_segment`) for the discrete model;
* the admissible remaining-lifetime upper bound (the perfect-pooling bound
  of the scalar search refined by the recovery-limited bound of
  :mod:`repro.kibam.bounds`, or the total-charge fallback for batteries
  that do not share ``c``/``k'``) is evaluated for a whole frontier batch
  in one vectorized epoch walk, memoized on the same quantized keys as the
  scalar search;
* the search also carries a cheap per-node *lower* bound -- the lifetime
  of the node's state under the fixed greedy completion, rolled out on the
  same batch kernels -- probed periodically on popped batches; an
  improving lower bound raises the incumbent (it is an achievable
  schedule) and retroactively evicts every live frontier slot whose upper
  bound it covers (free-listed immediately, heap entries invalidated
  lazily via slot stamps);
* dominance and symmetry pruning reuse the scalar search's
  :class:`repro.core.optimal.DominanceArchive` unchanged, so the pruning
  semantics (and therefore soundness) are shared, not re-derived.

The frontier itself is stored structure-of-arrays (:class:`FrontierArrays`):
preallocated, grow-by-doubling state/bookkeeping column pools with a
free-list of recycled rows, plus an append-only :class:`DecisionTrace`
encoding each node's assignment as ``(parent, choice)`` integers.  The heap
orders integer *slots*, expansion gathers and scatters index slices of the
column arrays, and no per-node Python state objects or per-child assignment
tuples are built -- the former re-copying hot spot of the per-round node
stacking.

Searches can also be *seeded* with a neighboring problem's winning
assignment (``seed_assignment``): the seed is replayed on the search's own
batteries, so its lifetime is genuinely achievable and only raises the
incumbent cutoff -- :class:`repro.sweep.runner.SweepRunner` chains grid
points of monotone battery sweeps this way (spec-level dominance pruning:
less work, identical results).

Parity contract with the scalar search: identical ``lifetime`` (to 1e-9
minutes for the analytical model; *exactly*, tick for tick, for the
discrete model, whose search state is all-integer) and identical
``complete`` flags.  The winning ``assignment`` may differ when several
schedules are co-optimal -- best-first and depth-first tie-break
differently -- and ``nodes_expanded`` may differ by a small factor, because
a batch of nodes is popped against one incumbent while the scalar search
re-checks the (possibly improved) incumbent at every node.

The search result is replayed through the scalar simulator (exactly like
the scalar search replays it), so the reported lifetime, schedule and
final battery states are golden-reference values either way.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.battery import make_battery_models
from repro.core.optimal import (
    _BOUND_CACHE_LIMIT,
    DominanceArchive,
    OptimalScheduleResult,
    OptimalScheduler,
    discrete_bound_slack_for,
    group_permutations,
    parameter_symmetry_groups,
)
from repro.core.policies import FixedAssignmentPolicy, make_policy
from repro.core.simulator import MultiBatterySimulator
from repro.engine.batch import resolve_model
from repro.engine.kernels import (
    DELTA,
    DISCRETE_UNREACHABLE,
    GAMMA,
    KernelParams,
    step_constant_current_array,
    time_to_empty_array,
)
from repro.kibam.bounds import build_pooled_job_table, recovery_limited_refinements
from repro.kibam.discrete import discharge_spec_for, duration_ticks
from repro.kibam.parameters import BatteryParameters
from repro.workloads.load import Load

#: Same span epsilon as the scalar search and simulator.
_TIME_EPSILON = 1e-9
#: Same emptiness tolerance as ``AnalyticalBattery.is_empty``.
_EMPTY_TOLERANCE = 1e-12
#: Default number of frontier nodes expanded per vectorized round.
DEFAULT_BATCH_SIZE = 64
#: Expansion rounds between greedy-completion lower-bound probes.  Each
#: probe rolls one popped batch to system death (about the cost of one
#: expansion round), so probing every round would roughly double the
#: search; every 16th round keeps the cost under ~7% while the incumbent
#: still tightens long before the frontier drains.
_LB_PROBE_PERIOD = 16

#: Tolerance-adaptive dominance-archive depths (see
#: :class:`BatchOptimalScheduler`): certified searches merge few signatures,
#: so deep archives are pure overhead; tolerant searches merge aggressively
#: and a deep archive roughly halves the certification-floor node counts.
_CERTIFIED_ARCHIVE_LIMIT = 64
_TOLERANT_ARCHIVE_LIMIT = 1024

#: Battery models the batched search can advance; anything else must use
#: the scalar :class:`repro.core.optimal.OptimalScheduler`.
BATCH_OPTIMAL_MODELS = ("analytical", "discrete")

#: Same dominance-comparison slack as the scalar archive.
_DOMINANCE_EPSILON = 1e-9

_BIG = DISCRETE_UNREACHABLE


def _resolve_groups(
    groups: Optional[Sequence[int]], symmetric: bool, n_batteries: int
) -> Tuple[int, ...]:
    """Per-battery symmetry groups with the legacy-flag fallback.

    When no explicit groups are given the all-or-nothing ``symmetric``
    flag is honored: one shared group for identical batteries, singleton
    groups otherwise.
    """
    if groups is not None:
        return tuple(groups)
    if symmetric:
        return (0,) * n_batteries
    return tuple(range(n_batteries))


def _group_representatives(
    ordered: Sequence[int], groups: Sequence[int]
) -> List[int]:
    """First battery of each symmetry group, in ``ordered`` order.

    Mirrors the scalar search's root-decision prune: the stable
    most-available-first sort puts the first-listed battery of each group
    first, so both searches pick identical representatives.
    """
    seen = set()
    representatives: List[int] = []
    for index in ordered:
        group = groups[index]
        if group in seen:
            continue
        seen.add(group)
        representatives.append(index)
    return representatives


class VectorDominanceArchive:
    """Array-backed port of :class:`repro.core.optimal.DominanceArchive`.

    Same pruning semantics -- quantized-signature deduplication, a Pareto
    archive per decision point with permutation pairing for identical
    batteries, the ``archive_limit`` cap -- but the archive is held as one
    ``(n_entries, n_batteries, n_components)`` array per decision point and
    each admission is two vectorized comparisons instead of a Python scan.
    The scalar search keeps the transparent reference implementation; this
    is its hot-path counterpart (dominance checks dominate the scalar
    search's profile), and a test pins the two to identical decisions.
    """

    def __init__(
        self,
        symmetric: bool,
        n_batteries: int,
        dominance_tolerance: float = 0.0,
        archive_limit: int = 64,
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        self.symmetric = symmetric
        self.archive_limit = archive_limit
        self._slack = _DOMINANCE_EPSILON + dominance_tolerance
        self._scale = max(dominance_tolerance, 1e-9)
        #: Optional per-battery symmetry-group ids (see
        #: :func:`repro.core.optimal.parameter_symmetry_groups`).  When
        #: given they supersede the all-or-nothing ``symmetric`` flag:
        #: signatures sort rows per group, dominance pairs via the
        #: within-group permutation products -- identical semantics to the
        #: scalar archive's group mode.
        self.groups: Optional[Tuple[int, ...]] = (
            tuple(groups) if groups is not None else None
        )
        self._group_members: Tuple[Tuple[int, ...], ...] = ()
        if self.groups is not None:
            members: dict = {}
            for index, group in enumerate(self.groups):
                members.setdefault(group, []).append(index)
            self._group_members = tuple(
                tuple(indices) for indices in members.values() if len(indices) > 1
            )
            self._perms = np.array(
                group_permutations(self.groups), dtype=np.int64
            )
        elif symmetric and n_batteries <= 3:
            self._perms = np.array(
                list(itertools.permutations(range(n_batteries))), dtype=np.int64
            )
        else:
            self._perms = np.arange(n_batteries, dtype=np.int64)[None, :]
        self._entries: dict = {}

    def _signature(self, matrix: np.ndarray):
        quantized = np.where(np.isinf(matrix), matrix, np.round(matrix / self._scale))
        rows = [tuple(row) for row in quantized]
        if self.groups is not None:
            for members in self._group_members:
                for slot, row in zip(
                    members, sorted(rows[index] for index in members)
                ):
                    rows[slot] = row
            return tuple(rows)
        if self.symmetric:
            rows.sort()
        return tuple(rows)

    def admit(self, key, matrix: np.ndarray) -> bool:
        """Record a ``(n_batteries, n_components)`` state matrix; False when dominated."""
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = [set(), None]
        seen, archive = entry
        signature = self._signature(matrix)
        if signature in seen:
            return False
        if archive is not None and archive.shape[0]:
            # ``a`` dominating ``b`` under any battery pairing is the same
            # relation whether the permutations act on ``a`` or on ``b``
            # (they form a group), so both directions compare the archive
            # against the candidate's permutations.
            perms = matrix[self._perms]  # (P, B, V)
            dominated = np.all(
                archive[:, None] >= perms[None] - self._slack, axis=(2, 3)
            )
            if bool(dominated.any()):
                return False
            dominates = np.all(
                perms[None] >= archive[:, None] - self._slack, axis=(2, 3)
            )
            keep = ~dominates.any(axis=1)
            if not keep.all():
                archive = archive[keep]
        if archive is None:
            archive = matrix[None] if self.archive_limit > 0 else np.empty(
                (0,) + matrix.shape
            )
        elif archive.shape[0] < self.archive_limit:
            archive = np.concatenate([archive, matrix[None]])
        entry[1] = archive
        seen.add(signature)
        return True


# --------------------------------------------------------------------- #
# exact vectorized dKiBaM segment
# --------------------------------------------------------------------- #
def discrete_segment_array(
    tables: np.ndarray,
    table_row: np.ndarray,
    c_permille: np.ndarray,
    n: np.ndarray,
    m: np.ndarray,
    recov: np.ndarray,
    acc: np.ndarray,
    rate_cur: np.ndarray,
    rate_ct: np.ndarray,
    cur: np.ndarray,
    cur_times: np.ndarray,
    ticks: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Run one constant-current dKiBaM segment on a flat batch of lanes.

    This is the lane-parallel, event-jumping form of
    :meth:`repro.kibam.discrete.DiscreteKibam.run_segment`: every lane is
    one *independent* battery (unlike the batch simulator's scenario-coupled
    loop) advancing ``ticks[i]`` ticks at the integer discharge rate
    ``cur[i]`` units per ``cur_times[i]`` ticks (``cur == 0`` idles).
    Between draw and equation-(6) recovery events every counter moves
    linearly, so each loop iteration jumps each lane to its own next event
    and replays that single tick with the exact scalar semantics: recovery
    before discharge, the Bresenham accumulator (restarted by the first
    idle tick or by a rate change, the scalar ``disch_rate`` rule), and
    the per-mille emptiness criterion checked per drawn unit.

    All state arguments are 1-D ``int64`` arrays of a common length and are
    not modified; returns the updated ``(n, m, recov, acc, rate_cur,
    rate_ct)`` plus ``empty_tick`` -- the 1-based tick at which a lane was
    observed empty, or ``-1`` (idle lanes and survivors).  Lanes observed
    empty stop advancing at that tick, exactly like the scalar segment.
    """
    q = 1000 - c_permille
    n = n.copy()
    m = m.copy()
    recov = recov.copy()
    acc = acc.copy()
    rate_cur = rate_cur.copy()
    rate_ct = rate_ct.copy()
    left = np.asarray(ticks, dtype=np.int64).copy()
    elapsed = np.zeros(n.shape[0], dtype=np.int64)
    empty_tick = np.full(n.shape[0], -1, dtype=np.int64)

    started = left > 0
    serving = (cur > 0) & started
    idle = (cur == 0) & started
    # The first idle tick resets the draw accumulator; the first serving
    # tick restarts it when the rate changed (scalar ``disch_rate`` rule).
    acc[idle] = 0
    rate_cur[idle] = 0
    rate_ct[idle] = 1
    stale = serving & ((rate_cur != cur) | (rate_ct != cur_times))
    acc[stale] = 0
    rate_cur[serving] = cur[serving]
    rate_ct[serving] = cur_times[serving]

    active = started.copy()
    while np.any(active):
        a = np.flatnonzero(active)
        m_a = m[a]
        rec_a = recov[a]
        live_rec = m_a > 1
        steps = tables[table_row[a], m_a]
        # A draw can raise m into a *shorter* recovery step than the ticks
        # already accumulated; the counter then fires on the very next tick.
        dt_rec = np.where(live_rec, np.maximum(steps - rec_a, 1), _BIG)
        srv = serving[a]
        dt_draw = np.where(
            srv, -((acc[a] - cur_times[a]) // np.maximum(cur[a], 1)), _BIG
        )
        k = np.minimum(np.minimum(left[a], dt_rec), dt_draw)

        # k-1 quiet ticks plus one event tick: recovery counters first.
        inc = rec_a + np.where(live_rec, k, 0)
        fire = live_rec & (inc >= steps)
        m[a] = m_a - fire
        recov[a] = np.where(fire, 0, inc)
        acc[a] += np.where(srv, k * cur[a], 0)
        elapsed[a] += k
        left[a] -= k

        # Draw events: one unit per accumulator threshold, emptiness per
        # drawn unit (and at the draw instant, the scalar's defensive check).
        sl = a[srv]
        if sl.size:
            todo = sl[acc[sl] >= cur_times[sl]]
            while todo.size:
                crit_now = q[todo] * m[todo] >= c_permille[todo] * n[todo]
                if crit_now.any():
                    hit = todo[crit_now]
                    empty_tick[hit] = elapsed[hit]
                    active[hit] = False
                drew = todo[~crit_now]
                if drew.size == 0:
                    break
                n[drew] -= 1
                m[drew] += 1
                acc[drew] -= cur_times[drew]
                crit_after = q[drew] * m[drew] >= c_permille[drew] * n[drew]
                if crit_after.any():
                    hit = drew[crit_after]
                    empty_tick[hit] = elapsed[hit]
                    active[hit] = False
                again = drew[~crit_after]
                todo = again[acc[again] >= cur_times[again]]
        active &= (left > 0) & (empty_tick < 0)
    return n, m, recov, acc, rate_cur, rate_ct, empty_tick


# --------------------------------------------------------------------- #
# frontier storage: structure-of-arrays pools
# --------------------------------------------------------------------- #
#: Initial row capacity of the frontier pools; grown by doubling.
_POOL_CAPACITY = 256


class FrontierArrays:
    """Preallocated, grow-by-doubling structure-of-arrays node storage.

    Columns are declared once as ``name -> (trailing_shape, dtype)``;
    frontier nodes are *rows*, addressed by the integer slots handed out by
    :meth:`allocate` and recycled through a free-list by :meth:`release`.
    When the free-list runs dry every column doubles in place (amortized
    O(1) per node), so the search's expansion, bound evaluation and
    dominance checks all operate on index slices of a handful of stable
    flat arrays instead of stacking and re-copying per-node state objects
    every round (the former hot spot of the batched search).
    """

    def __init__(self, columns, capacity: int = _POOL_CAPACITY) -> None:
        self._names = tuple(columns)
        self.capacity = int(capacity)
        for name, (shape, dtype) in columns.items():
            setattr(
                self, name, np.zeros((self.capacity, *shape), dtype=dtype)
            )
        self._free = list(range(self.capacity - 1, -1, -1))

    def allocate(self, count: int) -> np.ndarray:
        """Hand out ``count`` free slots, growing the pool as needed."""
        if count <= 0:
            # Guard the slice arithmetic: ``self._free[-0:]`` would hand
            # out (and drop) the whole free-list.
            return np.empty(0, dtype=np.int64)
        while len(self._free) < count:
            self._grow()
        slots = self._free[-count:][::-1]
        del self._free[-count:]
        return np.asarray(slots, dtype=np.int64)

    def release(self, slots) -> None:
        """Return slots to the free-list (their rows become reusable)."""
        self._free.extend(int(slot) for slot in np.atleast_1d(slots))

    def _grow(self) -> None:
        doubled = self.capacity * 2
        for name in self._names:
            old = getattr(self, name)
            grown = np.zeros((doubled,) + old.shape[1:], dtype=old.dtype)
            grown[: self.capacity] = old
            setattr(self, name, grown)
        self._free.extend(range(doubled - 1, self.capacity - 1, -1))
        self.capacity = doubled


class DecisionTrace:
    """Append-only ``(parent, choice)`` arrays encoding node assignments.

    Every decision node references one trace entry; the entry's parent is
    the trace id of the node it was branched from (``-1`` for the root), so
    recording a child costs two int64 appends instead of copying the whole
    assignment tuple per node.  Entries are never freed -- they are two
    integers each, and candidate recording needs ancestors of pruned slots
    -- and the full assignment is only reconstructed (by walking parents
    backwards) for the rare candidate that improves the incumbent.
    """

    def __init__(self, capacity: int = _POOL_CAPACITY) -> None:
        self.parent = np.full(capacity, -1, dtype=np.int64)
        self.choice = np.full(capacity, -1, dtype=np.int64)
        self.size = 0

    def append(self, parents: np.ndarray, choices: np.ndarray) -> np.ndarray:
        count = parents.shape[0]
        while self.size + count > self.parent.shape[0]:
            self.parent = np.concatenate([self.parent, np.full_like(self.parent, -1)])
            self.choice = np.concatenate([self.choice, np.full_like(self.choice, -1)])
        ids = np.arange(self.size, self.size + count, dtype=np.int64)
        self.parent[ids] = parents
        self.choice[ids] = choices
        self.size += count
        return ids

    def assignment(self, trace_id: int) -> Tuple[int, ...]:
        """The battery-choice tuple encoded by one trace entry's ancestry."""
        choices = []
        node = int(trace_id)
        while node >= 0:
            choices.append(int(self.choice[node]))
            node = int(self.parent[node])
        return tuple(reversed(choices))


#: Row indices into the discrete backend's ``units`` column.
_N_ROW, _M_ROW, _REC_ROW, _ACC_ROW, _RCUR_ROW, _RCT_ROW = range(6)


class _Child:
    """A decision-point child ready for pruning and frontier insertion."""

    __slots__ = ("slot", "bound_total", "key", "matrix")

    def __init__(self, slot, bound_total, key, matrix):
        self.slot = slot  # frontier-pool slot holding the node state
        self.bound_total = bound_total  # node time + remaining bound, minutes
        self.key = key  # decision-point key for the dominance archive
        self.matrix = matrix  # dominance matrix, (n_batteries, n_components)


def _pooling_parameters(
    params: Sequence[BatteryParameters],
) -> Optional[Tuple[float, float, float]]:
    """``(capacity, c, k')`` of the pooled bound battery, or ``None``.

    Mirrors :meth:`repro.core.optimal.OptimalScheduler._pooling_parameters`:
    KiBaM batteries sharing ``c`` and ``k'`` pool into one battery whose
    lifetime upper-bounds every schedule.
    """
    first = params[0]
    if not all(p.c == first.c and p.k_prime == first.k_prime for p in params):
        return None
    total_capacity = sum(p.capacity for p in params)
    return (total_capacity, first.c, first.k_prime)


class _BoundEvaluator:
    """Vectorized, memoized admissible remaining-lifetime bounds.

    One instance per search; bounds are the scalar search's perfect-pooling
    bound (or the total-charge fallback when the batteries do not share
    ``c``/``k'``), evaluated for a whole batch of ``(gamma, delta)`` pooled
    states in one epoch walk and cached on the scalar search's quantized
    ``(epoch, offset, gamma, delta)`` keys.
    """

    def __init__(
        self,
        params: Sequence[BatteryParameters],
        currents: np.ndarray,
        durations: np.ndarray,
        bound_slack: float,
    ) -> None:
        self.pooled = _pooling_parameters(params)
        self.pooled_params = (
            BatteryParameters(
                capacity=self.pooled[0],
                c=self.pooled[1],
                k_prime=self.pooled[2],
                name="pooled-bound",
            )
            if self.pooled is not None
            else None
        )
        self.currents = currents
        self.durations = durations
        self.n_epochs = currents.shape[0]
        self.bound_slack = bound_slack
        self._cache: dict = {}
        self._job_tables: dict = {}

    def pooled_bounds(
        self,
        gamma: np.ndarray,
        delta: np.ndarray,
        epoch: np.ndarray,
        offset: np.ndarray,
    ) -> np.ndarray:
        """Remaining-lifetime bounds for pooled states, cache-first."""
        assert self.pooled is not None
        keys = [
            (int(e), round(float(o), 9), round(float(g), 9), round(float(d), 9))
            for e, o, g, d in zip(epoch, offset, gamma, delta)
        ]
        out = np.empty(len(keys))
        miss = [i for i, key in enumerate(keys) if key not in self._cache]
        for i, key in enumerate(keys):
            if key in self._cache:
                out[i] = self._cache[key]
        if miss:
            idx = np.asarray(miss)
            fresh = self._pooled_walk(
                gamma[idx].astype(np.float64),
                delta[idx].astype(np.float64),
                epoch[idx].astype(np.int64),
                offset[idx].astype(np.float64),
            )
            for i, value in zip(miss, fresh):
                out[i] = float(value)
                if len(self._cache) >= _BOUND_CACHE_LIMIT:
                    self._cache.clear()
                self._cache[keys[i]] = float(value)
        return out

    def _pooled_walk(
        self,
        gamma: np.ndarray,
        delta: np.ndarray,
        epoch: np.ndarray,
        offset: np.ndarray,
    ) -> np.ndarray:
        """Walk the remaining epochs for every pooled state at once."""
        _, c, k_prime = self.pooled
        e = epoch.copy()
        off = offset.copy()
        g = gamma.copy()
        d = delta.copy()
        elapsed = np.zeros(g.shape[0])
        bound = np.zeros(g.shape[0])
        done = np.zeros(g.shape[0], dtype=bool)
        scale = 1.0 + self.bound_slack
        while True:
            act = np.flatnonzero(~done)
            if act.size == 0:
                break
            past = e[act] >= self.n_epochs
            ended = act[past]
            if ended.size:
                bound[ended] = elapsed[ended] * scale
                done[ended] = True
                act = act[~past]
                if act.size == 0:
                    continue
            cur = self.currents[e[act]]
            dur = self.durations[e[act]] - off[act]
            crossing, crossed = time_to_empty_array(
                c, k_prime, g[act], d[act], cur, dur
            )
            hit = act[crossed]
            if hit.size:
                bound[hit] = (elapsed[hit] + crossing[crossed]) * scale
                done[hit] = True
            go = act[~crossed]
            if go.size:
                cur_go = cur[~crossed]
                dur_go = dur[~crossed]
                decay = np.exp(-k_prime * dur_go)
                delta_inf = cur_go / (c * k_prime)
                d[go] = delta_inf + (d[go] - delta_inf) * decay
                g[go] = g[go] - cur_go * dur_go
                elapsed[go] += dur_go
                e[go] += 1
                off[go] = 0.0
        return bound

    def recovery_limited_bounds(
        self,
        pooled_bounds: np.ndarray,
        gamma: np.ndarray,
        delta: np.ndarray,
        epoch: np.ndarray,
        offset: np.ndarray,
        y1: np.ndarray,
        y2: np.ndarray,
        alive: np.ndarray,
    ) -> np.ndarray:
        """Recovery-limited refinement of already-computed pooled bounds.

        Mirrors :meth:`repro.core.optimal.OptimalScheduler.
        _recovery_limited_bound` for a whole frontier batch: nodes sharing a
        decision point and pooled state share one
        :func:`repro.kibam.bounds.build_pooled_job_table` (cached like the
        pooled bounds), and the per-node feasibility scan runs vectorized
        over the group.  ``y1``/``y2`` are ``(n_nodes, n_batteries)``
        per-battery wells (Amin), ``alive`` the matching non-empty mask.
        Returns bounds no larger than ``pooled_bounds``; rows the
        refinement does not apply to (fewer than two alive batteries) pass
        through unchanged.
        """
        params = self.pooled_params
        assert params is not None
        out = np.asarray(pooled_bounds, dtype=np.float64).copy()
        eligible = np.asarray(alive, dtype=bool).sum(axis=1) >= 2
        if not eligible.any():
            return out
        scale = 1.0 + self.bound_slack
        groups: dict = {}
        for i in np.flatnonzero(eligible):
            key = (
                int(epoch[i]),
                round(float(offset[i]), 9),
                round(float(gamma[i]), 9),
                round(float(delta[i]), 9),
            )
            groups.setdefault(key, []).append(int(i))
        for key, rows in groups.items():
            table = self._job_tables.get(key)
            if table is None:
                e, o, g, d = key
                table = build_pooled_job_table(
                    params,
                    self.currents,
                    self.durations,
                    e,
                    float(offset[rows[0]]),
                    float(gamma[rows[0]]),
                    float(delta[rows[0]]),
                    self._segment_crossing,
                )
                if len(self._job_tables) >= _BOUND_CACHE_LIMIT:
                    self._job_tables.clear()
                self._job_tables[key] = table
            idx = np.asarray(rows, dtype=np.int64)
            refined = recovery_limited_refinements(
                table, params, y1[idx], y2[idx], alive[idx]
            )
            out[idx] = np.minimum(out[idx], refined * scale)
        return out

    @staticmethod
    def _segment_crossing(params, gamma, delta, current, horizon):
        """Single-state segment crossing via the vectorized solver."""
        crossing, crossed = time_to_empty_array(
            params.c,
            params.k_prime,
            np.asarray([gamma]),
            np.asarray([delta]),
            np.asarray([current]),
            np.asarray([horizon]),
        )
        return float(crossing[0]) if bool(crossed[0]) else None

    def total_charge_bounds(
        self, total_charge: np.ndarray, epoch: np.ndarray, offset: np.ndarray
    ) -> np.ndarray:
        """Fallback bound: batteries cannot deliver more charge than held."""
        e = epoch.astype(np.int64).copy()
        off = offset.astype(np.float64).copy()
        total = total_charge.astype(np.float64).copy()
        elapsed = np.zeros(total.shape[0])
        bound = np.zeros(total.shape[0])
        done = np.zeros(total.shape[0], dtype=bool)
        while True:
            act = np.flatnonzero(~done)
            if act.size == 0:
                break
            past = e[act] >= self.n_epochs
            ended = act[past]
            if ended.size:
                bound[ended] = elapsed[ended]
                done[ended] = True
                act = act[~past]
                if act.size == 0:
                    continue
            cur = self.currents[e[act]]
            dur = self.durations[e[act]] - off[act]
            demand = cur * dur
            exhausts = (cur > 0.0) & (demand >= total[act])
            hit = act[exhausts]
            if hit.size:
                bound[hit] = elapsed[hit] + total[hit] / cur[exhausts]
                done[hit] = True
            go = act[~exhausts]
            if go.size:
                total[go] -= demand[~exhausts]
                elapsed[go] += dur[~exhausts]
                e[go] += 1
                off[go] = 0.0
        return bound


# --------------------------------------------------------------------- #
# analytical backend ops
# --------------------------------------------------------------------- #
class _AnalyticalOps:
    """Vectorized node advances and bounds for the analytical KiBaM.

    Frontier nodes live in a :class:`FrontierArrays` pool (one float state
    column plus scalar bookkeeping columns) and are addressed by slot;
    children in flight between :meth:`branch` and :meth:`prepare` travel as
    flat column dicts and only claim a pool slot once they survive the
    bound prune.
    """

    model = "analytical"

    def __init__(
        self,
        params: Sequence[BatteryParameters],
        load: Load,
        symmetric: bool,
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        self.params = tuple(params)
        self.kp = KernelParams.from_parameters(params)
        self.n_batteries = len(params)
        self.symmetric = symmetric
        self.groups = _resolve_groups(groups, symmetric, self.n_batteries)
        epochs = load.epochs
        self.currents = np.array([e.current for e in epochs], dtype=np.float64)
        self.durations = np.array([e.duration for e in epochs], dtype=np.float64)
        self.is_job = self.currents > 0.0
        self.n_epochs = len(epochs)
        self.bounds = _BoundEvaluator(
            params, self.currents, self.durations, bound_slack=0.0
        )
        self.pool = FrontierArrays(
            {
                "state": ((self.n_batteries, 2), np.float64),
                "sticky": ((self.n_batteries,), np.bool_),
                "epoch": ((), np.int64),
                "offset": ((), np.float64),
                "time": ((), np.float64),
                "trace": ((), np.int64),
            }
        )
        self.trace = DecisionTrace()

    def root_batch(self):
        """The root decision node as a one-row in-flight column batch."""
        state = np.zeros((1, self.n_batteries, 2), dtype=np.float64)
        state[:, :, GAMMA] = self.kp.capacity
        return {
            "state": state,
            "sticky": np.zeros((1, self.n_batteries), dtype=bool),
            "epoch": np.zeros(1, dtype=np.int64),
            "offset": np.zeros(1, dtype=np.float64),
            "time": np.zeros(1, dtype=np.float64),
            "trace": np.full(1, -1, dtype=np.int64),
        }

    def candidate_lifetime(self, time) -> float:
        return float(time)

    # -- expansion ------------------------------------------------------ #
    def branch(self, slots: np.ndarray):
        """Expand a batch of frontier slots into raw children.

        Returns ``(candidates, children)`` where candidates are
        ``(lifetime, trace_id)`` pairs for children whose last battery
        died, and children is an in-flight column batch that still needs
        :meth:`prepare` (idle-epoch advance, bound, dominance).  The
        caller releases the parent slots afterwards.
        """
        pool = self.pool
        S = pool.state[slots]
        sticky = pool.sticky[slots]
        epoch = pool.epoch[slots]
        offset = pool.offset[slots]
        time = pool.time[slots]
        trace = pool.trace[slots]
        c = self.kp.c
        margin = S[:, :, GAMMA] - (1.0 - c) * S[:, :, DELTA]
        alive = (~sticky) & (margin > _EMPTY_TOLERANCE)
        avail = np.maximum(0.0, c * margin)

        parents: List[int] = []
        choices: List[int] = []
        for i in range(slots.shape[0]):
            usable = np.flatnonzero(alive[i]).tolist()
            # Most available charge first; ``sorted`` is stable, so ties
            # keep index order -- identical to the scalar ordering.
            ordered = sorted(usable, key=lambda j: -avail[i, j])
            if offset[i] == 0.0 and time[i] == 0.0:
                # All batteries are full at the very first decision: one
                # representative per symmetry group suffices (a no-op for
                # all-singleton groups), exactly like the scalar search.
                ordered = _group_representatives(ordered, self.groups)
            for j in ordered:
                parents.append(i)
                choices.append(j)
        if not parents:
            return [], None
        par = np.asarray(parents, dtype=np.int64)
        cho = np.asarray(choices, dtype=np.int64)
        P = par.shape[0]
        rows = np.arange(P)

        cur = self.currents[epoch[par]]
        remaining = self.durations[epoch[par]] - offset[par]
        crossing, crossed = time_to_empty_array(
            c[cho],
            self.kp.k_prime[cho],
            S[par, cho, GAMMA],
            S[par, cho, DELTA],
            cur,
            remaining,
        )
        span = np.where(crossed, crossing, remaining)
        battery_currents = np.zeros((P, self.n_batteries))
        battery_currents[rows, cho] = cur
        old = S[par]
        new = step_constant_current_array(
            self.kp, old, battery_currents, span[:, None]
        )
        frozen = sticky[par]
        child_state = np.where(frozen[:, :, None], old, new)
        child_sticky = frozen.copy()
        child_sticky[rows, cho] |= crossed
        child_time = time[par] + span
        mid = crossed & (remaining - span > _TIME_EPSILON)
        child_epoch = np.where(mid, epoch[par], epoch[par] + 1)
        child_offset = np.where(mid, offset[par] + span, 0.0)
        child_trace = self.trace.append(trace[par], cho)

        child_margin = child_state[:, :, GAMMA] - (1.0 - c) * child_state[:, :, DELTA]
        alive_after = (~child_sticky) & (child_margin > _EMPTY_TOLERANCE)
        dead = crossed & ~alive_after.any(axis=1)

        candidates = [
            (float(child_time[p]), int(child_trace[p]))
            for p in np.flatnonzero(dead)
        ]
        live = np.flatnonzero(~dead)
        if live.size == 0:
            return candidates, None
        children = {
            "state": child_state[live],
            "sticky": child_sticky[live],
            "epoch": child_epoch[live],
            "offset": child_offset[live],
            "time": child_time[live],
            "trace": child_trace[live],
        }
        return candidates, children

    # -- decision-point preparation ------------------------------------- #
    def prepare(self, children, best_lifetime: float):
        """Advance raw children to their next decision point and bound them.

        Returns ``(candidates, ready)``: candidates for children that
        survived the load or died at a job arrival, and :class:`_Child`
        records (bound-pruned already, states parked in pool slots) for
        the rest.
        """
        if children is None:
            return [], []
        S = children["state"]
        sticky = children["sticky"]
        epoch = children["epoch"]
        offset = children["offset"]
        time = children["time"]
        trace = children["trace"]
        K = S.shape[0]
        c = self.kp.c

        candidates = []
        decided: List[int] = []
        pending = np.arange(K)
        while pending.size:
            exhausted = epoch[pending] >= self.n_epochs
            for p in pending[exhausted]:
                # The batteries survived the load; the load end is the
                # observed lifetime (scalar semantics).
                candidates.append((float(time[p]), int(trace[p])))
            rest = pending[~exhausted]
            if rest.size == 0:
                break
            job = self.is_job[epoch[rest]]
            decided.extend(rest[job].tolist())
            idle = rest[~job]
            if idle.size == 0:
                break
            span = self.durations[epoch[idle]] - offset[idle]
            old = S[idle]
            new = step_constant_current_array(
                self.kp, old, np.zeros((idle.size, self.n_batteries)), span[:, None]
            )
            S[idle] = np.where(sticky[idle][:, :, None], old, new)
            time[idle] += span
            epoch[idle] += 1
            offset[idle] = 0.0
            pending = idle

        if not decided:
            return candidates, []
        d = np.asarray(decided, dtype=np.int64)
        margin = S[d, :, GAMMA] - (1.0 - c) * S[d, :, DELTA]
        alive = (~sticky[d]) & (margin > _EMPTY_TOLERANCE)
        any_alive = alive.any(axis=1)
        for p in d[~any_alive]:
            # A job arrived and no battery can serve it: the system died
            # the moment the previous span ended.
            candidates.append((float(time[p]), int(trace[p])))
        live = d[any_alive]
        if live.size == 0:
            return candidates, []

        if self.bounds.pooled is not None:
            live_alive = alive[any_alive]
            gamma = np.where(live_alive, S[live, :, GAMMA], 0.0).sum(axis=1)
            delta = np.where(live_alive, S[live, :, DELTA], 0.0).sum(axis=1)
            remaining = self.bounds.pooled_bounds(
                gamma, delta, epoch[live], offset[live]
            )
            y1 = c * (S[live, :, GAMMA] - (1.0 - c) * S[live, :, DELTA])
            y2 = S[live, :, GAMMA] - y1
            remaining = self.bounds.recovery_limited_bounds(
                remaining, gamma, delta, epoch[live], offset[live],
                y1, y2, live_alive,
            )
        else:
            total = np.where(
                alive[any_alive], np.maximum(0.0, S[live, :, GAMMA]), 0.0
            ).sum(axis=1)
            remaining = self.bounds.total_charge_bounds(
                total, epoch[live], offset[live]
            )
        totals = time[live] + remaining

        keep = np.flatnonzero(totals > best_lifetime + _TIME_EPSILON)
        if keep.size == 0:
            return candidates, []
        kept = live[keep]
        matrices = self._matrices(S[kept], sticky[kept])
        pool = self.pool
        slots = pool.allocate(kept.size)
        pool.state[slots] = S[kept]
        pool.sticky[slots] = sticky[kept]
        pool.epoch[slots] = epoch[kept]
        pool.offset[slots] = offset[kept]
        pool.time[slots] = time[kept]
        pool.trace[slots] = trace[kept]
        ready = [
            _Child(
                int(slots[row]),
                float(totals[keep[row]]),
                (int(epoch[p]), round(float(offset[p]), 9)),
                matrices[row],
            )
            for row, p in enumerate(kept)
        ]
        return candidates, ready

    def _matrices(self, states: np.ndarray, sticky: np.ndarray) -> np.ndarray:
        """The scalar search's dominance matrices, one ``(B, 3)`` per node."""
        K = states.shape[0]
        mat = np.empty((K, self.n_batteries, 3))
        mat[:, :, 0] = 1.0
        mat[:, :, 1] = states[:, :, GAMMA]
        mat[:, :, 2] = -states[:, :, DELTA]
        empty_row = np.array([0.0, -np.inf, -np.inf])
        return np.where(sticky[:, :, None], empty_row, mat)

    # -- greedy lower bounds -------------------------------------------- #
    def greedy_lifetimes(self, slots: np.ndarray):
        """Achieved lifetime of each slot under the fixed greedy completion.

        Rolls every node forward with the most-available-charge-first rule
        (the search's own branch ordering) until system death, entirely on
        the batch kernels.  Returns ``(lifetimes, choices)`` -- the
        lifetime in minutes per node and the battery-choice list each
        rollout appended, so an improving node's full assignment can be
        reconstructed from its decision trace plus its greedy tail.  The
        rollouts are real schedules of these batteries, so each lifetime
        is an achievable *lower* bound on the node's optimum.
        """
        pool = self.pool
        S = pool.state[slots].copy()
        sticky = pool.sticky[slots].copy()
        epoch = pool.epoch[slots].copy()
        offset = pool.offset[slots].copy()
        time = pool.time[slots].copy()
        K = slots.shape[0]
        c = self.kp.c
        lifetimes = np.zeros(K)
        choices: List[List[int]] = [[] for _ in range(K)]
        active = np.arange(K)
        while active.size:
            ended = epoch[active] >= self.n_epochs
            fin = active[ended]
            lifetimes[fin] = time[fin]
            active = active[~ended]
            if active.size == 0:
                break
            job = self.is_job[epoch[active]]
            idle = active[~job]
            if idle.size:
                span = self.durations[epoch[idle]] - offset[idle]
                old = S[idle]
                new = step_constant_current_array(
                    self.kp, old, np.zeros((idle.size, self.n_batteries)), span[:, None]
                )
                S[idle] = np.where(sticky[idle][:, :, None], old, new)
                time[idle] += span
                epoch[idle] += 1
                offset[idle] = 0.0
            serving = active[job]
            if serving.size:
                margin = S[serving, :, GAMMA] - (1.0 - c) * S[serving, :, DELTA]
                alive = (~sticky[serving]) & (margin > _EMPTY_TOLERANCE)
                dead = ~alive.any(axis=1)
                fin = serving[dead]
                lifetimes[fin] = time[fin]
                serving = serving[~dead]
                if serving.size:
                    margin = margin[~dead]
                    alive = alive[~dead]
                    avail = np.where(alive, np.maximum(0.0, c * margin), -1.0)
                    cho = avail.argmax(axis=1)
                    rows = np.arange(serving.size)
                    cur = self.currents[epoch[serving]]
                    remaining = self.durations[epoch[serving]] - offset[serving]
                    crossing, crossed = time_to_empty_array(
                        c[cho],
                        self.kp.k_prime[cho],
                        S[serving, cho, GAMMA],
                        S[serving, cho, DELTA],
                        cur,
                        remaining,
                    )
                    span = np.where(crossed, crossing, remaining)
                    battery_currents = np.zeros((serving.size, self.n_batteries))
                    battery_currents[rows, cho] = cur
                    old = S[serving]
                    new = step_constant_current_array(
                        self.kp, old, battery_currents, span[:, None]
                    )
                    S[serving] = np.where(sticky[serving][:, :, None], old, new)
                    sticky[serving, cho] = sticky[serving, cho] | crossed
                    time[serving] += span
                    mid = crossed & (remaining - span > _TIME_EPSILON)
                    epoch[serving] = np.where(mid, epoch[serving], epoch[serving] + 1)
                    offset[serving] = np.where(mid, offset[serving] + span, 0.0)
                    for k, j in zip(serving, cho):
                        choices[int(k)].append(int(j))
            active = np.concatenate([idle, serving])
        return lifetimes, choices


# --------------------------------------------------------------------- #
# discrete backend ops
# --------------------------------------------------------------------- #
class _DiscreteOps:
    """Exact integer node advances and bounds for the dKiBaM."""

    model = "discrete"

    def __init__(
        self,
        params: Sequence[BatteryParameters],
        load: Load,
        symmetric: bool,
        time_step: float,
        charge_unit: float,
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        self.params = tuple(params)
        self.n_batteries = len(params)
        self.symmetric = symmetric
        self.groups = _resolve_groups(groups, symmetric, self.n_batteries)
        self.time_step = time_step
        self.charge_unit = charge_unit
        self.dp = KernelParams.from_parameters(params).discretize(
            time_step, charge_unit
        )
        self.cp = self.dp.c_permille
        self.q = 1000 - self.cp
        self.tables = self.dp.tables
        self.trow = self.dp.table_id
        self.c = self.dp.c
        self.height_unit = self.dp.height_unit
        epochs = load.epochs
        self.currents = np.array([e.current for e in epochs], dtype=np.float64)
        self.durations = np.array([e.duration for e in epochs], dtype=np.float64)
        specs = [
            discharge_spec_for(e.current, time_step, charge_unit)
            if e.current > 0.0
            else None
            for e in epochs
        ]
        self.e_cur = np.array(
            [spec.cur if spec else 0 for spec in specs], dtype=np.int64
        )
        self.e_ct = np.array(
            [spec.cur_times if spec else 1 for spec in specs], dtype=np.int64
        )
        self.e_ticks = np.array(
            [duration_ticks(e.duration, time_step) for e in epochs], dtype=np.int64
        )
        self.is_job = self.e_cur > 0
        self.n_epochs = len(epochs)
        # The analytical pooling bound gets the scalar search's
        # discretization-aware safety margin when pruning dKiBaM searches.
        self.bounds = _BoundEvaluator(
            params,
            self.currents,
            self.durations,
            bound_slack=discrete_bound_slack_for(time_step, charge_unit),
        )
        self.pool = FrontierArrays(
            {
                "units": ((6, self.n_batteries), np.int64),
                "empty": ((self.n_batteries,), np.bool_),
                "epoch": ((), np.int64),
                "offset": ((), np.int64),
                "time": ((), np.int64),
                "trace": ((), np.int64),
            }
        )
        self.trace = DecisionTrace()

    def root_batch(self):
        """The root decision node as a one-row in-flight column batch."""
        units = np.zeros((1, 6, self.n_batteries), dtype=np.int64)
        units[:, _N_ROW] = self.dp.total_units
        units[:, _RCT_ROW] = 1
        return {
            "units": units,
            "empty": np.zeros((1, self.n_batteries), dtype=bool),
            "epoch": np.zeros(1, dtype=np.int64),
            "offset": np.zeros(1, dtype=np.int64),
            "time": np.zeros(1, dtype=np.int64),
            "trace": np.full(1, -1, dtype=np.int64),
        }

    def candidate_lifetime(self, time) -> float:
        return float(time) * self.time_step

    def _alive(self, units: np.ndarray, empty: np.ndarray) -> np.ndarray:
        crit = self.q * units[..., _M_ROW, :] >= self.cp * units[..., _N_ROW, :]
        return (~empty) & (~crit)

    # -- expansion ------------------------------------------------------ #
    def branch(self, slots: np.ndarray):
        pool = self.pool
        U = pool.units[slots]  # (K, 6, B)
        empty = pool.empty[slots]
        epoch = pool.epoch[slots]
        offset = pool.offset[slots]
        time = pool.time[slots]
        trace = pool.trace[slots]
        alive = self._alive(U, empty)
        gamma = U[:, _N_ROW, :] * self.charge_unit
        delta = U[:, _M_ROW, :] * self.height_unit
        avail = np.maximum(0.0, self.c * (gamma - (1.0 - self.c) * delta))

        parents: List[int] = []
        choices: List[int] = []
        for i in range(slots.shape[0]):
            usable = np.flatnonzero(alive[i]).tolist()
            ordered = sorted(usable, key=lambda j: -avail[i, j])
            if offset[i] == 0 and time[i] == 0:
                # One representative per symmetry group at the very first
                # decision, exactly like the scalar search.
                ordered = _group_representatives(ordered, self.groups)
            for j in ordered:
                parents.append(i)
                choices.append(j)
        if not parents:
            return [], None
        par = np.asarray(parents, dtype=np.int64)
        cho = np.asarray(choices, dtype=np.int64)
        P = par.shape[0]
        rows = np.arange(P)

        cur = self.e_cur[epoch[par]]
        ct = self.e_ct[epoch[par]]
        remaining = self.e_ticks[epoch[par]] - offset[par]
        lane = U[par, :, cho]  # (P, 6)
        n2, m2, rec2, acc2, rcur2, rct2, empty_tick = discrete_segment_array(
            self.tables,
            self.trow[cho],
            self.cp[cho],
            lane[:, _N_ROW],
            lane[:, _M_ROW],
            lane[:, _REC_ROW],
            lane[:, _ACC_ROW],
            lane[:, _RCUR_ROW],
            lane[:, _RCT_ROW],
            cur,
            ct,
            remaining,
        )
        emptied = empty_tick >= 0
        span = np.where(emptied, empty_tick, remaining)

        child_U = U[par].copy()
        child_U[rows, :, cho] = np.stack([n2, m2, rec2, acc2, rcur2, rct2], axis=1)
        child_empty = empty[par].copy()
        child_empty[rows, cho] |= emptied

        # Idle the other (non-empty) batteries for the served span.
        other = ~child_empty
        other[rows, cho] = False
        lane_node, lane_bat = np.nonzero(other)
        if lane_node.size:
            flat = child_U[lane_node, :, lane_bat]  # (L, 6)
            zeros = np.zeros(lane_node.shape[0], dtype=np.int64)
            i_n, i_m, i_rec, i_acc, i_rcur, i_rct, _ = discrete_segment_array(
                self.tables,
                self.trow[lane_bat],
                self.cp[lane_bat],
                flat[:, _N_ROW],
                flat[:, _M_ROW],
                flat[:, _REC_ROW],
                flat[:, _ACC_ROW],
                flat[:, _RCUR_ROW],
                flat[:, _RCT_ROW],
                zeros,
                np.ones(lane_node.shape[0], dtype=np.int64),
                span[lane_node],
            )
            child_U[lane_node, :, lane_bat] = np.stack(
                [i_n, i_m, i_rec, i_acc, i_rcur, i_rct], axis=1
            )

        child_time = time[par] + span
        mid = emptied & (remaining - span > 0)
        child_epoch = np.where(mid, epoch[par], epoch[par] + 1)
        child_offset = np.where(mid, offset[par] + span, 0)
        child_trace = self.trace.append(trace[par], cho)
        alive_after = self._alive(child_U, child_empty)
        dead = emptied & ~alive_after.any(axis=1)

        candidates = [
            (self.candidate_lifetime(child_time[p]), int(child_trace[p]))
            for p in np.flatnonzero(dead)
        ]
        live = np.flatnonzero(~dead)
        if live.size == 0:
            return candidates, None
        children = {
            "units": child_U[live],
            "empty": child_empty[live],
            "epoch": child_epoch[live],
            "offset": child_offset[live],
            "time": child_time[live],
            "trace": child_trace[live],
        }
        return candidates, children

    # -- decision-point preparation ------------------------------------- #
    def prepare(self, children, best_lifetime: float):
        if children is None:
            return [], []
        U = children["units"]
        empty = children["empty"]
        epoch = children["epoch"]
        offset = children["offset"]
        time = children["time"]
        trace = children["trace"]
        K = U.shape[0]

        candidates = []
        decided: List[int] = []
        pending = np.arange(K)
        while pending.size:
            exhausted = epoch[pending] >= self.n_epochs
            for p in pending[exhausted]:
                candidates.append(
                    (self.candidate_lifetime(time[p]), int(trace[p]))
                )
            rest = pending[~exhausted]
            if rest.size == 0:
                break
            job = self.is_job[epoch[rest]]
            decided.extend(rest[job].tolist())
            idle = rest[~job]
            if idle.size == 0:
                break
            span = self.e_ticks[epoch[idle]] - offset[idle]
            usable = ~empty[idle]
            lane_node, lane_bat = np.nonzero(usable)
            if lane_node.size:
                sub = idle[lane_node]
                flat = U[sub, :, lane_bat]
                zeros = np.zeros(lane_node.shape[0], dtype=np.int64)
                i_n, i_m, i_rec, i_acc, i_rcur, i_rct, _ = discrete_segment_array(
                    self.tables,
                    self.trow[lane_bat],
                    self.cp[lane_bat],
                    flat[:, _N_ROW],
                    flat[:, _M_ROW],
                    flat[:, _REC_ROW],
                    flat[:, _ACC_ROW],
                    flat[:, _RCUR_ROW],
                    flat[:, _RCT_ROW],
                    zeros,
                    np.ones(lane_node.shape[0], dtype=np.int64),
                    span[lane_node],
                )
                U[sub, :, lane_bat] = np.stack(
                    [i_n, i_m, i_rec, i_acc, i_rcur, i_rct], axis=1
                )
            time[idle] += span
            epoch[idle] += 1
            offset[idle] = 0
            pending = idle

        if not decided:
            return candidates, []
        d = np.asarray(decided, dtype=np.int64)
        alive = self._alive(U[d], empty[d])
        any_alive = alive.any(axis=1)
        for p in d[~any_alive]:
            candidates.append(
                (self.candidate_lifetime(time[p]), int(trace[p]))
            )
        live = d[any_alive]
        if live.size == 0:
            return candidates, []

        offset_min = offset[live] * self.time_step
        if self.bounds.pooled is not None:
            live_alive = alive[any_alive]
            gamma_u = U[live, _N_ROW, :] * self.charge_unit
            delta_u = U[live, _M_ROW, :] * self.height_unit
            gamma = np.where(live_alive, gamma_u, 0.0).sum(axis=1)
            delta = np.where(live_alive, delta_u, 0.0).sum(axis=1)
            # No recovery-limited refinement here: the chain-feasibility
            # argument holds for the continuous dynamics only, and dKiBaM
            # tick rounding can keep a marginal burst alive that the
            # continuous threshold rules out (see
            # OptimalScheduler._recovery_limited_bound).  The discrete
            # search keeps the slack-inflated pooling bound.
            remaining = self.bounds.pooled_bounds(
                gamma, delta, epoch[live], offset_min
            )
        else:
            total = np.where(
                alive[any_alive], U[live, _N_ROW, :] * self.charge_unit, 0.0
            ).sum(axis=1)
            remaining = self.bounds.total_charge_bounds(
                total, epoch[live], offset_min
            )
        totals = time[live] * self.time_step + remaining

        keep = np.flatnonzero(totals > best_lifetime + _TIME_EPSILON)
        if keep.size == 0:
            return candidates, []
        kept = live[keep]
        matrices = self._matrices(U[kept], empty[kept])
        pool = self.pool
        slots = pool.allocate(kept.size)
        pool.units[slots] = U[kept]
        pool.empty[slots] = empty[kept]
        pool.epoch[slots] = epoch[kept]
        pool.offset[slots] = offset[kept]
        pool.time[slots] = time[kept]
        pool.trace[slots] = trace[kept]
        ready = [
            _Child(
                int(slots[row]),
                float(totals[keep[row]]),
                (int(epoch[p]), int(offset[p])),
                matrices[row],
            )
            for row, p in enumerate(kept)
        ]
        return candidates, ready

    def _matrices(self, units: np.ndarray, empty: np.ndarray) -> np.ndarray:
        """The scalar search's dominance matrices, one ``(B, 5)`` per node."""
        K = units.shape[0]
        mat = np.empty((K, self.n_batteries, 5))
        mat[:, :, 0] = 1.0
        mat[:, :, 1] = units[:, _N_ROW, :]
        mat[:, :, 2] = -units[:, _M_ROW, :]
        mat[:, :, 3] = -units[:, _ACC_ROW, :]
        mat[:, :, 4] = units[:, _REC_ROW, :]
        empty_row = np.full(5, -np.inf)
        empty_row[0] = 0.0
        return np.where(empty[:, :, None], empty_row, mat)

    # -- greedy lower bounds -------------------------------------------- #
    def greedy_lifetimes(self, slots: np.ndarray):
        """Exact-tick greedy-completion lifetimes; see the analytical twin."""
        pool = self.pool
        U = pool.units[slots].copy()
        empty = pool.empty[slots].copy()
        epoch = pool.epoch[slots].copy()
        offset = pool.offset[slots].copy()
        time = pool.time[slots].copy()
        K = slots.shape[0]
        lifetimes = np.zeros(K)
        choices: List[List[int]] = [[] for _ in range(K)]
        active = np.arange(K)
        while active.size:
            ended = epoch[active] >= self.n_epochs
            fin = active[ended]
            lifetimes[fin] = time[fin] * self.time_step
            active = active[~ended]
            if active.size == 0:
                break
            job = self.is_job[epoch[active]]
            idle = active[~job]
            if idle.size:
                span = self.e_ticks[epoch[idle]] - offset[idle]
                usable = ~empty[idle]
                lane_node, lane_bat = np.nonzero(usable)
                if lane_node.size:
                    sub = idle[lane_node]
                    flat = U[sub, :, lane_bat]
                    zeros = np.zeros(lane_node.shape[0], dtype=np.int64)
                    i_n, i_m, i_rec, i_acc, i_rcur, i_rct, _ = discrete_segment_array(
                        self.tables,
                        self.trow[lane_bat],
                        self.cp[lane_bat],
                        flat[:, _N_ROW],
                        flat[:, _M_ROW],
                        flat[:, _REC_ROW],
                        flat[:, _ACC_ROW],
                        flat[:, _RCUR_ROW],
                        flat[:, _RCT_ROW],
                        zeros,
                        np.ones(lane_node.shape[0], dtype=np.int64),
                        span[lane_node],
                    )
                    U[sub, :, lane_bat] = np.stack(
                        [i_n, i_m, i_rec, i_acc, i_rcur, i_rct], axis=1
                    )
                time[idle] += span
                epoch[idle] += 1
                offset[idle] = 0
            serving = active[job]
            if serving.size:
                alive = self._alive(U[serving], empty[serving])
                dead = ~alive.any(axis=1)
                fin = serving[dead]
                lifetimes[fin] = time[fin] * self.time_step
                serving = serving[~dead]
                if serving.size:
                    alive = alive[~dead]
                    gamma = U[serving, _N_ROW, :] * self.charge_unit
                    delta = U[serving, _M_ROW, :] * self.height_unit
                    avail = np.where(
                        alive,
                        np.maximum(0.0, self.c * (gamma - (1.0 - self.c) * delta)),
                        -1.0,
                    )
                    cho = avail.argmax(axis=1)
                    rows = np.arange(serving.size)
                    cur = self.e_cur[epoch[serving]]
                    ct = self.e_ct[epoch[serving]]
                    remaining = self.e_ticks[epoch[serving]] - offset[serving]
                    lane = U[serving, :, cho]
                    n2, m2, rec2, acc2, rcur2, rct2, empty_tick = discrete_segment_array(
                        self.tables,
                        self.trow[cho],
                        self.cp[cho],
                        lane[:, _N_ROW],
                        lane[:, _M_ROW],
                        lane[:, _REC_ROW],
                        lane[:, _ACC_ROW],
                        lane[:, _RCUR_ROW],
                        lane[:, _RCT_ROW],
                        cur,
                        ct,
                        remaining,
                    )
                    emptied = empty_tick >= 0
                    span = np.where(emptied, empty_tick, remaining)
                    U[serving, :, cho] = np.stack(
                        [n2, m2, rec2, acc2, rcur2, rct2], axis=1
                    )
                    empty[serving, cho] = empty[serving, cho] | emptied
                    other = ~empty[serving]
                    other[rows, cho] = False
                    lane_node, lane_bat = np.nonzero(other)
                    if lane_node.size:
                        sub = serving[lane_node]
                        flat = U[sub, :, lane_bat]
                        zeros = np.zeros(lane_node.shape[0], dtype=np.int64)
                        i_n, i_m, i_rec, i_acc, i_rcur, i_rct, _ = discrete_segment_array(
                            self.tables,
                            self.trow[lane_bat],
                            self.cp[lane_bat],
                            flat[:, _N_ROW],
                            flat[:, _M_ROW],
                            flat[:, _REC_ROW],
                            flat[:, _ACC_ROW],
                            flat[:, _RCUR_ROW],
                            flat[:, _RCT_ROW],
                            zeros,
                            np.ones(lane_node.shape[0], dtype=np.int64),
                            span[lane_node],
                        )
                        U[sub, :, lane_bat] = np.stack(
                            [i_n, i_m, i_rec, i_acc, i_rcur, i_rct], axis=1
                        )
                    time[serving] += span
                    mid = emptied & (remaining - span > 0)
                    epoch[serving] = np.where(mid, epoch[serving], epoch[serving] + 1)
                    offset[serving] = np.where(mid, offset[serving] + span, 0)
                    for k, j in zip(serving, cho):
                        choices[int(k)].append(int(j))
            active = np.concatenate([idle, serving])
        return lifetimes, choices


# --------------------------------------------------------------------- #
# the batched scheduler
# --------------------------------------------------------------------- #
class BatchOptimalScheduler:
    """Best-first branch-and-bound with batched frontier evaluation.

    Args:
        params: battery parameter sets, one per battery.
        load: the load to schedule.
        model: ``"analytical"`` or ``"discrete"`` (the two vectorized
            battery models; anything else needs the scalar search).
        time_step / charge_unit: dKiBaM discretization (discrete only).
        max_nodes: optional cap on the number of expanded decision nodes;
            when the frontier still holds unexpanded, unpruned nodes at the
            cap the result carries ``complete=False``.
        use_dominance: enable dominance pruning (off only for ablations).
        archive_limit: maximum archived states per decision point; ``None``
            picks a tolerance-adaptive default.  Pruning more states never
            changes certified results -- dominance pruning is sound at any
            archive depth, the limit only caps how many admitted states
            later admissions are checked against.  Measured on the
            certification-floor loads: at ``dominance_tolerance=0``
            quantized signatures rarely merge, so a deep (1024) archive
            prunes *zero* extra nodes while costing ~2.5x the wall time --
            the certified default stays at the scalar search's 64.  With a
            positive tolerance the merged signatures keep archives small
            and effective, and the deep cap roughly halves the expanded
            nodes at no wall-time cost, so the tolerant default is 1024.
        dominance_tolerance: state-merge tolerance (Amin); zero certifies
            optimality, exactly like the scalar search.
        batch_size: frontier nodes expanded per vectorized round.  Larger
            batches amortize the NumPy call overhead further but expand
            against a staler incumbent; the default balances the two.
        use_symmetry: enable group-wise symmetry reduction between
            batteries with identical parameters (off only for ablation
            measurements -- symmetry never changes the result, only the
            node count).
    """

    def __init__(
        self,
        params: Sequence[BatteryParameters],
        load: Load,
        model: str = "analytical",
        time_step: float = 0.01,
        charge_unit: float = 0.01,
        max_nodes: Optional[int] = None,
        use_dominance: bool = True,
        archive_limit: Optional[int] = None,
        dominance_tolerance: float = 0.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        use_symmetry: bool = True,
    ) -> None:
        if not params:
            raise ValueError("at least one battery parameter set is required")
        if dominance_tolerance < 0.0:
            raise ValueError("dominance_tolerance must be non-negative")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if model not in BATCH_OPTIMAL_MODELS:
            raise ValueError(
                f"the batched search supports models {BATCH_OPTIMAL_MODELS}, "
                f"got {model!r}; use repro.core.optimal.OptimalScheduler for "
                "other battery models"
            )
        self.params = tuple(params)
        self.load = load
        self.model = model
        self.time_step = time_step
        self.charge_unit = charge_unit
        self.max_nodes = max_nodes
        self.use_dominance = use_dominance
        if archive_limit is None:
            archive_limit = (
                _CERTIFIED_ARCHIVE_LIMIT
                if dominance_tolerance == 0.0
                else _TOLERANT_ARCHIVE_LIMIT
            )
        self.archive_limit = archive_limit
        self.dominance_tolerance = dominance_tolerance
        self.batch_size = batch_size
        self.use_symmetry = use_symmetry
        # Same grouping rule as the scalar search's model_symmetry_groups:
        # batteries with equal parameter sets are interchangeable (all
        # batteries of one search share the model and discretization, so
        # parameter equality is the whole key here).
        groups = (
            parameter_symmetry_groups(self.params)
            if use_symmetry
            else tuple(range(len(self.params)))
        )
        self._groups = groups
        symmetric = len(set(groups)) == 1
        if model == "discrete":
            self._ops = _DiscreteOps(
                self.params, load, symmetric, time_step, charge_unit, groups=groups
            )
        else:
            self._ops = _AnalyticalOps(self.params, load, symmetric, groups=groups)
        self._archive = VectorDominanceArchive(
            symmetric=symmetric,
            n_batteries=len(self.params),
            dominance_tolerance=dominance_tolerance,
            archive_limit=archive_limit,
            groups=groups,
        )
        self._best_lifetime = float("-inf")
        self._best_assignment: Tuple[int, ...] = ()
        self._nodes_expanded = 0
        self._complete = True

    # ------------------------------------------------------------------ #
    def search(
        self,
        incumbent_policies: Sequence[str] = ("sequential", "round-robin", "best-of-two"),
        seed_assignment: Optional[Sequence[int]] = None,
    ) -> OptimalScheduleResult:
        """Run the batched search and return the optimal schedule.

        Args:
            incumbent_policies: heuristic policies simulated up front to
                provide the initial incumbent (and pruning cutoff).
            seed_assignment: optional battery-choice sequence from a
                neighboring search (e.g. the previous grid point of a
                capacity sweep).  It is *replayed on this search's own
                batteries* through the scalar simulator, so the resulting
                lifetime is genuinely achievable here and seeding is an
                admissible incumbent regardless of where the assignment
                came from: it can only raise the pruning cutoff, never
                change which schedules are reachable.  A seed that is not
                replayable on these batteries (its decision points do not
                line up) is silently ignored.
        """
        models = make_battery_models(
            self.params,
            backend=self.model,
            time_step=self.time_step,
            charge_unit=self.charge_unit,
        )
        simulator = MultiBatterySimulator(models)
        incumbent_name = "none"
        for policy_name in incumbent_policies:
            result = simulator.run(self.load, make_policy(policy_name))
            lifetime = (
                result.lifetime
                if result.lifetime is not None
                else self.load.total_duration
            )
            if lifetime > self._best_lifetime:
                self._best_lifetime = lifetime
                incumbent_name = policy_name
                self._best_assignment = tuple(
                    entry.battery
                    for entry in result.schedule.entries
                    if entry.battery is not None
                )
        if seed_assignment is not None:
            # The seed's decision points shift with the battery parameters,
            # so the raw assignment is not always its own best translation:
            # a few tail truncations are tried as well (the replay's
            # best-available fallback covers the dropped tail), and a seed
            # whose tail points at an already-empty battery truncates until
            # it replays.  Every variant is an actual schedule of *these*
            # batteries, so taking the best replay is always admissible.
            seed = tuple(seed_assignment)
            variants = [seed[: len(seed) - cut] for cut in range(3) if len(seed) > cut]
            best_replay = None
            while variants:
                candidate = variants.pop(0)
                try:
                    result = simulator.run(
                        self.load, FixedAssignmentPolicy(candidate)
                    )
                except ValueError as error:
                    # Cut at the failing decision (not one-by-one from the
                    # tail): the exception names where the foreign schedule
                    # stopped replaying, so one retry per failure point.
                    failed_at = getattr(error, "decision_index", len(candidate) - 1)
                    truncated = candidate[:failed_at]
                    if truncated and truncated not in variants:
                        variants.append(truncated)
                    continue
                lifetime = (
                    result.lifetime
                    if result.lifetime is not None
                    else self.load.total_duration
                )
                if best_replay is None or lifetime > best_replay[0]:
                    best_replay = (lifetime, result)
            if best_replay is not None:
                lifetime, result = best_replay
                # Strictly better only: on ties the heuristic incumbent is
                # kept, exactly as an unseeded search would report it.
                if lifetime > self._best_lifetime:
                    self._best_lifetime = lifetime
                    incumbent_name = "seed"
                    self._best_assignment = tuple(
                        entry.battery
                        for entry in result.schedule.entries
                        if entry.battery is not None
                    )

        counter = itertools.count()
        heap: List = []
        pool = self._ops.pool
        # Slot re-use stamps for lazy heap invalidation: a heap entry is
        # stale (its slot was retroactively evicted and possibly re-used)
        # when its recorded stamp no longer matches the slot's.
        stamps = np.zeros(pool.capacity, dtype=np.int64)

        def slot_stamp(slot: int) -> int:
            nonlocal stamps
            if stamps.shape[0] < pool.capacity:
                grown = np.zeros(pool.capacity, dtype=np.int64)
                grown[: stamps.shape[0]] = stamps
                stamps = grown
            return int(stamps[slot])

        def admit(children) -> None:
            for child in children:
                if child.bound_total <= self._best_lifetime + _TIME_EPSILON:
                    pool.release(child.slot)
                    continue
                if self.use_dominance and not self._archive.admit(
                    child.key, child.matrix
                ):
                    pool.release(child.slot)
                    continue
                heapq.heappush(
                    heap,
                    (
                        -child.bound_total,
                        next(counter),
                        child.bound_total,
                        child.slot,
                        slot_stamp(child.slot),
                    ),
                )

        def evict_frontier() -> None:
            """Retroactively drop frontier entries the incumbent now covers.

            The UB/LB dual cut of the ``fcn_BB`` exemplar: whenever the
            incumbent (a certified *lower* bound) improves, every live
            frontier slot whose upper bound can no longer beat it is
            free-listed immediately instead of waiting to be popped.  The
            pop loop would never expand those entries anyway -- the heap
            is bound-ordered and clears at the first sub-incumbent top --
            so this is frontier hygiene: the pool rows recycle sooner and
            the heap shrinks, which keeps memory flat on long searches.
            Entries are invalidated lazily via slot stamps.
            """
            nonlocal heap
            cutoff = self._best_lifetime + _TIME_EPSILON
            keep: List = []
            for entry in heap:
                _, _, bound_total, slot, stamp = entry
                if stamps[slot] != stamp:
                    continue  # already evicted and possibly re-used
                if bound_total <= cutoff:
                    stamps[slot] += 1
                    pool.release(slot)
                else:
                    keep.append(entry)
            if len(keep) != len(heap):
                heapq.heapify(keep)
                heap = keep

        candidates, ready = self._ops.prepare(
            self._ops.root_batch(), self._best_lifetime
        )
        self._record(candidates)
        admit(ready)

        rounds = 0
        while heap:
            batch: List[int] = []
            while heap and len(batch) < self.batch_size:
                _, _, bound_total, slot, stamp = heapq.heappop(heap)
                if stamps[slot] != stamp:
                    continue  # stale entry: slot was evicted
                if bound_total <= self._best_lifetime + _TIME_EPSILON:
                    # The frontier is bound-ordered: once the best bound
                    # cannot beat the incumbent, nothing on the heap can.
                    heap.clear()
                    break
                batch.append(slot)
            if not batch:
                break
            if self.max_nodes is not None:
                allowed = self.max_nodes - self._nodes_expanded
                if allowed < len(batch):
                    # Unexpanded, unpruned nodes remain: the result is only
                    # a certified lower bound from here on.
                    self._complete = False
                    batch = batch[:allowed]
                    if not batch:
                        break
            self._nodes_expanded += len(batch)
            slots = np.asarray(batch, dtype=np.int64)
            best_before = self._best_lifetime
            if rounds % _LB_PROBE_PERIOD == 0:
                # Dual-bound probe: greedy-complete the popped nodes (an
                # achievable schedule each, so a sound incumbent) before
                # branching them.  Periodic, not per-round: the rollout
                # costs about one extra expansion round, and the frontier's
                # bound order means the same strong nodes would surface
                # again next probe if skipped.
                lower, tails = self._ops.greedy_lifetimes(slots)
                best = int(np.argmax(lower))
                if lower[best] > self._best_lifetime + _TIME_EPSILON:
                    self._best_lifetime = float(lower[best])
                    self._best_assignment = self._ops.trace.assignment(
                        int(pool.trace[slots[best]])
                    ) + tuple(tails[best])
            rounds += 1
            candidates, children = self._ops.branch(slots)
            pool.release(slots)
            self._record(candidates)
            candidates, ready = self._ops.prepare(children, self._best_lifetime)
            self._record(candidates)
            admit(ready)
            if self._best_lifetime > best_before + _TIME_EPSILON:
                evict_frontier()

        replay = simulator.run(
            self.load, FixedAssignmentPolicy(self._best_assignment)
        )
        lifetime = (
            replay.lifetime
            if replay.lifetime is not None
            else self.load.total_duration
        )
        return OptimalScheduleResult(
            lifetime=lifetime,
            schedule=replay.schedule,
            assignment=self._best_assignment,
            nodes_expanded=self._nodes_expanded,
            complete=self._complete,
            backend=self.model,
            incumbent_policy=incumbent_name,
            final_states=replay.final_states,
            residual_charge=replay.residual_charge,
        )

    def _record(self, candidates) -> None:
        for lifetime, trace_id in candidates:
            if lifetime > self._best_lifetime + _TIME_EPSILON:
                self._best_lifetime = lifetime
                # Reconstructing the assignment walks the decision trace
                # backwards; it only happens for improving candidates, so
                # the cost is O(depth) a handful of times per search.
                self._best_assignment = self._ops.trace.assignment(trace_id)


# --------------------------------------------------------------------- #
# convenience entry points
# --------------------------------------------------------------------- #
def find_optimal_schedule_batched(
    params: Sequence[BatteryParameters],
    load: Load,
    model: Optional[str] = None,
    backend: Optional[str] = None,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
    max_nodes: Optional[int] = None,
    use_dominance: bool = True,
    dominance_tolerance: float = 0.0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed_assignment: Optional[Sequence[int]] = None,
    archive_limit: Optional[int] = None,
    use_symmetry: bool = True,
) -> OptimalScheduleResult:
    """Batched counterpart of :func:`repro.core.optimal.find_optimal_schedule`.

    Same semantics and result type; models without a vectorized kernel
    (``"linear"``) transparently fall back to the scalar search (which
    ignores ``seed_assignment`` -- seeding is a pure pruning optimization;
    see :meth:`BatchOptimalScheduler.search`).  ``archive_limit=None``
    picks the tolerance-adaptive archive depth documented on
    :class:`BatchOptimalScheduler`.
    """
    resolved = resolve_model(model, backend)
    if resolved not in BATCH_OPTIMAL_MODELS:
        scheduler = OptimalScheduler(
            make_battery_models(
                params,
                backend=resolved,
                time_step=time_step,
                charge_unit=charge_unit,
            ),
            load,
            max_nodes=max_nodes,
            use_dominance=use_dominance,
            dominance_tolerance=dominance_tolerance,
            use_symmetry=use_symmetry,
        )
        return scheduler.search()
    scheduler = BatchOptimalScheduler(
        params,
        load,
        model=resolved,
        time_step=time_step,
        charge_unit=charge_unit,
        max_nodes=max_nodes,
        use_dominance=use_dominance,
        archive_limit=archive_limit,
        dominance_tolerance=dominance_tolerance,
        batch_size=batch_size,
        use_symmetry=use_symmetry,
    )
    return scheduler.search(seed_assignment=seed_assignment)


def optimal_schedules_batch(
    loads: Sequence[Load],
    params: Sequence[BatteryParameters],
    model: str = "analytical",
    time_step: float = 0.01,
    charge_unit: float = 0.01,
    max_nodes: Optional[int] = 20_000,
    dominance_tolerance: float = 0.005,
    scalar_fallback: bool = True,
    seed_assignment: Optional[Sequence[int]] = None,
) -> List[OptimalScheduleResult]:
    """One batched optimal search per load, with the sweep-friendly defaults.

    The node cap and state-merge tolerance default to the Monte-Carlo
    sweep's long-standing bounds (20k nodes, half a charge unit), so a
    sweep's ``optimal`` column stays tractable on arbitrary random loads;
    pass ``max_nodes=None`` / ``dominance_tolerance=0.0`` for certified
    searches.

    A capped best-first search only certifies a (sometimes shallow) lower
    bound, while the scalar depth-first search drives its incumbent much
    deeper under the same budget.  With ``scalar_fallback`` (the default,
    used by the sweep runner and the Monte-Carlo column alike so both
    report identical numbers), every search that hits ``max_nodes`` is
    re-driven through :func:`repro.engine.parallel.optimal_schedules_chunk`
    and the better *whole result* -- lifetime, schedule, decision count and
    residual charge together -- is kept.  The scalar result never replaces
    a longer-lived batched schedule; on (1e-9) lifetime ties a scalar
    search that completed within the budget wins, upgrading the column to
    a certified optimum.  (With ``dominance_tolerance > 0`` a "complete"
    DFS can still miss a better schedule the batched frontier found --
    tolerance merging is order-dependent -- which is why the lifetime
    comparison comes first.)

    ``seed_assignment`` (see :meth:`BatchOptimalScheduler.search`) seeds
    every search in the list with a neighboring schedule; the sweep runner
    passes one load per call, chaining each grid point's winner into the
    next.  A *seeded search that hits its node cap is re-run without the
    seed*: a capped search's outcome depends on which nodes fit in the
    budget, so the fresh re-run (whose node work is still accounted in
    ``nodes_expanded``) is what keeps the documented invariant that
    seeding prunes work but never changes reported results, capped or not.
    """
    import dataclasses

    from repro.engine.parallel import optimal_schedules_chunk

    results = []
    for load in loads:
        result = find_optimal_schedule_batched(
            params,
            load,
            model=model,
            time_step=time_step,
            charge_unit=charge_unit,
            max_nodes=max_nodes,
            dominance_tolerance=dominance_tolerance,
            seed_assignment=seed_assignment,
        )
        if seed_assignment is not None and not result.complete:
            seeded_nodes = result.nodes_expanded
            fresh = find_optimal_schedule_batched(
                params,
                load,
                model=model,
                time_step=time_step,
                charge_unit=charge_unit,
                max_nodes=max_nodes,
                dominance_tolerance=dominance_tolerance,
            )
            result = dataclasses.replace(
                fresh, nodes_expanded=fresh.nodes_expanded + seeded_nodes
            )
        if scalar_fallback and not result.complete:
            scalar = optimal_schedules_chunk(
                [load],
                params,
                backend=model,
                max_nodes=max_nodes,
                dominance_tolerance=dominance_tolerance,
                time_step=time_step,
                charge_unit=charge_unit,
            )[0]
            if scalar.lifetime > result.lifetime + _TIME_EPSILON or (
                scalar.complete
                and scalar.lifetime >= result.lifetime - _TIME_EPSILON
            ):
                result = scalar
        results.append(result)
    return results
