"""Lock-step batch simulator: many scenarios, one set of NumPy calls.

:class:`BatchSimulator` is the array-native counterpart of
:class:`repro.core.simulator.MultiBatterySimulator`.  It advances a whole
:class:`repro.engine.scenarios.ScenarioSet` at once: every iteration of its
event loop moves *every* still-active scenario forward by one span (a full
idle epoch, or one served slice of a job epoch), with the KiBaM dynamics,
the empty-crossing search and the scheduling decisions all evaluated as
vectorized kernels over the scenario axis.  Scenarios that die or exhaust
their load drop out of the active set; the loop ends when none remain.

The semantics are a faithful transliteration of the scalar simulator --
same epoch walk, same ``1e-9`` span epsilon, same ``1e-12`` emptiness
tolerance, same sticky empty observation (Section 4.3 of the paper), same
mid-job switchover rule -- so batch lifetimes match scalar lifetimes to
within the root-finder tolerance (far below 1e-9 minutes; the test suite
pins this).

Two battery models run vectorized.  ``model="analytical"`` advances whole
constant-current spans through the closed-form kernels.  ``model=
"discrete"`` (the dKiBaM of Section 2.3) has no closed form -- the scalar
reference walks it one tick at a time -- so the batch loop advances integer
``(n, m)`` charge-unit arrays *event to event*: between draw, recovery and
epoch events every counter moves linearly, so each iteration jumps every
scenario straight to its own next event and replays that single tick
exactly (recovery before discharge, the equation-(7) Bresenham draw
accumulator per serving lane, emptiness checked per drawn unit).  Because
the state is integers, the parity bar with the scalar dKiBaM is exact
equality -- unit for unit, tick for tick -- not a float tolerance.
Scenarios whose policy or battery model has no vectorized implementation
transparently fall back to the scalar simulator, one scenario at a time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.battery import make_battery_models
from repro.core.policies import SchedulingPolicy
from repro.core.simulator import MultiBatterySimulator
from repro.engine.kernels import (
    DELTA,
    DISCRETE_UNREACHABLE,
    GAMMA,
    DiscreteKernelParams,
    KernelParams,
    empty_margin_array,
    initial_state_array,
    step_constant_current_array,
    time_to_empty_array,
    total_charge_array,
)
from repro.engine.policies import (
    BatchDecisionContext,
    VectorPolicy,
    VectorPolicyStack,
    has_vector_policy,
    make_vector_policy,
)
from repro.engine.scenarios import ScenarioSet
from repro.kibam.parameters import BatteryParameters
from repro.workloads.load import Load

#: Spans shorter than this (minutes) end a job epoch; identical to the
#: scalar simulator's ``_TIME_EPSILON``.
_TIME_EPSILON = 1e-9
#: Emptiness tolerance (Amin); identical to ``AnalyticalBattery.is_empty``.
_EMPTY_TOLERANCE = 1e-12

#: Battery models with a vectorized batch implementation; anything else
#: runs through the scalar fallback.
VECTOR_MODELS = ("analytical", "discrete")


def resolve_model(model: Optional[str], backend: Optional[str]) -> str:
    """Resolve the ``model``/``backend`` alias pair to one model name.

    ``model`` is the preferred spelling, ``backend`` the legacy one; passing
    both with different values is an error, passing neither means
    ``"analytical"``.  Shared by every entry point that accepts the pair.
    """
    if model is not None and backend is not None and model != backend:
        raise ValueError(
            f"conflicting battery models: model={model!r}, backend={backend!r}"
        )
    return model if model is not None else (backend or "analytical")


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Outcome of one policy over a batch of scenarios.

    Attributes:
        policy_name: name of the policy that produced the batch.
        lifetimes: system lifetime per scenario in minutes; NaN where the
            batteries survived the whole load.
        decisions: scheduling decisions taken per scenario.
        residual_charge: total charge (Amin) left across the batteries of
            each scenario at the end of its simulation.
        final_states: transformed KiBaM states, shape
            ``(n_scenarios, n_batteries, 2)``; ``None`` when the batch ran
            through the scalar fallback.
        lifetime_ticks: ``model="discrete"`` only -- the lifetime per
            scenario as an exact tick count (``-1`` where the batteries
            survived); ``lifetimes`` is ``lifetime_ticks * time_step``.
        charge_units: ``model="discrete"`` only -- final integer dKiBaM
            state, shape ``(n_scenarios, n_batteries, 2)`` with the last
            axis holding ``(n, m)``: remaining charge units and height
            difference units.  Exactly comparable to the scalar
            :class:`repro.kibam.discrete.DiscreteBatteryState`.
    """

    policy_name: str
    lifetimes: np.ndarray
    decisions: np.ndarray
    residual_charge: np.ndarray
    final_states: Optional[np.ndarray] = None
    lifetime_ticks: Optional[np.ndarray] = None
    charge_units: Optional[np.ndarray] = None

    @property
    def n_scenarios(self) -> int:
        return self.lifetimes.shape[0]

    def take(self, lanes, policy_name: Optional[str] = None) -> "BatchResult":
        """The result restricted to a lane selection (slice or index array)."""

        def sel(array: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if array is None else array[lanes]

        return BatchResult(
            policy_name=self.policy_name if policy_name is None else policy_name,
            lifetimes=self.lifetimes[lanes],
            decisions=self.decisions[lanes],
            residual_charge=self.residual_charge[lanes],
            final_states=sel(self.final_states),
            lifetime_ticks=sel(self.lifetime_ticks),
            charge_units=sel(self.charge_units),
        )

    @property
    def survived(self) -> np.ndarray:
        """Boolean mask of the scenarios whose batteries outlived the load."""
        return np.isnan(self.lifetimes)

    def lifetimes_or_raise(self) -> np.ndarray:
        """All lifetimes, raising if any scenario survived its load."""
        if bool(np.any(self.survived)):
            count = int(np.sum(self.survived))
            raise RuntimeError(
                f"{count} scenario(s) survived the whole load; extend the "
                "loads to measure lifetimes"
            )
        return self.lifetimes


class BatchSimulator:
    """Simulates one battery set serving many scenario loads in lock-step.

    Args:
        params: either one battery parameter set per battery (a flat
            sequence of :class:`BatteryParameters`, shared by every scenario
            in a batch) or one *row* of parameter sets per scenario (a
            sequence of sequences, all of the same width) -- the
            parameter-sweep form, where every scenario lane carries its own
            battery triples and batches must have exactly one scenario per
            row.
        model: battery model: ``"analytical"`` (closed-form KiBaM) and
            ``"discrete"`` (the dKiBaM, exact integer parity with the
            scalar tick loop) both run vectorized; any other registered
            model (``"linear"``) runs through the scalar fallback.
        backend: legacy alias of ``model`` (kept for existing call sites;
            passing both with different values is an error).
        time_step / charge_unit: dKiBaM discretization (``"discrete"``
            model only).
    """

    def __init__(
        self,
        params: Union[
            Sequence[BatteryParameters], Sequence[Sequence[BatteryParameters]]
        ],
        backend: Optional[str] = None,
        time_step: float = 0.01,
        charge_unit: float = 0.01,
        model: Optional[str] = None,
    ) -> None:
        params = tuple(params)
        if not params:
            raise ValueError("at least one battery parameter set is required")
        if isinstance(params[0], BatteryParameters):
            self.params: Tuple = params
            self.param_rows: Optional[Tuple[Tuple[BatteryParameters, ...], ...]] = None
            self._kernel_params = KernelParams.from_parameters(params)
        else:
            rows = tuple(tuple(row) for row in params)
            self._kernel_params = KernelParams.from_parameter_rows(rows)
            self.params = rows
            self.param_rows = rows
        self.backend = resolve_model(model, backend)
        self.time_step = time_step
        self.charge_unit = charge_unit
        self._discrete_kernel_params: Optional[DiscreteKernelParams] = None

    @property
    def model(self) -> str:
        """The battery model this simulator advances (alias of ``backend``)."""
        return self.backend

    @property
    def n_batteries(self) -> int:
        return self._kernel_params.n_batteries

    def _discrete_params(self) -> DiscreteKernelParams:
        if self._discrete_kernel_params is None:
            self._discrete_kernel_params = self._kernel_params.discretize(
                self.time_step, self.charge_unit
            )
        return self._discrete_kernel_params

    def _check_scenario_count(self, scenarios: ScenarioSet) -> None:
        if self.param_rows is not None and len(self.param_rows) != scenarios.n_scenarios:
            raise ValueError(
                f"per-scenario parameters cover {len(self.param_rows)} "
                f"scenarios, but the batch has {scenarios.n_scenarios}"
            )

    def run(
        self,
        scenarios: Union[ScenarioSet, Load, Sequence[Load]],
        policy: Union[str, VectorPolicy, SchedulingPolicy],
    ) -> BatchResult:
        """Simulate ``policy`` on every scenario and return the batch result."""
        if not isinstance(scenarios, ScenarioSet):
            scenarios = ScenarioSet.from_loads(scenarios)
        self._check_scenario_count(scenarios)
        vector_policy = self._resolve_vector_policy(policy)
        if vector_policy is None or self.backend not in VECTOR_MODELS:
            return self._run_fallback(scenarios, policy)
        if self.backend == "discrete":
            return self._run_discrete(scenarios, vector_policy)
        return self._run_vectorized(scenarios, vector_policy)

    def run_many(
        self,
        scenarios: Union[ScenarioSet, Load, Sequence[Load]],
        policies: Sequence[Union[str, VectorPolicy, SchedulingPolicy]],
    ) -> Dict[str, BatchResult]:
        """Simulate several policies over the same scenarios in one batch.

        All vectorizable policies are swept together as one stacked
        lock-step batch (policy ``p`` owning lane block ``p``), which
        amortizes the per-iteration NumPy overhead across policies; the
        rest run one by one through :meth:`run`.  Returns one
        :class:`BatchResult` per policy, keyed by policy name.
        """
        if not policies:
            raise ValueError("at least one policy is required")
        names = [
            policy if isinstance(policy, str) else policy.name for policy in policies
        ]
        if len(set(names)) != len(names):
            raise ValueError(
                f"policy names must be unique (results are keyed by name), got {names}"
            )
        if not isinstance(scenarios, ScenarioSet):
            scenarios = ScenarioSet.from_loads(scenarios)
        self._check_scenario_count(scenarios)
        resolved = [(policy, self._resolve_vector_policy(policy)) for policy in policies]
        results: Dict[str, BatchResult] = {}

        vector = [v for _, v in resolved if v is not None]
        if self.backend in VECTOR_MODELS and len(vector) > 1:
            stack = VectorPolicyStack(vector, scenarios.n_scenarios)
            tiled = scenarios.tiled(len(vector))
            if self.backend == "discrete":
                stacked = self._run_discrete(
                    tiled, stack, dkp=self._discrete_params().tiled(len(vector))
                )
            else:
                stacked = self._run_vectorized(
                    tiled, stack, kp=self._kernel_params.tiled(len(vector))
                )
            n = scenarios.n_scenarios
            for index, policy in enumerate(vector):
                lanes = slice(index * n, (index + 1) * n)
                results[policy.name] = stacked.take(lanes, policy_name=policy.name)
            remaining = [p for p, v in resolved if v is None]
        else:
            remaining = list(policies)
        for policy in remaining:
            result = self.run(scenarios, policy)
            results[result.policy_name] = result
        return results

    # ------------------------------------------------------------------ #
    # vectorized path
    # ------------------------------------------------------------------ #
    def _resolve_vector_policy(
        self, policy: Union[str, VectorPolicy, SchedulingPolicy]
    ) -> Optional[VectorPolicy]:
        if isinstance(policy, VectorPolicy):
            return policy
        if isinstance(policy, str) and has_vector_policy(policy):
            return make_vector_policy(policy)
        return None

    def _run_vectorized(
        self,
        scenarios: ScenarioSet,
        policy: VectorPolicy,
        kp: Optional[KernelParams] = None,
    ) -> BatchResult:
        kp = self._kernel_params if kp is None else kp
        n_scen = scenarios.n_scenarios
        n_bat = self.n_batteries
        currents = scenarios.currents
        durations = scenarios.durations
        n_epochs = scenarios.n_epochs

        state = initial_state_array(kp, n_scen)
        sticky = np.zeros((n_scen, n_bat), dtype=bool)
        epoch_idx = np.full(n_scen, -1, dtype=np.int64)
        cur_current = np.zeros(n_scen)
        remaining = np.zeros(n_scen)
        time = np.zeros(n_scen)
        job_index = np.full(n_scen, -1, dtype=np.int64)
        prev_choice = np.full(n_scen, -1, dtype=np.int64)
        decisions = np.zeros(n_scen, dtype=np.int64)
        lifetime = np.full(n_scen, np.nan)
        switchover = np.zeros(n_scen, dtype=bool)
        active = np.ones(n_scen, dtype=bool)

        policy.reset(n_scen, n_bat)

        act = np.flatnonzero(active)
        while act.size:
            # ---- advance scenarios whose current epoch is finished.  A job
            # epoch is finished when less than the span epsilon remains (the
            # scalar simulator's ``while remaining > eps``); an idle epoch is
            # consumed whole in one span, so it is finished when remaining
            # hits zero exactly.
            while True:
                cur_a = cur_current[act]
                rem_a = remaining[act]
                finished = np.where(
                    cur_a > 0.0, rem_a <= _TIME_EPSILON, rem_a == 0.0
                )
                adv = act[finished]
                if adv.size == 0:
                    break
                epoch_idx[adv] += 1
                exhausted = epoch_idx[adv] >= n_epochs[adv]
                # Load ran out with batteries still usable: the scenario
                # survived; its lifetime stays NaN.
                active[adv[exhausted]] = False
                live = adv[~exhausted]
                if live.size:
                    cur_current[live] = currents[live, epoch_idx[live]]
                    remaining[live] = durations[live, epoch_idx[live]]
                    entered_job = cur_current[live] > 0.0
                    job_index[live[entered_job]] += 1
                    switchover[live] = False
                if exhausted.any():
                    act = act[active[act]]
            if act.size == 0:
                break

            cur = cur_current[act]
            is_idle = cur == 0.0
            idle_lanes = act[is_idle]
            job_lanes = act[~is_idle]

            # ---- scheduling decisions for the job lanes.
            deciding = job_lanes
            choice = np.empty(0, dtype=np.int64)
            crossed = np.zeros(0, dtype=bool)
            crossing = np.empty(0)
            if job_lanes.size:
                margin = empty_margin_array(kp.take(job_lanes), state[job_lanes])
                alive = (~sticky[job_lanes]) & (margin > _EMPTY_TOLERANCE)
                any_alive = np.any(alive, axis=1)
                dead = job_lanes[~any_alive]
                if dead.size:
                    # A job arrived and no battery can serve it: the system
                    # died the moment the previous span ended.
                    lifetime[dead] = time[dead]
                    active[dead] = False
                    act = act[active[act]]
                deciding = job_lanes[any_alive]
            if deciding.size:
                deciding_rows = np.flatnonzero(any_alive)
                kp_deciding = kp.take(deciding)
                # The scalar battery view's available charge is
                # ``max(0, c * margin)`` in exactly this operation order.
                context = BatchDecisionContext(
                    lanes=deciding,
                    available_charge=np.maximum(
                        0.0, kp_deciding.c * margin[deciding_rows]
                    ),
                    alive=alive[deciding_rows],
                    current=cur_current[deciding],
                    time=time[deciding],
                    job_index=job_index[deciding],
                    is_switchover=switchover[deciding],
                    previous_choice=prev_choice[deciding],
                )
                choice = np.asarray(policy.choose(context), dtype=np.int64)
                if choice.shape != (deciding.size,):
                    raise ValueError(
                        f"policy {policy.name!r} returned shape {choice.shape}, "
                        f"expected ({deciding.size},)"
                    )
                if np.any((choice < 0) | (choice >= n_bat)):
                    raise ValueError(
                        f"policy {policy.name!r} chose a battery that does not exist"
                    )
                if not np.all(alive[deciding_rows, choice]):
                    raise ValueError(
                        f"policy {policy.name!r} chose a battery that is already empty"
                    )
                decisions[deciding] += 1
                c_chosen, k_chosen = kp_deciding.battery(choice)
                crossing, crossed = time_to_empty_array(
                    c_chosen,
                    k_chosen,
                    state[deciding, choice, GAMMA],
                    state[deciding, choice, DELTA],
                    cur_current[deciding],
                    remaining[deciding],
                )

            # ---- one span per stepping lane: the whole epoch for idle
            # lanes, the served slice (up to the empty crossing) for jobs.
            stepping = np.concatenate([idle_lanes, deciding])
            if stepping.size == 0:
                continue
            span = np.concatenate(
                [
                    remaining[idle_lanes],
                    np.where(crossed, crossing, remaining[deciding]),
                ]
            )
            battery_currents = np.zeros((stepping.size, n_bat))
            if deciding.size:
                job_rows = idle_lanes.size + np.arange(deciding.size)
                battery_currents[job_rows, choice] = cur_current[deciding]

            old = state[stepping]
            new = step_constant_current_array(
                kp.take(stepping), old, battery_currents, span[:, None]
            )
            # Batteries observed empty stay frozen, exactly like the scalar
            # adapter's sticky ``_MarkedState``.
            frozen = sticky[stepping]
            state[stepping] = np.where(frozen[:, :, None], old, new)
            time[stepping] += span
            remaining[stepping] -= span

            # ---- post-span bookkeeping for the job lanes.
            if deciding.size:
                prev_choice[deciding] = choice
                hit = np.flatnonzero(crossed)
                if hit.size:
                    hit_lanes = deciding[hit]
                    sticky[hit_lanes, choice[hit]] = True
                    margin_after = empty_margin_array(
                        kp.take(hit_lanes), state[hit_lanes]
                    )
                    alive_after = (~sticky[hit_lanes]) & (
                        margin_after > _EMPTY_TOLERANCE
                    )
                    died = ~np.any(alive_after, axis=1)
                    dead_lanes = hit_lanes[died]
                    if dead_lanes.size:
                        lifetime[dead_lanes] = time[dead_lanes]
                        active[dead_lanes] = False
                        act = act[active[act]]
                    switchover[hit_lanes[~died]] = True

        residual = np.sum(total_charge_array(state), axis=1)
        return BatchResult(
            policy_name=policy.name,
            lifetimes=lifetime,
            decisions=decisions,
            residual_charge=residual,
            final_states=state,
        )

    # ------------------------------------------------------------------ #
    # vectorized discrete (dKiBaM) path
    # ------------------------------------------------------------------ #
    def _run_discrete(
        self,
        scenarios: ScenarioSet,
        policy: VectorPolicy,
        dkp: Optional[DiscreteKernelParams] = None,
    ) -> BatchResult:
        """Event-jumping batch dKiBaM, exactly matching the scalar tick loop.

        State per battery lane is the integer quadruple of
        :class:`repro.kibam.discrete.DiscreteBatteryState` -- charge units
        ``n``, height units ``m``, recovery tick counter, sticky empty flag
        -- plus one equation-(7) draw accumulator per scenario (only the
        serving battery accumulates; every other live battery is reset by
        each idle tick, so the scenario-level accumulator with its
        owner/rate tag reproduces the per-battery scalar rule exactly).

        Between events every counter advances linearly, so each loop
        iteration (a) jumps every active scenario to one tick before its
        own next event -- next unit draw, next equation-(6) recovery step,
        or epoch end, whichever is sooner -- in O(1) and (b) replays that
        event tick with the full scalar tick semantics: recovery first,
        then the draw loop with per-unit emptiness checks, then epoch /
        switchover bookkeeping.  Dead and exhausted scenarios leave the
        active set immediately and cost nothing afterwards.
        """
        dkp = self._discrete_params() if dkp is None else dkp
        n_scen = scenarios.n_scenarios
        n_bat = self.n_batteries
        dp = dkp.expanded(n_scen)
        darr = scenarios.discretized(dkp.time_step, dkp.charge_unit)
        e_cur, e_ct, e_ticks = darr.cur, darr.cur_times, darr.ticks
        currents = scenarios.currents
        n_epochs = scenarios.n_epochs
        time_step = dkp.time_step
        charge_unit = dkp.charge_unit
        cp = dp.c_permille
        q = 1000 - cp
        tables = dp.tables
        table_id = dp.table_id
        BIG = DISCRETE_UNREACHABLE

        # Battery lane state (all integers; empty lanes are frozen).
        n = dp.total_units.copy()
        m = np.zeros((n_scen, n_bat), dtype=np.int64)
        recov = np.zeros((n_scen, n_bat), dtype=np.int64)
        empty = np.zeros((n_scen, n_bat), dtype=bool)

        # Scenario control state.
        epoch_idx = np.full(n_scen, -1, dtype=np.int64)
        remaining = np.zeros(n_scen, dtype=np.int64)  # ticks left in epoch
        cur_s = np.zeros(n_scen, dtype=np.int64)
        ct_s = np.ones(n_scen, dtype=np.int64)
        serving = np.full(n_scen, -1, dtype=np.int64)
        # Draw accumulator: value, owning battery and the (cur, cur_times)
        # rate it was built under (the scalar ``disch_rate`` tag).
        acc = np.zeros(n_scen, dtype=np.int64)
        acc_b = np.full(n_scen, -1, dtype=np.int64)
        acc_cur = np.zeros(n_scen, dtype=np.int64)
        acc_ct = np.ones(n_scen, dtype=np.int64)
        time_t = np.zeros(n_scen, dtype=np.int64)
        job_index = np.full(n_scen, -1, dtype=np.int64)
        prev_choice = np.full(n_scen, -1, dtype=np.int64)
        decisions = np.zeros(n_scen, dtype=np.int64)
        lifetime_t = np.full(n_scen, -1, dtype=np.int64)
        switchover = np.zeros(n_scen, dtype=bool)
        need_decide = np.zeros(n_scen, dtype=bool)
        active = np.ones(n_scen, dtype=bool)

        policy.reset(n_scen, n_bat)

        act = np.flatnonzero(active)
        while act.size:
            # ---- advance scenarios whose epoch is out of ticks.  Entering
            # a job epoch with at least one tick schedules a decision; a
            # zero-tick job epoch is skipped without one (the scalar
            # ``while remaining > eps`` never runs), and entering an idle
            # epoch resets the draw accumulator (the first idle tick would).
            while True:
                adv = act[remaining[act] == 0]
                if adv.size == 0:
                    break
                epoch_idx[adv] += 1
                exhausted = epoch_idx[adv] >= n_epochs[adv]
                done = adv[exhausted]
                active[done] = False  # survived the whole load
                live = adv[~exhausted]
                if live.size:
                    e = epoch_idx[live]
                    remaining[live] = e_ticks[live, e]
                    cur_s[live] = e_cur[live, e]
                    ct_s[live] = e_ct[live, e]
                    serving[live] = -1
                    switchover[live] = False
                    is_job = cur_s[live] > 0
                    job_index[live[is_job]] += 1
                    started = remaining[live] > 0
                    need_decide[live] = is_job & started
                    idle_started = live[(~is_job) & started]
                    if idle_started.size:
                        acc[idle_started] = 0
                        acc_b[idle_started] = -1
                        acc_cur[idle_started] = 0
                        acc_ct[idle_started] = 1
                if done.size:
                    act = act[active[act]]
            if act.size == 0:
                break

            # ---- scheduling decisions (job-epoch entry or switchover).
            dec = act[need_decide[act]]
            if dec.size:
                crit = q[dec] * m[dec] >= cp[dec] * n[dec]
                alive = ~empty[dec] & ~crit
                any_alive = np.any(alive, axis=1)
                dead = dec[~any_alive]
                if dead.size:
                    # A job arrived and no battery can serve it: the system
                    # died the moment the previous span ended.
                    lifetime_t[dead] = time_t[dead]
                    active[dead] = False
                    need_decide[dead] = False
                    act = act[active[act]]
                deciding = dec[any_alive]
                if deciding.size:
                    rows = np.flatnonzero(any_alive)
                    # The scalar battery view computes
                    # ``max(0, c * (n * Gamma - (1 - c) * (m * Delta)))``
                    # in exactly this operation order.
                    gamma = n[deciding] * charge_unit
                    delta = m[deciding] * dp.height_unit[deciding]
                    c_dec = dp.c[deciding]
                    context = BatchDecisionContext(
                        lanes=deciding,
                        available_charge=np.maximum(
                            0.0, c_dec * (gamma - (1.0 - c_dec) * delta)
                        ),
                        alive=alive[rows],
                        current=currents[deciding, epoch_idx[deciding]],
                        time=time_t[deciding] * time_step,
                        job_index=job_index[deciding],
                        is_switchover=switchover[deciding],
                        previous_choice=prev_choice[deciding],
                    )
                    choice = np.asarray(policy.choose(context), dtype=np.int64)
                    if choice.shape != (deciding.size,):
                        raise ValueError(
                            f"policy {policy.name!r} returned shape "
                            f"{choice.shape}, expected ({deciding.size},)"
                        )
                    if np.any((choice < 0) | (choice >= n_bat)):
                        raise ValueError(
                            f"policy {policy.name!r} chose a battery that does not exist"
                        )
                    if not np.all(alive[rows, choice]):
                        raise ValueError(
                            f"policy {policy.name!r} chose a battery that is already empty"
                        )
                    decisions[deciding] += 1
                    serving[deciding] = choice
                    prev_choice[deciding] = choice
                    # The accumulator persists only when the same battery
                    # keeps serving at the same rate with no idle tick in
                    # between; any other transition restarts it (scalar
                    # ``disch_rate`` reset rule).
                    stale = (
                        (acc_b[deciding] != choice)
                        | (acc_cur[deciding] != cur_s[deciding])
                        | (acc_ct[deciding] != ct_s[deciding])
                    )
                    acc[deciding[stale]] = 0
                    acc_b[deciding] = choice
                    acc_cur[deciding] = cur_s[deciding]
                    acc_ct[deciding] = ct_s[deciding]
                    need_decide[deciding] = False
            if act.size == 0:
                break

            # ---- jump every scenario to one tick before its next event.
            recov_act = recov[act]
            m_act = m[act]
            live_rec = ~empty[act] & (m_act > 1)
            steps = tables[table_id[act], m_act]
            # A draw can raise m into a *shorter* equation-(6) step than the
            # ticks already accumulated; the scalar counter then fires on
            # the very next tick, so the distance is clamped at one.
            dt_rec = np.where(
                live_rec, np.maximum(steps - recov_act, 1), BIG
            ).min(axis=1)
            srv = serving[act]
            is_srv = srv >= 0
            cta = ct_s[act]
            cura = cur_s[act]
            acc_act = acc[act]
            dt_draw = np.where(
                is_srv, -((acc_act - cta) // np.maximum(cura, 1)), BIG
            )
            k = np.minimum(np.minimum(remaining[act], dt_rec), dt_draw)

            # ---- advance k ticks at once: the k-1 quiet ticks move every
            # counter linearly, and the k-th tick is the event tick with the
            # scalar tick's exact semantics.  Recovery first: every live
            # lane above one height unit counts k ticks, and a lane
            # reaching its equation-(6) step drops one unit (by the choice
            # of k this can only happen on the event tick itself).
            inc = recov_act + np.where(live_rec, k[:, None], 0)
            rec_hit = live_rec & (inc >= steps)
            m[act] = m_act - rec_hit
            recov[act] = np.where(rec_hit, 0, inc)
            acc_act = acc_act + np.where(is_srv, k * cura, 0)
            acc[act] = acc_act
            time_t[act] += k
            remaining[act] -= k

            # Discharge: the serving lane's accumulator gains ``cur`` per
            # tick; each time it reaches ``cur_times`` one unit moves from
            # n to m, with the per-mille emptiness criterion checked per
            # drawn unit.  Draws are events, so they land on the event tick.
            sv = act[is_srv]
            served_empty = np.zeros(sv.size, dtype=bool)
            if sv.size:
                bb = serving[sv]
                todo = np.flatnonzero(acc_act[is_srv] >= cta[is_srv])
                while todo.size:
                    lanes = sv[todo]
                    bsel = bb[todo]
                    nn = n[lanes, bsel]
                    mm = m[lanes, bsel]
                    crit_now = q[lanes, bsel] * mm >= cp[lanes, bsel] * nn
                    if crit_now.any():
                        # Already empty at the draw instant (defensive, like
                        # the scalar tick): observe, draw nothing further.
                        empty[lanes[crit_now], bsel[crit_now]] = True
                        served_empty[todo[crit_now]] = True
                    drew = ~crit_now
                    dl = lanes[drew]
                    if dl.size == 0:
                        break
                    db = bsel[drew]
                    n[dl, db] = nn[drew] - 1
                    m[dl, db] = mm[drew] + 1
                    acc[dl] -= ct_s[dl]
                    crit_after = q[dl, db] * m[dl, db] >= cp[dl, db] * n[dl, db]
                    if crit_after.any():
                        empty[dl[crit_after], db[crit_after]] = True
                        served_empty[todo[drew][crit_after]] = True
                    again = todo[drew][~crit_after]
                    todo = again[acc[sv[again]] >= ct_s[sv[again]]]

            # ---- post-tick: serving batteries observed empty this tick.
            if served_empty.any():
                hit = sv[served_empty]
                crit_all = q[hit] * m[hit] >= cp[hit] * n[hit]
                alive_after = ~empty[hit] & ~crit_all
                died = ~np.any(alive_after, axis=1)
                dead = hit[died]
                serving[hit] = -1
                if dead.size:
                    lifetime_t[dead] = time_t[dead]
                    active[dead] = False
                surv = hit[~died]
                if surv.size:
                    # Mid-job handover (Section 4.3): decide again before
                    # the next tick if the job has ticks left.
                    cont = surv[remaining[surv] > 0]
                    need_decide[cont] = True
                    switchover[cont] = True
                if dead.size:
                    act = act[active[act]]

        gamma = n * charge_unit
        delta = m * dp.height_unit
        survived = lifetime_t < 0
        lifetimes = np.where(survived, np.nan, lifetime_t * time_step)
        return BatchResult(
            policy_name=policy.name,
            lifetimes=lifetimes,
            decisions=decisions,
            residual_charge=np.sum(gamma, axis=1),
            final_states=np.stack([gamma, delta], axis=-1),
            lifetime_ticks=lifetime_t,
            charge_units=np.stack([n, m], axis=-1),
        )

    # ------------------------------------------------------------------ #
    # scalar fallback
    # ------------------------------------------------------------------ #
    def _run_fallback(
        self,
        scenarios: ScenarioSet,
        policy: Union[str, VectorPolicy, SchedulingPolicy],
    ) -> BatchResult:
        """One scalar simulation per scenario, packed into a batch result."""
        from repro.core.policies import make_policy

        if isinstance(policy, VectorPolicy):
            policy = policy.name
        if isinstance(policy, str):
            policy = make_policy(policy)

        def make_simulator(row_params: Sequence[BatteryParameters]) -> MultiBatterySimulator:
            return MultiBatterySimulator(
                make_battery_models(
                    row_params,
                    backend=self.backend,
                    time_step=self.time_step,
                    charge_unit=self.charge_unit,
                )
            )

        shared_simulator = (
            make_simulator(self.params) if self.param_rows is None else None
        )
        lifetimes = np.full(scenarios.n_scenarios, np.nan)
        decisions = np.zeros(scenarios.n_scenarios, dtype=np.int64)
        residual = np.zeros(scenarios.n_scenarios)
        for index, load in enumerate(scenarios.loads):
            simulator = (
                shared_simulator
                if shared_simulator is not None
                else make_simulator(self.param_rows[index])
            )
            result = simulator.run(load, policy)
            if result.lifetime is not None:
                lifetimes[index] = result.lifetime
            decisions[index] = result.decisions
            residual[index] = result.residual_charge
        return BatchResult(
            policy_name=policy.name,
            lifetimes=lifetimes,
            decisions=decisions,
            residual_charge=residual,
            final_states=None,
        )
