"""Lock-step batch simulator: many scenarios, one set of NumPy calls.

:class:`BatchSimulator` is the array-native counterpart of
:class:`repro.core.simulator.MultiBatterySimulator`.  It advances a whole
:class:`repro.engine.scenarios.ScenarioSet` at once: every iteration of its
event loop moves *every* still-active scenario forward by one span (a full
idle epoch, or one served slice of a job epoch), with the KiBaM dynamics,
the empty-crossing search and the scheduling decisions all evaluated as
vectorized kernels over the scenario axis.  Scenarios that die or exhaust
their load drop out of the active set; the loop ends when none remain.

The semantics are a faithful transliteration of the scalar simulator --
same epoch walk, same ``1e-9`` span epsilon, same ``1e-12`` emptiness
tolerance, same sticky empty observation (Section 4.3 of the paper), same
mid-job switchover rule -- so batch lifetimes match scalar lifetimes to
within the root-finder tolerance (far below 1e-9 minutes; the test suite
pins this).  Scenarios whose policy or battery backend has no vectorized
implementation transparently fall back to the scalar simulator, one
scenario at a time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.battery import make_battery_models
from repro.core.policies import SchedulingPolicy
from repro.core.simulator import MultiBatterySimulator
from repro.engine.kernels import (
    DELTA,
    GAMMA,
    KernelParams,
    empty_margin_array,
    initial_state_array,
    step_constant_current_array,
    time_to_empty_array,
    total_charge_array,
)
from repro.engine.policies import (
    BatchDecisionContext,
    VectorPolicy,
    VectorPolicyStack,
    has_vector_policy,
    make_vector_policy,
)
from repro.engine.scenarios import ScenarioSet
from repro.kibam.parameters import BatteryParameters
from repro.workloads.load import Load

#: Spans shorter than this (minutes) end a job epoch; identical to the
#: scalar simulator's ``_TIME_EPSILON``.
_TIME_EPSILON = 1e-9
#: Emptiness tolerance (Amin); identical to ``AnalyticalBattery.is_empty``.
_EMPTY_TOLERANCE = 1e-12


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Outcome of one policy over a batch of scenarios.

    Attributes:
        policy_name: name of the policy that produced the batch.
        lifetimes: system lifetime per scenario in minutes; NaN where the
            batteries survived the whole load.
        decisions: scheduling decisions taken per scenario.
        residual_charge: total charge (Amin) left across the batteries of
            each scenario at the end of its simulation.
        final_states: transformed KiBaM states, shape
            ``(n_scenarios, n_batteries, 2)``; ``None`` when the batch ran
            through the scalar fallback.
    """

    policy_name: str
    lifetimes: np.ndarray
    decisions: np.ndarray
    residual_charge: np.ndarray
    final_states: Optional[np.ndarray] = None

    @property
    def n_scenarios(self) -> int:
        return self.lifetimes.shape[0]

    @property
    def survived(self) -> np.ndarray:
        """Boolean mask of the scenarios whose batteries outlived the load."""
        return np.isnan(self.lifetimes)

    def lifetimes_or_raise(self) -> np.ndarray:
        """All lifetimes, raising if any scenario survived its load."""
        if bool(np.any(self.survived)):
            count = int(np.sum(self.survived))
            raise RuntimeError(
                f"{count} scenario(s) survived the whole load; extend the "
                "loads to measure lifetimes"
            )
        return self.lifetimes


class BatchSimulator:
    """Simulates one battery set serving many scenario loads in lock-step.

    Args:
        params: either one battery parameter set per battery (a flat
            sequence of :class:`BatteryParameters`, shared by every scenario
            in a batch) or one *row* of parameter sets per scenario (a
            sequence of sequences, all of the same width) -- the
            parameter-sweep form, where every scenario lane carries its own
            battery triples and batches must have exactly one scenario per
            row.
        backend: ``"analytical"`` runs the vectorized engine; any other
            registered backend (``"discrete"``, ``"linear"``) runs through
            the scalar fallback.
        time_step / charge_unit: dKiBaM discretization, fallback only.
    """

    def __init__(
        self,
        params: Union[
            Sequence[BatteryParameters], Sequence[Sequence[BatteryParameters]]
        ],
        backend: str = "analytical",
        time_step: float = 0.01,
        charge_unit: float = 0.01,
    ) -> None:
        params = tuple(params)
        if not params:
            raise ValueError("at least one battery parameter set is required")
        if isinstance(params[0], BatteryParameters):
            self.params: Tuple = params
            self.param_rows: Optional[Tuple[Tuple[BatteryParameters, ...], ...]] = None
            self._kernel_params = KernelParams.from_parameters(params)
        else:
            rows = tuple(tuple(row) for row in params)
            self._kernel_params = KernelParams.from_parameter_rows(rows)
            self.params = rows
            self.param_rows = rows
        self.backend = backend
        self.time_step = time_step
        self.charge_unit = charge_unit

    @property
    def n_batteries(self) -> int:
        return self._kernel_params.n_batteries

    def _check_scenario_count(self, scenarios: ScenarioSet) -> None:
        if self.param_rows is not None and len(self.param_rows) != scenarios.n_scenarios:
            raise ValueError(
                f"per-scenario parameters cover {len(self.param_rows)} "
                f"scenarios, but the batch has {scenarios.n_scenarios}"
            )

    def run(
        self,
        scenarios: Union[ScenarioSet, Load, Sequence[Load]],
        policy: Union[str, VectorPolicy, SchedulingPolicy],
    ) -> BatchResult:
        """Simulate ``policy`` on every scenario and return the batch result."""
        if not isinstance(scenarios, ScenarioSet):
            scenarios = ScenarioSet.from_loads(scenarios)
        self._check_scenario_count(scenarios)
        vector_policy = self._resolve_vector_policy(policy)
        if vector_policy is None or self.backend != "analytical":
            return self._run_fallback(scenarios, policy)
        return self._run_vectorized(scenarios, vector_policy)

    def run_many(
        self,
        scenarios: Union[ScenarioSet, Load, Sequence[Load]],
        policies: Sequence[Union[str, VectorPolicy, SchedulingPolicy]],
    ) -> Dict[str, BatchResult]:
        """Simulate several policies over the same scenarios in one batch.

        All vectorizable policies are swept together as one stacked
        lock-step batch (policy ``p`` owning lane block ``p``), which
        amortizes the per-iteration NumPy overhead across policies; the
        rest run one by one through :meth:`run`.  Returns one
        :class:`BatchResult` per policy, keyed by policy name.
        """
        if not policies:
            raise ValueError("at least one policy is required")
        names = [
            policy if isinstance(policy, str) else policy.name for policy in policies
        ]
        if len(set(names)) != len(names):
            raise ValueError(
                f"policy names must be unique (results are keyed by name), got {names}"
            )
        if not isinstance(scenarios, ScenarioSet):
            scenarios = ScenarioSet.from_loads(scenarios)
        self._check_scenario_count(scenarios)
        resolved = [(policy, self._resolve_vector_policy(policy)) for policy in policies]
        results: Dict[str, BatchResult] = {}

        vector = [v for _, v in resolved if v is not None]
        if self.backend == "analytical" and len(vector) > 1:
            stack = VectorPolicyStack(vector, scenarios.n_scenarios)
            stacked = self._run_vectorized(
                scenarios.tiled(len(vector)),
                stack,
                kp=self._kernel_params.tiled(len(vector)),
            )
            n = scenarios.n_scenarios
            for index, policy in enumerate(vector):
                lanes = slice(index * n, (index + 1) * n)
                results[policy.name] = BatchResult(
                    policy_name=policy.name,
                    lifetimes=stacked.lifetimes[lanes],
                    decisions=stacked.decisions[lanes],
                    residual_charge=stacked.residual_charge[lanes],
                    final_states=stacked.final_states[lanes]
                    if stacked.final_states is not None
                    else None,
                )
            remaining = [p for p, v in resolved if v is None]
        else:
            remaining = list(policies)
        for policy in remaining:
            result = self.run(scenarios, policy)
            results[result.policy_name] = result
        return results

    # ------------------------------------------------------------------ #
    # vectorized path
    # ------------------------------------------------------------------ #
    def _resolve_vector_policy(
        self, policy: Union[str, VectorPolicy, SchedulingPolicy]
    ) -> Optional[VectorPolicy]:
        if isinstance(policy, VectorPolicy):
            return policy
        if isinstance(policy, str) and has_vector_policy(policy):
            return make_vector_policy(policy)
        return None

    def _run_vectorized(
        self,
        scenarios: ScenarioSet,
        policy: VectorPolicy,
        kp: Optional[KernelParams] = None,
    ) -> BatchResult:
        kp = self._kernel_params if kp is None else kp
        n_scen = scenarios.n_scenarios
        n_bat = self.n_batteries
        currents = scenarios.currents
        durations = scenarios.durations
        n_epochs = scenarios.n_epochs

        state = initial_state_array(kp, n_scen)
        sticky = np.zeros((n_scen, n_bat), dtype=bool)
        epoch_idx = np.full(n_scen, -1, dtype=np.int64)
        cur_current = np.zeros(n_scen)
        remaining = np.zeros(n_scen)
        time = np.zeros(n_scen)
        job_index = np.full(n_scen, -1, dtype=np.int64)
        prev_choice = np.full(n_scen, -1, dtype=np.int64)
        decisions = np.zeros(n_scen, dtype=np.int64)
        lifetime = np.full(n_scen, np.nan)
        switchover = np.zeros(n_scen, dtype=bool)
        active = np.ones(n_scen, dtype=bool)

        policy.reset(n_scen, n_bat)

        act = np.flatnonzero(active)
        while act.size:
            # ---- advance scenarios whose current epoch is finished.  A job
            # epoch is finished when less than the span epsilon remains (the
            # scalar simulator's ``while remaining > eps``); an idle epoch is
            # consumed whole in one span, so it is finished when remaining
            # hits zero exactly.
            while True:
                cur_a = cur_current[act]
                rem_a = remaining[act]
                finished = np.where(
                    cur_a > 0.0, rem_a <= _TIME_EPSILON, rem_a == 0.0
                )
                adv = act[finished]
                if adv.size == 0:
                    break
                epoch_idx[adv] += 1
                exhausted = epoch_idx[adv] >= n_epochs[adv]
                # Load ran out with batteries still usable: the scenario
                # survived; its lifetime stays NaN.
                active[adv[exhausted]] = False
                live = adv[~exhausted]
                if live.size:
                    cur_current[live] = currents[live, epoch_idx[live]]
                    remaining[live] = durations[live, epoch_idx[live]]
                    entered_job = cur_current[live] > 0.0
                    job_index[live[entered_job]] += 1
                    switchover[live] = False
                if exhausted.any():
                    act = act[active[act]]
            if act.size == 0:
                break

            cur = cur_current[act]
            is_idle = cur == 0.0
            idle_lanes = act[is_idle]
            job_lanes = act[~is_idle]

            # ---- scheduling decisions for the job lanes.
            deciding = job_lanes
            choice = np.empty(0, dtype=np.int64)
            crossed = np.zeros(0, dtype=bool)
            crossing = np.empty(0)
            if job_lanes.size:
                margin = empty_margin_array(kp.take(job_lanes), state[job_lanes])
                alive = (~sticky[job_lanes]) & (margin > _EMPTY_TOLERANCE)
                any_alive = np.any(alive, axis=1)
                dead = job_lanes[~any_alive]
                if dead.size:
                    # A job arrived and no battery can serve it: the system
                    # died the moment the previous span ended.
                    lifetime[dead] = time[dead]
                    active[dead] = False
                    act = act[active[act]]
                deciding = job_lanes[any_alive]
            if deciding.size:
                deciding_rows = np.flatnonzero(any_alive)
                kp_deciding = kp.take(deciding)
                # The scalar battery view's available charge is
                # ``max(0, c * margin)`` in exactly this operation order.
                context = BatchDecisionContext(
                    lanes=deciding,
                    available_charge=np.maximum(
                        0.0, kp_deciding.c * margin[deciding_rows]
                    ),
                    alive=alive[deciding_rows],
                    current=cur_current[deciding],
                    time=time[deciding],
                    job_index=job_index[deciding],
                    is_switchover=switchover[deciding],
                    previous_choice=prev_choice[deciding],
                )
                choice = np.asarray(policy.choose(context), dtype=np.int64)
                if choice.shape != (deciding.size,):
                    raise ValueError(
                        f"policy {policy.name!r} returned shape {choice.shape}, "
                        f"expected ({deciding.size},)"
                    )
                if np.any((choice < 0) | (choice >= n_bat)):
                    raise ValueError(
                        f"policy {policy.name!r} chose a battery that does not exist"
                    )
                if not np.all(alive[deciding_rows, choice]):
                    raise ValueError(
                        f"policy {policy.name!r} chose a battery that is already empty"
                    )
                decisions[deciding] += 1
                c_chosen, k_chosen = kp_deciding.battery(choice)
                crossing, crossed = time_to_empty_array(
                    c_chosen,
                    k_chosen,
                    state[deciding, choice, GAMMA],
                    state[deciding, choice, DELTA],
                    cur_current[deciding],
                    remaining[deciding],
                )

            # ---- one span per stepping lane: the whole epoch for idle
            # lanes, the served slice (up to the empty crossing) for jobs.
            stepping = np.concatenate([idle_lanes, deciding])
            if stepping.size == 0:
                continue
            span = np.concatenate(
                [
                    remaining[idle_lanes],
                    np.where(crossed, crossing, remaining[deciding]),
                ]
            )
            battery_currents = np.zeros((stepping.size, n_bat))
            if deciding.size:
                job_rows = idle_lanes.size + np.arange(deciding.size)
                battery_currents[job_rows, choice] = cur_current[deciding]

            old = state[stepping]
            new = step_constant_current_array(
                kp.take(stepping), old, battery_currents, span[:, None]
            )
            # Batteries observed empty stay frozen, exactly like the scalar
            # adapter's sticky ``_MarkedState``.
            frozen = sticky[stepping]
            state[stepping] = np.where(frozen[:, :, None], old, new)
            time[stepping] += span
            remaining[stepping] -= span

            # ---- post-span bookkeeping for the job lanes.
            if deciding.size:
                prev_choice[deciding] = choice
                hit = np.flatnonzero(crossed)
                if hit.size:
                    hit_lanes = deciding[hit]
                    sticky[hit_lanes, choice[hit]] = True
                    margin_after = empty_margin_array(
                        kp.take(hit_lanes), state[hit_lanes]
                    )
                    alive_after = (~sticky[hit_lanes]) & (
                        margin_after > _EMPTY_TOLERANCE
                    )
                    died = ~np.any(alive_after, axis=1)
                    dead_lanes = hit_lanes[died]
                    if dead_lanes.size:
                        lifetime[dead_lanes] = time[dead_lanes]
                        active[dead_lanes] = False
                        act = act[active[act]]
                    switchover[hit_lanes[~died]] = True

        residual = np.sum(total_charge_array(state), axis=1)
        return BatchResult(
            policy_name=policy.name,
            lifetimes=lifetime,
            decisions=decisions,
            residual_charge=residual,
            final_states=state,
        )

    # ------------------------------------------------------------------ #
    # scalar fallback
    # ------------------------------------------------------------------ #
    def _run_fallback(
        self,
        scenarios: ScenarioSet,
        policy: Union[str, VectorPolicy, SchedulingPolicy],
    ) -> BatchResult:
        """One scalar simulation per scenario, packed into a batch result."""
        from repro.core.policies import make_policy

        if isinstance(policy, VectorPolicy):
            policy = policy.name
        if isinstance(policy, str):
            policy = make_policy(policy)

        def make_simulator(row_params: Sequence[BatteryParameters]) -> MultiBatterySimulator:
            return MultiBatterySimulator(
                make_battery_models(
                    row_params,
                    backend=self.backend,
                    time_step=self.time_step,
                    charge_unit=self.charge_unit,
                )
            )

        shared_simulator = (
            make_simulator(self.params) if self.param_rows is None else None
        )
        lifetimes = np.full(scenarios.n_scenarios, np.nan)
        decisions = np.zeros(scenarios.n_scenarios, dtype=np.int64)
        residual = np.zeros(scenarios.n_scenarios)
        for index, load in enumerate(scenarios.loads):
            simulator = (
                shared_simulator
                if shared_simulator is not None
                else make_simulator(self.param_rows[index])
            )
            result = simulator.run(load, policy)
            if result.lifetime is not None:
                lifetimes[index] = result.lifetime
            decisions[index] = result.decisions
            residual[index] = result.residual_charge
        return BatchResult(
            policy_name=policy.name,
            lifetimes=lifetimes,
            decisions=decisions,
            residual_charge=residual,
            final_states=None,
        )
