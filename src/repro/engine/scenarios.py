"""Scenario batches: many loads packed into padded epoch arrays.

A :class:`ScenarioSet` is the unit of work of the batch engine: a tuple of
:class:`repro.workloads.load.Load` objects plus their array form -- per-
scenario epoch currents and durations padded to a common length, which is
what lets :class:`repro.engine.batch.BatchSimulator` advance every scenario
with the same NumPy indexing.  The object form is kept alongside the arrays
so scalar fallbacks (non-vectorizable policies, the discrete backend, the
optimal scheduler) can run on exactly the same loads.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kibam.discrete import discharge_spec_for, duration_ticks
from repro.workloads.generator import RandomLoadConfig, generate_random_load
from repro.workloads.load import Load


@dataclasses.dataclass(frozen=True)
class DiscreteScenarioArrays:
    """Epoch arrays of a scenario batch in dKiBaM integer form.

    For ``model="discrete"`` runs every epoch current is converted to its
    equation-(7) integer pair (``cur`` charge units per ``cur_times`` ticks)
    and every duration to a whole number of ticks, through the same
    conversions as the scalar :class:`repro.kibam.discrete.DiscreteKibam`.
    All arrays share the padded ``(n_scenarios, max_epochs)`` layout of
    :class:`ScenarioSet`; padded epochs are idle with zero ticks.
    """

    cur: np.ndarray
    cur_times: np.ndarray
    ticks: np.ndarray


@dataclasses.dataclass(frozen=True)
class ScenarioSet:
    """A batch of loads in both object and padded-array form.

    Attributes:
        loads: the scenario loads, one per row of the arrays.
        currents: epoch currents in Ampere, shape ``(n_scenarios,
            max_epochs)``, zero-padded past each scenario's last epoch.
        durations: epoch durations in minutes, same shape, zero-padded.
        n_epochs: number of real epochs per scenario, shape
            ``(n_scenarios,)``.
    """

    loads: Tuple[Load, ...]
    currents: np.ndarray
    durations: np.ndarray
    n_epochs: np.ndarray

    @staticmethod
    def from_loads(loads: Union[Load, Sequence[Load]]) -> "ScenarioSet":
        """Pack one or more loads into a scenario batch."""
        if isinstance(loads, Load):
            loads = [loads]
        loads = tuple(loads)
        if not loads:
            raise ValueError("a scenario set needs at least one load")
        counts = np.array([len(load.epochs) for load in loads], dtype=np.int64)
        width = int(counts.max())
        currents = np.zeros((len(loads), width), dtype=np.float64)
        durations = np.zeros((len(loads), width), dtype=np.float64)
        for row, load in enumerate(loads):
            for col, epoch in enumerate(load.epochs):
                currents[row, col] = epoch.current
                durations[row, col] = epoch.duration
        return ScenarioSet(
            loads=loads, currents=currents, durations=durations, n_epochs=counts
        )

    @staticmethod
    def random(
        n_scenarios: int,
        config: Optional[RandomLoadConfig] = None,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> "ScenarioSet":
        """Sample ``n_scenarios`` random loads.

        Without ``rng``, scenario ``i`` uses seed ``seed + i`` -- the exact
        sequence the scalar Monte-Carlo loop has always drawn, so batch and
        scalar sweeps see identical loads sample for sample.  With ``rng``
        (a :class:`numpy.random.Generator`), all scenarios are drawn from
        that single stream.
        """
        if n_scenarios < 1:
            raise ValueError("n_scenarios must be at least 1")
        loads: List[Load] = []
        for index in range(n_scenarios):
            if rng is not None:
                loads.append(generate_random_load(config=config, rng=rng))
            else:
                loads.append(generate_random_load(seed + index, config))
        return ScenarioSet.from_loads(loads)

    @property
    def n_scenarios(self) -> int:
        return len(self.loads)

    @property
    def max_epochs(self) -> int:
        return self.currents.shape[1]

    def __len__(self) -> int:
        return self.n_scenarios

    def subset(self, indices: Sequence[int]) -> "ScenarioSet":
        """A scenario set containing only the given scenario rows."""
        return ScenarioSet.from_loads([self.loads[i] for i in indices])

    def tiled(self, times: int) -> "ScenarioSet":
        """The scenario set repeated ``times`` times, lanes concatenated.

        Used to sweep several policies in one lock-step batch (policy ``p``
        owning lane block ``p``); the padded arrays are tiled directly, so
        this is cheap even for large batches.
        """
        if times < 1:
            raise ValueError("times must be at least 1")
        if times == 1:
            return self
        return ScenarioSet(
            loads=self.loads * times,
            currents=np.tile(self.currents, (times, 1)),
            durations=np.tile(self.durations, (times, 1)),
            n_epochs=np.tile(self.n_epochs, times),
        )

    def discretized(
        self, time_step: float = 0.01, charge_unit: float = 0.01
    ) -> DiscreteScenarioArrays:
        """The batch's epochs as dKiBaM integer arrays (``model="discrete"``).

        Raises ``ValueError`` when a current or duration is not exactly
        representable at the given discretization, exactly like the scalar
        dKiBaM would.  Conversions are cached per distinct value, so loads
        built from a few current levels and step-rounded durations (the
        paper loads, every random generator) discretize in O(distinct)
        Fraction work rather than O(epochs).
        """
        # Padded epochs carry current 0.0 / duration 0.0, which convert to
        # the idle spec and zero ticks, so the whole padded arrays convert
        # through their distinct values in one pass.
        currents, cur_inverse = np.unique(self.currents, return_inverse=True)
        cur_map = np.empty(currents.shape[0], dtype=np.int64)
        ct_map = np.empty(currents.shape[0], dtype=np.int64)
        for index, current in enumerate(currents):
            spec = discharge_spec_for(float(current), time_step, charge_unit)
            cur_map[index], ct_map[index] = spec.cur, spec.cur_times
        durations, dur_inverse = np.unique(self.durations, return_inverse=True)
        tick_map = np.array(
            [duration_ticks(float(d), time_step) for d in durations], dtype=np.int64
        )
        shape = self.currents.shape
        return DiscreteScenarioArrays(
            cur=cur_map[cur_inverse].reshape(shape),
            cur_times=ct_map[cur_inverse].reshape(shape),
            ticks=tick_map[dur_inverse].reshape(shape),
        )

    def chunked(self, chunk_size: int) -> Iterator["ScenarioSet"]:
        """Split into consecutive chunks of at most ``chunk_size`` scenarios.

        A convenience for sharding one large sweep into smaller batches --
        e.g. to bound peak memory, to feed :func:`repro.engine.parallel.
        run_chunked` with pre-built scenario sets, or to spread a sweep
        over several sessions.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        for start in range(0, self.n_scenarios, chunk_size):
            yield ScenarioSet.from_loads(self.loads[start : start + chunk_size])
