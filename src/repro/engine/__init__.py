"""Batch execution engine: array-native simulation at fleet scale.

This subsystem answers the ROADMAP's scale mandate for the hot path of the
reproduction.  Where :mod:`repro.core.simulator` walks one (battery-set,
load, policy) scenario at a time in pure Python, the engine advances
thousands of scenarios per NumPy call:

* :mod:`repro.engine.kernels` -- vectorized closed-form KiBaM stepping and
  empty-crossing search over ``(n_scenarios, n_batteries, 2)`` state arrays
  (the array form of Section 2.2 of the paper),
* :mod:`repro.engine.policies` -- array implementations of the scheduling
  policies of Section 6, bit-compatible with the scalar tie-breaking,
* :mod:`repro.engine.scenarios` -- :class:`ScenarioSet`, a batch of loads in
  padded-array form,
* :mod:`repro.engine.batch` -- :class:`BatchSimulator`, the lock-step event
  loop with masking of dead scenarios and a scalar fallback for
  non-vectorizable policies/backends,
* :mod:`repro.engine.optimal_batch` -- :class:`BatchOptimalScheduler`, the
  best-first branch-and-bound whose frontier bounds and between-decision
  battery advances run as batched kernels (Section 4's optimal schedules at
  engine speed, with exact parity against the scalar search),
* :mod:`repro.engine.parallel` -- a chunked ``multiprocessing`` executor for
  the workloads that scale across cores instead of array lanes (scalar
  golden-reference sweeps, scalar optimal-search verification).

The scalar simulator remains the golden reference; the test suite pins the
two paths to within 1e-9 minutes on random loads.
"""

from repro.engine.batch import VECTOR_MODELS, BatchResult, BatchSimulator
from repro.engine.optimal_batch import (
    BATCH_OPTIMAL_MODELS,
    BatchOptimalScheduler,
    DecisionTrace,
    FrontierArrays,
    VectorDominanceArchive,
    discrete_segment_array,
    find_optimal_schedule_batched,
    optimal_schedules_batch,
)
from repro.engine.kernels import (
    DiscreteKernelParams,
    KernelParams,
    available_charge_array,
    empty_margin_array,
    initial_state_array,
    step_constant_current_array,
    time_to_empty_array,
    total_charge_array,
)
from repro.engine.parallel import (
    ChunkedExecutor,
    default_worker_count,
    optimal_lifetimes_chunk,
    optimal_schedules_chunk,
    run_chunked,
    simulate_lifetimes_chunk,
)
from repro.engine.policies import (
    BatchDecisionContext,
    VECTOR_POLICY_REGISTRY,
    VectorBestOfTwoPolicy,
    VectorPolicy,
    VectorPolicyStack,
    VectorRoundRobinPolicy,
    VectorSequentialPolicy,
    VectorWorstOfTwoPolicy,
    has_vector_policy,
    make_vector_policy,
)
from repro.engine.scenarios import DiscreteScenarioArrays, ScenarioSet

__all__ = [
    "BATCH_OPTIMAL_MODELS",
    "BatchDecisionContext",
    "BatchOptimalScheduler",
    "BatchResult",
    "BatchSimulator",
    "ChunkedExecutor",
    "DecisionTrace",
    "DiscreteKernelParams",
    "DiscreteScenarioArrays",
    "FrontierArrays",
    "KernelParams",
    "ScenarioSet",
    "VECTOR_MODELS",
    "VECTOR_POLICY_REGISTRY",
    "VectorBestOfTwoPolicy",
    "VectorPolicy",
    "VectorPolicyStack",
    "VectorRoundRobinPolicy",
    "VectorDominanceArchive",
    "VectorSequentialPolicy",
    "VectorWorstOfTwoPolicy",
    "available_charge_array",
    "default_worker_count",
    "discrete_segment_array",
    "empty_margin_array",
    "find_optimal_schedule_batched",
    "has_vector_policy",
    "initial_state_array",
    "make_vector_policy",
    "optimal_lifetimes_chunk",
    "optimal_schedules_batch",
    "optimal_schedules_chunk",
    "run_chunked",
    "simulate_lifetimes_chunk",
    "step_constant_current_array",
    "time_to_empty_array",
    "total_charge_array",
]
