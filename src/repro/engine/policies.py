"""Array-shaped scheduling policies for the batch execution engine.

Each vector policy answers one question for a whole batch of scenarios at
once: *which battery serves the next span in each scenario?*  The decision
rules are exact transliterations of the scalar policies in
:mod:`repro.core.policies` -- including their tie-breaking order, which the
scalar code expresses through tuple sort keys and the vector code through
masked argmax cascades.  Because the batch kernels reproduce the scalar
floating-point values bit for bit, ties resolve identically on both paths.

Policies that cannot be expressed as array operations (e.g. replaying a
fixed assignment, or a policy with Python-level randomness) simply have no
vector counterpart; :class:`repro.engine.batch.BatchSimulator` falls back
to the scalar simulator for those.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Dict, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class BatchDecisionContext:
    """Everything a vector policy may look at, for ``K`` deciding scenarios.

    Attributes:
        lanes: indices of the deciding scenarios into the full batch,
            shape ``(K,)``.  Stateful policies key their per-scenario state
            on these.
        available_charge: available-well charge per battery, ``(K, B)``,
            clamped at zero exactly like the scalar battery view.
        alive: which batteries have not been observed empty, ``(K, B)``.
        current: job current per scenario, ``(K,)``.
        time: absolute decision time per scenario, ``(K,)``.
        job_index: index of the current job per scenario, ``(K,)``.
        is_switchover: whether the decision follows a mid-job empty
            observation, ``(K,)``.
        previous_choice: battery that served the previous span, ``(K,)``,
            ``-1`` when no span has been served yet.
    """

    lanes: np.ndarray
    available_charge: np.ndarray
    alive: np.ndarray
    current: np.ndarray
    time: np.ndarray
    job_index: np.ndarray
    is_switchover: np.ndarray
    previous_choice: np.ndarray

    @property
    def n_batteries(self) -> int:
        return self.alive.shape[1]


class VectorPolicy(abc.ABC):
    """Interface for batch scheduling policies."""

    #: Short identifier; matches the scalar policy of the same behaviour.
    name: str = "abstract"

    def reset(self, n_scenarios: int, n_batteries: int) -> None:
        """Forget all internal state before a new batch run."""

    @abc.abstractmethod
    def choose(self, context: BatchDecisionContext) -> np.ndarray:
        """Return the serving battery per deciding scenario, shape ``(K,)``.

        Every returned battery must be alive in its scenario; the batch
        simulator validates this and raises otherwise.
        """


class VectorSequentialPolicy(VectorPolicy):
    """Lowest-index alive battery (scalar ``sequential``)."""

    name = "sequential"

    def choose(self, context: BatchDecisionContext) -> np.ndarray:
        # argmax over booleans returns the first True per row.
        return np.argmax(context.alive, axis=1)


class VectorRoundRobinPolicy(VectorPolicy):
    """Next alive battery in cyclic order (scalar ``round-robin``)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last_choice: np.ndarray = np.empty(0, dtype=np.int64)

    def reset(self, n_scenarios: int, n_batteries: int) -> None:
        self._last_choice = np.full(n_scenarios, -1, dtype=np.int64)

    def choose(self, context: BatchDecisionContext) -> np.ndarray:
        n = context.n_batteries
        last = self._last_choice[context.lanes]
        start = np.where(last < 0, 0, (last + 1) % n)
        # Row k of ``candidates`` lists the batteries in the cyclic order the
        # scalar policy would probe them; pick the first alive one.
        candidates = (start[:, None] + np.arange(n)[None, :]) % n
        rows = np.arange(candidates.shape[0])[:, None]
        alive_in_order = context.alive[rows, candidates]
        first = np.argmax(alive_in_order, axis=1)
        choice = candidates[np.arange(candidates.shape[0]), first]
        self._last_choice[context.lanes] = choice
        return choice


class VectorBestOfTwoPolicy(VectorPolicy):
    """Most available charge, preferring to switch away on ties.

    Scalar tie-break order (``best-of-two``): highest available charge,
    then any battery other than the previous server, then the lowest index.
    """

    name = "best-of-two"

    def choose(self, context: BatchDecisionContext) -> np.ndarray:
        avail = np.where(context.alive, context.available_charge, -np.inf)
        best = np.max(avail, axis=1, keepdims=True)
        tied = context.alive & (avail == best)
        indices = np.arange(context.n_batteries)[None, :]
        not_previous = tied & (indices != context.previous_choice[:, None])
        has_alternative = np.any(not_previous, axis=1)
        final = np.where(has_alternative[:, None], not_previous, tied)
        return np.argmax(final, axis=1)


class VectorWorstOfTwoPolicy(VectorPolicy):
    """Least available charge, lowest index on ties (scalar ``worst-of-two``)."""

    name = "worst-of-two"

    def choose(self, context: BatchDecisionContext) -> np.ndarray:
        avail = np.where(context.alive, context.available_charge, np.inf)
        worst = np.min(avail, axis=1, keepdims=True)
        tied = context.alive & (avail == worst)
        return np.argmax(tied, axis=1)


class VectorPolicyStack(VectorPolicy):
    """Several vector policies sharing one lock-step batch.

    The batch simulator's per-iteration cost is dominated by fixed NumPy
    call overhead, so sweeping P policies over S scenarios as one
    ``P * S``-lane batch (policy ``p`` owning lanes ``[p*S, (p+1)*S)``)
    amortizes that overhead P-fold compared to P separate runs.  Each
    sub-policy only ever sees its own lanes, so stateful policies behave
    exactly as they would in a dedicated batch.
    """

    name = "stack"

    def __init__(self, policies: "Sequence[VectorPolicy]", n_scenarios: int) -> None:
        if not policies:
            raise ValueError("a policy stack needs at least one policy")
        self.policies = tuple(policies)
        self.n_scenarios = n_scenarios
        self.name = "+".join(policy.name for policy in self.policies)

    def reset(self, n_scenarios: int, n_batteries: int) -> None:
        for policy in self.policies:
            policy.reset(n_scenarios, n_batteries)

    def choose(self, context: BatchDecisionContext) -> np.ndarray:
        group = context.lanes // self.n_scenarios
        choice = np.empty(context.lanes.shape[0], dtype=np.int64)
        for index, policy in enumerate(self.policies):
            rows = np.flatnonzero(group == index)
            if rows.size == 0:
                continue
            sub = BatchDecisionContext(
                lanes=context.lanes[rows],
                available_charge=context.available_charge[rows],
                alive=context.alive[rows],
                current=context.current[rows],
                time=context.time[rows],
                job_index=context.job_index[rows],
                is_switchover=context.is_switchover[rows],
                previous_choice=context.previous_choice[rows],
            )
            choice[rows] = policy.choose(sub)
        return choice


#: Registry of vectorizable policies, mirroring the scalar
#: ``POLICY_REGISTRY`` name for name.
VECTOR_POLICY_REGISTRY: Dict[str, Callable[[], VectorPolicy]] = {
    "sequential": VectorSequentialPolicy,
    "round-robin": VectorRoundRobinPolicy,
    "best-of-two": VectorBestOfTwoPolicy,
    "worst-of-two": VectorWorstOfTwoPolicy,
}


def has_vector_policy(name: str) -> bool:
    """Whether a policy name has a vectorized implementation."""
    return name in VECTOR_POLICY_REGISTRY


def make_vector_policy(name: str) -> VectorPolicy:
    """Instantiate a registered vector policy by name."""
    try:
        factory = VECTOR_POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(VECTOR_POLICY_REGISTRY))
        raise ValueError(
            f"no vectorized policy {name!r}; vectorized policies: {known}"
        ) from None
    return factory()
