"""Built-in sweep specifications reproducing the paper's experiments.

These are the campaigns behind the paper's multi-battery results, expressed
as declarative specs so that ``python -m repro sweep run --spec table5``
reproduces (and caches) them:

* ``table5`` -- Table 5: two B1 batteries under the ten test loads,
  comparing the deterministic scheduling policies.
* ``table5-optimal`` -- the full Table 5 including the paper's fourth
  column: the optimal schedule per load, computed by the batched
  branch-and-bound search (``python -m repro sweep run --spec table5
  --optimal`` builds the same campaign from ``table5``).
* ``table6`` -- the Section 6 capacity-scaling experiment behind the
  paper's larger-battery discussion: the same two-battery system with the
  capacity scaled 1x/2x/5x/10x under long continuous and intermittent
  loads, where the residual-charge fraction collapses as capacity grows.
* ``ils-random`` -- the random-load extension (Section 7 outlook): lifetime
  distributions of the policies over seeded random ILs-like loads.
* ``fleet`` / ``fleet-8`` -- the N>2 extension: 4- and 8-battery
  mixed-B1-scale fleets (identical subgroups, so the optimal search's
  group-wise symmetry pruning applies) under the richer workload
  generators (MMPP bursty traffic, a duty-cycled sensor profile and a
  trace-driven load), with the capped optimal column enabled.  The specs
  are split by battery count because a sweep's scenarios share one battery
  width.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.kibam.parameters import B1
from repro.sweep.spec import BatteryConfig, LoadAxis, SweepSpec
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

#: The paper's deterministic scheduling policies (Section 6).
PAPER_POLICIES = ("sequential", "round-robin", "best-of-two")


def builtin_specs() -> Dict[str, SweepSpec]:
    """All built-in sweep specs, keyed by CLI name."""
    two_b1 = BatteryConfig(label="2xB1", params=(B1, B1))

    table5 = SweepSpec(
        name="table5",
        description=(
            "Table 5: two B1 batteries under the paper's ten test loads, "
            "sequential vs round-robin vs best-of-two"
        ),
        batteries=(two_b1,),
        loads=(LoadAxis.paper(),),
        policies=PAPER_POLICIES,
    )

    scaled_configs = tuple(
        BatteryConfig(
            label=f"2xB1 x{scale:g}",
            params=(B1.scaled(scale), B1.scaled(scale)),
        )
        for scale in (1.0, 2.0, 5.0, 10.0)
    )
    table6 = SweepSpec(
        name="table6",
        description=(
            "Section 6 capacity scaling: the two-battery system at 1x/2x/5x/"
            "10x capacity under long CL 250 and ILs 500 loads"
        ),
        batteries=scaled_configs,
        loads=(
            LoadAxis.generator(
                "continuous", label="CL 250", current=0.25, total_duration=600.0
            ),
            LoadAxis.generator(
                "intermittent",
                label="ILs 500",
                current=0.5,
                idle_duration=1.0,
                total_duration=600.0,
            ),
        ),
        policies=PAPER_POLICIES,
    )

    table5_optimal = dataclasses.replace(
        table5.with_optimal(),
        name="table5-optimal",
        description=(
            "Table 5 with the optimal-schedule column: batched branch-and-"
            "bound vs the deterministic policies on the ten test loads"
        ),
    )

    ils_random = SweepSpec(
        name="ils-random",
        description=(
            "Random-load extension: policy lifetime distributions over 200 "
            "seeded ILs-like random loads on two B1 batteries"
        ),
        batteries=(two_b1,),
        loads=(LoadAxis.random(200, seed=0, config=ILS_LIKE_RANDOM_CONFIG),),
        policies=PAPER_POLICIES,
    )

    # Fleet loads: heavy enough to exhaust the scaled-down fleets well
    # before the load ends, JSON-plain kwargs so the spec hashes stay
    # stable, and seeded generators so re-runs are cache hits.
    fleet_loads = (
        LoadAxis.generator(
            "mmpp",
            label="MMPP 500",
            seed=11,
            on_current=0.5,
            mean_on=2.0,
            mean_off=2.0,
            total_duration=120.0,
        ),
        LoadAxis.generator(
            "duty-cycled-sensor",
            label="DCS 500",
            sense_current=0.1,
            transmit_current=0.5,
            sense_duration=0.5,
            transmit_duration=0.5,
            period=2.0,
            transmit_every=2,
            cycles=80,
        ),
        LoadAxis.generator(
            "trace",
            label="Trace mix",
            trace=[[0.5, 2.0], [0.0, 1.0], [0.25, 2.0], [0.5, 3.0], [0.0, 2.0]],
            repeat=20,
        ),
    )
    half = B1.scaled(0.5)
    small = B1.scaled(0.375)
    quarter = B1.scaled(0.25)
    fleet = SweepSpec(
        name="fleet",
        description=(
            "4-battery mixed-B1-scale fleets (2+2 and 3+1 identical "
            "subgroups) under MMPP, duty-cycled-sensor and trace loads, "
            "with the capped optimal column"
        ),
        batteries=(
            BatteryConfig(label="fleet4 2+2", params=(half, half, small, small)),
            BatteryConfig(label="fleet4 3+1", params=(half, half, half, quarter)),
        ),
        loads=fleet_loads,
        policies=PAPER_POLICIES,
    ).with_optimal(max_nodes=3000, dominance_tolerance=0.01)

    fleet8 = SweepSpec(
        name="fleet-8",
        description=(
            "8-battery mixed-B1-scale fleet (4+4 identical subgroups) "
            "under MMPP, duty-cycled-sensor and trace loads, with the "
            "capped optimal column"
        ),
        batteries=(
            BatteryConfig(
                label="fleet8 4+4",
                params=(half, half, half, half, small, small, small, small),
            ),
        ),
        loads=fleet_loads,
        policies=PAPER_POLICIES,
    ).with_optimal(max_nodes=3000, dominance_tolerance=0.01)

    return {
        spec.name: spec
        for spec in (table5, table5_optimal, table6, ils_random, fleet, fleet8)
    }
