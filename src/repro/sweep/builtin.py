"""Built-in sweep specifications reproducing the paper's experiments.

These are the campaigns behind the paper's multi-battery results, expressed
as declarative specs so that ``python -m repro sweep run --spec table5``
reproduces (and caches) them:

* ``table5`` -- Table 5: two B1 batteries under the ten test loads,
  comparing the deterministic scheduling policies.
* ``table5-optimal`` -- the full Table 5 including the paper's fourth
  column: the optimal schedule per load, computed by the batched
  branch-and-bound search (``python -m repro sweep run --spec table5
  --optimal`` builds the same campaign from ``table5``).
* ``table6`` -- the Section 6 capacity-scaling experiment behind the
  paper's larger-battery discussion: the same two-battery system with the
  capacity scaled 1x/2x/5x/10x under long continuous and intermittent
  loads, where the residual-charge fraction collapses as capacity grows.
* ``ils-random`` -- the random-load extension (Section 7 outlook): lifetime
  distributions of the policies over seeded random ILs-like loads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.kibam.parameters import B1
from repro.sweep.spec import BatteryConfig, LoadAxis, SweepSpec
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG

#: The paper's deterministic scheduling policies (Section 6).
PAPER_POLICIES = ("sequential", "round-robin", "best-of-two")


def builtin_specs() -> Dict[str, SweepSpec]:
    """All built-in sweep specs, keyed by CLI name."""
    two_b1 = BatteryConfig(label="2xB1", params=(B1, B1))

    table5 = SweepSpec(
        name="table5",
        description=(
            "Table 5: two B1 batteries under the paper's ten test loads, "
            "sequential vs round-robin vs best-of-two"
        ),
        batteries=(two_b1,),
        loads=(LoadAxis.paper(),),
        policies=PAPER_POLICIES,
    )

    scaled_configs = tuple(
        BatteryConfig(
            label=f"2xB1 x{scale:g}",
            params=(B1.scaled(scale), B1.scaled(scale)),
        )
        for scale in (1.0, 2.0, 5.0, 10.0)
    )
    table6 = SweepSpec(
        name="table6",
        description=(
            "Section 6 capacity scaling: the two-battery system at 1x/2x/5x/"
            "10x capacity under long CL 250 and ILs 500 loads"
        ),
        batteries=scaled_configs,
        loads=(
            LoadAxis.generator(
                "continuous", label="CL 250", current=0.25, total_duration=600.0
            ),
            LoadAxis.generator(
                "intermittent",
                label="ILs 500",
                current=0.5,
                idle_duration=1.0,
                total_duration=600.0,
            ),
        ),
        policies=PAPER_POLICIES,
    )

    table5_optimal = dataclasses.replace(
        table5.with_optimal(),
        name="table5-optimal",
        description=(
            "Table 5 with the optimal-schedule column: batched branch-and-"
            "bound vs the deterministic policies on the ten test loads"
        ),
    )

    ils_random = SweepSpec(
        name="ils-random",
        description=(
            "Random-load extension: policy lifetime distributions over 200 "
            "seeded ILs-like random loads on two B1 batteries"
        ),
        batteries=(two_b1,),
        loads=(LoadAxis.random(200, seed=0, config=ILS_LIKE_RANDOM_CONFIG),),
        policies=PAPER_POLICIES,
    )

    return {
        spec.name: spec
        for spec in (table5, table5_optimal, table6, ils_random)
    }
