"""Sweep execution: expand a spec, dispatch chunks, aggregate results.

:class:`SweepRunner` turns a declarative :class:`repro.sweep.spec.SweepSpec`
into numbers.  Scenarios are cut into fixed chunks; each *pending* chunk is
dispatched through :class:`repro.engine.batch.BatchSimulator` -- with
per-scenario battery-parameter arrays whenever the chunk mixes battery
configurations, so a whole parameter grid advances as one vectorized batch,
under either vectorized battery model (``spec.backend`` selects
``"analytical"`` or the exact-integer ``"discrete"`` dKiBaM; the model is
part of the spec hash, so the two never alias in the store) -- and
persisted into the content-addressed
:class:`repro.sweep.store.ResultStore`.  Chunks already on disk are loaded
instead of recomputed, which makes re-runs cache hits and interrupted
sweeps resume from the last completed chunk.

The pseudo-policy ``"optimal"`` (see :meth:`SweepSpec.with_optimal`) is a
first-class column: each scenario runs one batched branch-and-bound search
(:mod:`repro.engine.optimal_batch`), per-scenario ``complete`` masks are
stored alongside the lifetimes, and searches that hit the node cap fall
back to the scalar depth-first worker for a better certified lower bound.
Grid points that share a load and differ only along a monotone capacity
axis are searched in ascending order, each completed search seeding the
next point's incumbent (spec-level dominance pruning): expanded-node
counts drop -- persisted per scenario as ``nodes``/``seeded`` -- while the
reported lifetimes stay identical to an unseeded run.

The aggregated :class:`SweepResult` keeps the raw per-scenario arrays and
offers the ``analysis``-layer views: grouped rows (battery configuration x
load group, one mean lifetime column per policy) and full
:class:`repro.analysis.montecarlo.LifetimeDistribution` summaries per group.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import BatchSimulator
from repro.sweep.spec import (
    OPTIMAL_POLICY,
    ScenarioPoint,
    SweepSpec,
    optimal_seed_chains,
)
from repro.sweep.store import ResultStore
from repro.engine.scenarios import ScenarioSet


@dataclasses.dataclass
class SweepStats:
    """Execution accounting for one runner invocation."""

    n_scenarios: int = 0
    n_chunks: int = 0
    chunks_run: int = 0
    chunks_cached: int = 0
    scenarios_run: int = 0
    run_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def scenarios_per_sec(self) -> float:
        """Scenario throughput of the freshly simulated portion (0.0 if all cached)."""
        if self.scenarios_run == 0 or self.run_seconds <= 0.0:
            return 0.0
        return self.scenarios_run / self.run_seconds


@dataclasses.dataclass(frozen=True)
class SweepTableRow:
    """One aggregated row: a battery configuration under one load group."""

    battery_label: str
    load_label: str
    n_samples: int
    mean_lifetimes: Dict[str, float]
    survived: Dict[str, int]
    incomplete: Dict[str, int] = dataclasses.field(default_factory=dict)


class SweepResult:
    """Raw and aggregated outcome of one sweep.

    Attributes:
        spec: the spec that produced the result.
        points: the expanded scenario points, in scenario order.
        lifetimes / decisions / residual_charge: per-policy arrays over the
            scenario axis (lifetimes are NaN where the batteries survived).
        stats: execution accounting (cache hits, throughput).
    """

    def __init__(
        self,
        spec: SweepSpec,
        points: Sequence[ScenarioPoint],
        lifetimes: Dict[str, np.ndarray],
        decisions: Dict[str, np.ndarray],
        residual_charge: Dict[str, np.ndarray],
        stats: SweepStats,
        complete: Optional[Dict[str, np.ndarray]] = None,
        nodes: Optional[Dict[str, np.ndarray]] = None,
        seeded: Optional[Dict[str, np.ndarray]] = None,
        nodes_known: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.spec = spec
        self.points = list(points)
        self.lifetimes = lifetimes
        self.decisions = decisions
        self.residual_charge = residual_charge
        self.stats = stats
        #: Per-policy search-completeness masks; only the ``optimal`` column
        #: carries one (False where the branch-and-bound hit ``max_nodes``
        #: and its lifetime is a certified lower bound, not the optimum).
        self.complete = complete or {}
        #: Per-policy expanded-node counts and cross-grid-point seeding
        #: flags; only the ``optimal`` column carries them (``seeded`` is
        #: True where the search's incumbent was seeded by a neighboring
        #: grid point's schedule -- pure work accounting, the lifetimes are
        #: identical either way).  Chunks stored before these fields
        #: existed leave their scenarios' ``nodes_known`` mask False; their
        #: zeros are "unknown", not measurements, and must not be folded
        #: into totals.
        self.nodes = nodes or {}
        self.seeded = seeded or {}
        self.nodes_known = nodes_known or {}

    def incomplete_counts(self) -> Dict[str, int]:
        """Number of non-certified (capped) searches per policy column."""
        return {
            policy: int((~mask).sum()) for policy, mask in self.complete.items()
        }

    @property
    def per_sample(self) -> Dict[str, List[float]]:
        """Per-policy lifetime lists in scenario order (NaN = survived)."""
        return {
            policy: [float(value) for value in values]
            for policy, values in self.lifetimes.items()
        }

    def groups(self) -> List[Tuple[Tuple[str, str], List[int]]]:
        """Scenario indices grouped by (battery label, load group label)."""
        order: List[Tuple[str, str]] = []
        members: Dict[Tuple[str, str], List[int]] = {}
        for point in self.points:
            key = (point.battery_label, point.load_label)
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(point.index)
        return [(key, members[key]) for key in order]

    def table(self) -> List[SweepTableRow]:
        """Aggregated rows, one per (battery, load group), in spec order."""
        rows: List[SweepTableRow] = []
        for (battery_label, load_label), indices in self.groups():
            idx = np.asarray(indices)
            means: Dict[str, float] = {}
            survived: Dict[str, int] = {}
            incomplete: Dict[str, int] = {}
            for policy in self.spec.policies:
                values = self.lifetimes[policy][idx]
                finite = values[~np.isnan(values)]
                means[policy] = float(finite.mean()) if finite.size else float("nan")
                survived[policy] = int(np.isnan(values).sum())
                if policy in self.complete:
                    incomplete[policy] = int((~self.complete[policy][idx]).sum())
            rows.append(
                SweepTableRow(
                    battery_label=battery_label,
                    load_label=load_label,
                    n_samples=len(indices),
                    mean_lifetimes=means,
                    survived=survived,
                    incomplete=incomplete,
                )
            )
        return rows

    def distributions(self):
        """Lifetime distributions per group and policy, ``analysis``-ready.

        Returns a mapping ``(battery_label, load_label, policy) ->
        LifetimeDistribution``; groups where a policy left survivors are
        skipped for that policy (a survived load has no lifetime sample).
        """
        from repro.analysis.montecarlo import LifetimeDistribution

        out = {}
        for (battery_label, load_label), indices in self.groups():
            idx = np.asarray(indices)
            for policy in self.spec.policies:
                values = self.lifetimes[policy][idx]
                finite = values[~np.isnan(values)]
                if finite.size == 0:
                    continue
                out[(battery_label, load_label, policy)] = (
                    LifetimeDistribution.from_samples(policy, finite)
                )
        return out

    def render(self) -> str:
        """Plain-text aggregate table (the `sweep run` / `sweep show` view)."""
        rows = self.table()
        battery_width = max([len("batteries")] + [len(r.battery_label) for r in rows])
        load_width = max([len("load")] + [len(r.load_label) for r in rows])
        header = (
            f"{'batteries':{battery_width}s}  {'load':{load_width}s}  {'n':>5s}  "
            + "  ".join(f"{policy:>12s}" for policy in self.spec.policies)
        )
        lines = [header, "-" * len(header)]
        any_incomplete = False
        for row in rows:
            cells = []
            for policy in self.spec.policies:
                mean = row.mean_lifetimes[policy]
                survivors = row.survived[policy]
                capped = row.incomplete.get(policy, 0)
                if survivors == row.n_samples:
                    # No lifetime was measured at all for this cell.
                    cells.append(f"{'survived':>12s}")
                elif survivors:
                    # Mean over the finite samples, survivors annotated,
                    # padded to the common 12-character column.
                    cells.append(f"{mean:.2f} +{survivors}s".rjust(12))
                elif capped:
                    # Some searches hit max_nodes: the mean mixes certified
                    # optima with lower bounds.
                    any_incomplete = True
                    cells.append(f"{mean:.2f} !{capped}".rjust(12))
                else:
                    cells.append(f"{mean:12.2f}")
            lines.append(
                f"{row.battery_label:{battery_width}s}  "
                f"{row.load_label:{load_width}s}  {row.n_samples:5d}  "
                + "  ".join(cells)
            )
        if any_incomplete:
            lines.append(
                "!N = N searches hit max_nodes (complete=False): those "
                "lifetimes are certified lower bounds, not proven optima"
            )
        node_counts = self.nodes.get(OPTIMAL_POLICY)
        if node_counts is not None and node_counts.shape[0]:
            known = self.nodes_known.get(OPTIMAL_POLICY)
            if known is None:
                # Results built before the mask existed: keep the legacy
                # behavior of treating every scenario as measured.
                known = np.ones(node_counts.shape[0], dtype=bool)
            n_known = int(known.sum())
            n_unknown = node_counts.shape[0] - n_known
            seeded_mask = self.seeded.get(OPTIMAL_POLICY)
            n_seeded = (
                int(seeded_mask[known].sum()) if seeded_mask is not None else 0
            )
            if n_known and int(node_counts[known].sum()) > 0:
                line = (
                    f"optimal search: {int(node_counts[known].sum()):,} "
                    f"nodes expanded over {n_known} searches, {n_seeded} "
                    "seeded by a neighboring grid point (seeding prunes "
                    "work, never results)"
                )
                if n_unknown:
                    line += (
                        f"; {n_unknown} searches predate per-scenario node "
                        "accounting (counts unknown, not zero)"
                    )
                lines.append(line)
            elif n_unknown:
                lines.append(
                    f"optimal search: node counts unknown ({n_unknown} "
                    "searches predate per-scenario node accounting)"
                )
        return "\n".join(lines)


class SweepRunner:
    """Executes sweep specs, consulting and filling a result store.

    Args:
        store: the content-addressed result store; ``None`` disables
            persistence entirely (every chunk is computed in memory).
        seed_optimal: spec-level dominance pruning for the ``optimal``
            column.  When on (the default), grid points sharing a load and
            differing only along a monotone capacity axis are searched in
            ascending order, each completed search seeding the next point's
            incumbent and pooling-bound cutoff
            (:func:`repro.sweep.spec.optimal_seed_chains`).  Seeding is an
            admissible cross-point bound: it prunes search *work* -- the
            per-scenario node counts and ``seeded`` flags are persisted
            through the store -- but the reported lifetimes, completeness
            masks and schedules are identical to an unseeded run, which is
            why the flag lives on the runner and not in the (content-
            hashed) spec.  Two consequences of that design: a cached chunk
            is served whatever the flag says (the results are the same
            either way; only the stored ``nodes``/``seeded`` accounting
            reflects the run that *computed* the chunk -- pass ``force``
            to re-measure), and the identity contract is pinned by tests
            rather than re-checked at runtime (a divergence would need two
            distinct schedules closer than the 1e-9 span epsilon yet
            replaying to different floats; the nightly hypothesis property
            and the benchmark's bitwise assertions watch for exactly
            that).
    """

    def __init__(
        self, store: Optional[ResultStore] = None, seed_optimal: bool = True
    ) -> None:
        self.store = store
        self.seed_optimal = seed_optimal

    def run(
        self,
        spec: SweepSpec,
        force: bool = False,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Run (or load) every chunk of ``spec`` and aggregate the results.

        Args:
            spec: the campaign to execute.
            force: recompute chunks even when they are already stored (the
                fresh results overwrite the stored ones).
            progress: optional callback receiving one line per chunk.
        """
        started = time.perf_counter()
        bounds = spec.chunk_bounds()

        spec_hash = None
        if self.store is not None:
            spec_hash = self.store.ensure_entry(spec)
        # When every chunk is already stored, a re-run is a pure read: the
        # label-only expansion skips load materialization (seeded random
        # loads in particular), so cache hits cost file IO, not sampling.
        fully_cached = (
            not force
            and self.store is not None
            and len(self.store.completed_chunks(spec_hash, len(bounds)))
            == len(bounds)
        )
        points = spec.expand_labels() if fully_cached else spec.expand()
        stats = SweepStats(n_scenarios=len(points), n_chunks=len(bounds))

        lifetimes = {
            policy: np.full(len(points), np.nan) for policy in spec.policies
        }
        decisions = {
            policy: np.zeros(len(points), dtype=np.int64) for policy in spec.policies
        }
        residual = {policy: np.zeros(len(points)) for policy in spec.policies}
        complete = (
            {OPTIMAL_POLICY: np.ones(len(points), dtype=bool)}
            if spec.has_optimal
            else {}
        )
        nodes = (
            {OPTIMAL_POLICY: np.zeros(len(points), dtype=np.int64)}
            if spec.has_optimal
            else {}
        )
        seeded = (
            {OPTIMAL_POLICY: np.zeros(len(points), dtype=bool)}
            if spec.has_optimal
            else {}
        )
        nodes_known = (
            {OPTIMAL_POLICY: np.zeros(len(points), dtype=bool)}
            if spec.has_optimal
            else {}
        )

        for chunk_index, (start, stop) in enumerate(bounds):
            cached = (
                not force
                and self.store is not None
                and self.store.has_chunk(spec_hash, chunk_index)
            )
            if cached:
                chunk_results = self.store.load_chunk(
                    spec_hash, chunk_index, spec.policies
                )
                stats.chunks_cached += 1
                if progress is not None:
                    progress(
                        f"chunk {chunk_index + 1}/{len(bounds)}: "
                        f"{stop - start} scenarios (cached)"
                    )
            else:
                chunk_started = time.perf_counter()
                chunk_results = self._run_chunk(spec, points[start:stop])
                elapsed = time.perf_counter() - chunk_started
                stats.chunks_run += 1
                stats.scenarios_run += stop - start
                stats.run_seconds += elapsed
                if self.store is not None:
                    self.store.save_chunk(
                        spec_hash, chunk_index, chunk_results, elapsed
                    )
                if progress is not None:
                    progress(
                        f"chunk {chunk_index + 1}/{len(bounds)}: "
                        f"{stop - start} scenarios in {elapsed:.2f}s"
                    )
            for policy in spec.policies:
                fields = chunk_results[policy]
                lifetimes[policy][start:stop] = fields["lifetimes"]
                decisions[policy][start:stop] = fields["decisions"]
                residual[policy][start:stop] = fields["residual_charge"]
                if policy in complete and "complete" in fields:
                    complete[policy][start:stop] = fields["complete"].astype(bool)
                if policy in nodes and "nodes" in fields:
                    nodes[policy][start:stop] = fields["nodes"]
                    nodes_known[policy][start:stop] = True
                if policy in seeded and "seeded" in fields:
                    seeded[policy][start:stop] = fields["seeded"].astype(bool)

        stats.total_seconds = time.perf_counter() - started
        return SweepResult(
            spec=spec,
            points=points,
            lifetimes=lifetimes,
            decisions=decisions,
            residual_charge=residual,
            stats=stats,
            complete=complete,
            nodes=nodes,
            seeded=seeded,
            nodes_known=nodes_known,
        )

    def load(self, spec: SweepSpec) -> SweepResult:
        """Aggregate a fully stored sweep without computing anything.

        Raises ``FileNotFoundError`` when the store is missing chunks; use
        :meth:`run` to fill the gaps.
        """
        if self.store is None:
            raise ValueError("loading a sweep requires a result store")
        spec_hash = spec.spec_hash()
        missing = [
            index
            for index in range(spec.n_chunks)
            if not self.store.has_chunk(spec_hash, index)
        ]
        if missing:
            raise FileNotFoundError(
                f"sweep {spec_hash} is missing {len(missing)} of "
                f"{spec.n_chunks} chunks (first missing: {missing[0]}); "
                "run it to completion first"
            )
        return self.run(spec)

    # ------------------------------------------------------------------ #
    def _run_chunk(
        self, spec: SweepSpec, points: Sequence[ScenarioPoint]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        scenario_set = ScenarioSet.from_loads([point.load for point in points])
        rows = [point.battery_params for point in points]
        # A homogeneous chunk takes the shared-parameter path (bit-identical
        # to the pre-sweep engine); mixed chunks use per-scenario arrays.
        # Homogeneity compares only the numeric triples -- the spec hash
        # strips cosmetic parameter names, so two specs sharing a store
        # entry must also share the execution path.
        triples = {
            tuple((p.capacity, p.c, p.k_prime) for p in row) for row in rows
        }
        if len(triples) == 1:
            simulator = BatchSimulator(rows[0], backend=spec.backend)
        else:
            simulator = BatchSimulator(rows, backend=spec.backend)
        sim_policies = [p for p in spec.policies if p != OPTIMAL_POLICY]
        out: Dict[str, Dict[str, np.ndarray]] = {}
        if sim_policies:
            results = simulator.run_many(scenario_set, sim_policies)
            out = {
                policy: {
                    "lifetimes": results[policy].lifetimes,
                    "decisions": results[policy].decisions,
                    "residual_charge": results[policy].residual_charge,
                }
                for policy in sim_policies
            }
        if spec.has_optimal:
            out[OPTIMAL_POLICY] = self._run_optimal_column(spec, points)
        return {policy: out[policy] for policy in spec.policies}

    def _run_optimal_column(
        self, spec: SweepSpec, points: Sequence[ScenarioPoint]
    ) -> Dict[str, np.ndarray]:
        """Batched branch-and-bound per scenario, scalar-verified when capped.

        Every scenario runs one :class:`repro.engine.optimal_batch.
        BatchOptimalScheduler` search.  With :attr:`seed_optimal`, the
        scenarios are processed chain by chain in the order planned by
        :func:`repro.sweep.spec.optimal_seed_chains` (results are scattered
        back into scenario order): within a chain each completed search's
        winning assignment seeds the next search's incumbent, pruning its
        frontier against the neighboring grid point's schedule from node
        one.  The rare search that hits ``max_nodes`` only certifies a
        lower bound; `optimal_schedules_batch` first re-runs a *seeded*
        capped search without the seed (capped outcomes must not depend on
        seeding) and then re-drives capped scenarios through the scalar
        depth-first worker (:func:`repro.engine.parallel.
        optimal_schedules_chunk`, whose incumbent goes deeper under the
        same node budget), keeping the better *whole* result -- lifetime,
        decision count and residual charge stay mutually consistent --
        upgrading to ``complete=True`` when the scalar search finishes
        within the budget.
        """
        from repro.engine.optimal_batch import optimal_schedules_batch

        n = len(points)
        lifetimes = np.full(n, np.nan)
        decisions = np.zeros(n, dtype=np.int64)
        residual = np.zeros(n)
        complete = np.ones(n, dtype=bool)
        nodes = np.zeros(n, dtype=np.int64)
        seeded = np.zeros(n, dtype=bool)
        if self.seed_optimal:
            chains = optimal_seed_chains(points)
        else:
            chains = [[index] for index in range(n)]
        for chain in chains:
            seed_assignment = None
            for index in chain:
                point = points[index]
                result = optimal_schedules_batch(
                    [point.load],
                    point.battery_params,
                    model=spec.backend,
                    max_nodes=spec.optimal_max_nodes,
                    dominance_tolerance=spec.optimal_dominance_tolerance,
                    seed_assignment=seed_assignment,
                )[0]
                lifetimes[index] = result.lifetime
                decisions[index] = len(result.assignment)
                residual[index] = result.residual_charge
                complete[index] = result.complete
                nodes[index] = result.nodes_expanded
                seeded[index] = seed_assignment is not None
                # Only a completed search is worth chaining: a capped one
                # may sit well below the point's optimum and would drag the
                # next incumbent down.
                seed_assignment = result.assignment if result.complete else None
        return {
            "lifetimes": lifetimes,
            "decisions": decisions,
            "residual_charge": residual,
            "complete": complete,
            "nodes": nodes,
            "seeded": seeded,
        }
