"""Command-line interface for the sweep subsystem.

Exposed through ``python -m repro``::

    python -m repro sweep specs                      # list built-in campaigns
    python -m repro sweep run --spec table5          # run (resume) a campaign
    python -m repro sweep run --spec table5 --model discrete   # dKiBaM column
    python -m repro sweep run --spec table5 --optimal          # + optimal column
    python -m repro sweep run --spec-file my.json    # run a custom spec
    python -m repro sweep status                     # what is in the store
    python -m repro sweep show --spec table5         # aggregate stored results

Results land in a content-addressed store (``--store``, default
``.sweep-store/``); an immediate re-run of the same spec is a pure cache
read, and a sweep interrupted mid-campaign resumes from the last completed
chunk.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sweep.builtin import builtin_specs
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import (
    DEFAULT_OPTIMAL_MAX_NODES,
    DEFAULT_OPTIMAL_TOLERANCE,
    SweepSpec,
)
from repro.sweep.store import ResultStore

#: Default on-disk location of the result store, relative to the CWD.
DEFAULT_STORE = ".sweep-store"

#: Battery models selectable with ``--model``.
MODEL_CHOICES = ("analytical", "discrete", "linear")


def _usage_error(message: str) -> SystemExit:
    """A clean usage failure: one line on stderr, exit code 2 (no traceback)."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _known_store_specs(store: ResultStore) -> str:
    """One-line summary of the spec names/hashes a store actually holds."""
    names = sorted(
        {entry.name or entry.spec_hash for entry in store.entries()}
    )
    if not names:
        return f"store {store.root} is empty"
    return f"store {store.root} holds: {', '.join(names)}"


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    if getattr(args, "spec_file", None):
        with open(args.spec_file) as handle:
            payload = json.load(handle)
        spec = SweepSpec.from_dict(payload)
    elif getattr(args, "spec", None):
        specs = builtin_specs()
        if args.spec not in specs:
            known = ", ".join(sorted(specs))
            raise _usage_error(
                f"unknown spec {args.spec!r}; known specs: {known} "
                "(or pass --spec-file PATH)"
            )
        spec = specs[args.spec]
    else:
        raise _usage_error("pass --spec NAME or --spec-file PATH")
    if getattr(args, "chunk_size", None) is not None:
        if args.chunk_size < 1:
            raise _usage_error(
                f"--chunk-size must be at least 1, got {args.chunk_size}"
            )
        spec = SweepSpec.from_dict({**spec.to_dict(), "chunk_size": args.chunk_size})
    if getattr(args, "model", None) is not None:
        spec = spec.with_model(args.model)
    max_nodes = getattr(args, "optimal_max_nodes", None)
    tolerance = getattr(args, "dominance_tolerance", None)
    if max_nodes is not None and max_nodes < 1:
        raise _usage_error(
            f"--optimal-max-nodes must be at least 1, got {max_nodes}"
        )
    if tolerance is not None and tolerance < 0.0:
        raise _usage_error(
            f"--dominance-tolerance must be non-negative, got {tolerance}"
        )
    if getattr(args, "optimal", False):
        spec = spec.with_optimal(
            max_nodes=max_nodes
            if max_nodes is not None
            else DEFAULT_OPTIMAL_MAX_NODES,
            dominance_tolerance=tolerance
            if tolerance is not None
            else DEFAULT_OPTIMAL_TOLERANCE,
        )
    elif (max_nodes is not None or tolerance is not None) and not spec.has_optimal:
        raise _usage_error(
            "--optimal-max-nodes/--dominance-tolerance only apply to the "
            "optimal-schedule column; pass --optimal (or a spec whose "
            "policies include 'optimal')"
        )
    elif spec.has_optimal and (max_nodes is not None or tolerance is not None):
        spec = spec.with_optimal(
            max_nodes=max_nodes if max_nodes is not None else spec.optimal_max_nodes,
            dominance_tolerance=tolerance
            if tolerance is not None
            else spec.optimal_dominance_tolerance,
        )
    return spec


def _cmd_specs(args: argparse.Namespace) -> int:
    for name, spec in sorted(builtin_specs().items()):
        print(
            f"{name:12s} {spec.spec_hash()}  {spec.n_scenarios:5d} scenarios "
            f"x {len(spec.policies)} policies -- {spec.description}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    store = ResultStore(args.store)
    runner = SweepRunner(
        store, seed_optimal=not getattr(args, "no_optimal_seeding", False)
    )
    progress = None if args.quiet else lambda line: print(f"  {line}")
    if not args.quiet:
        print(
            f"sweep {spec.name!r} [{spec.spec_hash()}]: "
            f"{spec.n_scenarios} scenarios x {len(spec.policies)} policies, "
            f"{spec.n_chunks} chunk(s), model={spec.model}"
        )
    result = runner.run(spec, force=args.force, progress=progress)
    print(result.render())
    stats = result.stats
    rate = stats.scenarios_per_sec * len(spec.policies)
    rate_note = f" ({rate:,.0f} scenario-policies/sec)" if stats.chunks_run else ""
    print(
        f"\nchunks: {stats.chunks_run} run, {stats.chunks_cached} cached; "
        f"sweep time {stats.total_seconds:.2f}s"
        f"{rate_note}\nstore: {store.entry_dir(spec.spec_hash())}"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not store.exists:
        print(f"store {store.root} does not exist (no sweep has written to it)")
        return 0
    entries = list(store.entries())
    if not entries:
        print(f"store {store.root} is empty")
        return 0
    for entry in entries:
        state = "complete" if entry.complete else "partial "
        print(
            f"{entry.spec_hash}  {state}  {entry.completed_chunks:4d}/"
            f"{entry.n_chunks:<4d} chunks  {entry.n_scenarios:6d} scenarios  "
            f"{entry.name}"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    spec: Optional[SweepSpec] = None
    if getattr(args, "spec", None) or getattr(args, "spec_file", None):
        spec = _load_spec(args)
    elif getattr(args, "hash", None):
        try:
            entry = store.find(args.hash)
        except ValueError as error:
            raise _usage_error(str(error))
        if entry is None:
            raise _usage_error(
                f"no sweep matching {args.hash!r}; {_known_store_specs(store)}"
            )
        spec = SweepSpec.from_dict(store.load_manifest(entry.spec_hash)["spec"])
    else:
        raise _usage_error("pass --spec NAME, --spec-file PATH or --hash PREFIX")
    runner = SweepRunner(store)
    try:
        result = runner.load(spec)
    except FileNotFoundError:
        raise _usage_error(
            f"sweep {spec.name!r} [{spec.spec_hash()}] is not fully stored; "
            f"{_known_store_specs(store)} (run it first with `sweep run`)"
        )
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Declarative experiment sweeps with a cached result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"result store directory (default: {DEFAULT_STORE})",
        )

    def add_spec(p: argparse.ArgumentParser) -> None:
        p.add_argument("--spec", help="built-in spec name (see `sweep specs`)")
        p.add_argument("--spec-file", help="path to a JSON sweep spec")
        p.add_argument(
            "--chunk-size", type=int, help="override the spec's chunk size"
        )
        p.add_argument(
            "--model",
            choices=MODEL_CHOICES,
            help="override the spec's battery model (enters the content "
            "hash, so analytical and discrete results never alias)",
        )
        p.add_argument(
            "--optimal",
            action="store_true",
            help="append the optimal-schedule column (batched branch-and-"
            "bound per scenario; its settings enter the content hash)",
        )
        p.add_argument(
            "--optimal-max-nodes",
            type=int,
            help="node cap per optimal search (default "
            f"{DEFAULT_OPTIMAL_MAX_NODES}; capped searches are flagged "
            "complete=False and rendered with a '!' annotation)",
        )
        p.add_argument(
            "--dominance-tolerance",
            type=float,
            help="state-merge tolerance in Amin for the optimal search "
            f"(default {DEFAULT_OPTIMAL_TOLERANCE}; 0 certifies optimality)",
        )

    specs_parser = sub.add_parser("specs", help="list built-in sweep specs")
    specs_parser.set_defaults(func=_cmd_specs)

    run_parser = sub.add_parser("run", help="run (or resume) a sweep")
    add_spec(run_parser)
    add_store(run_parser)
    run_parser.add_argument(
        "--force", action="store_true", help="recompute chunks already stored"
    )
    run_parser.add_argument(
        "--no-optimal-seeding",
        action="store_true",
        help="disable spec-level dominance pruning of the optimal column "
        "(cross-grid-point incumbent seeding); results are identical either "
        "way, seeding only reduces the expanded-node counts (note: cached "
        "chunks keep the node accounting of the run that computed them -- "
        "combine with --force to re-measure node counts)",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-chunk progress"
    )
    run_parser.set_defaults(func=_cmd_run)

    status_parser = sub.add_parser("status", help="list sweeps in the store")
    add_store(status_parser)
    status_parser.set_defaults(func=_cmd_status)

    show_parser = sub.add_parser("show", help="aggregate stored sweep results")
    add_spec(show_parser)
    add_store(show_parser)
    show_parser.add_argument("--hash", help="stored sweep hash prefix or name")
    show_parser.set_defaults(func=_cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
