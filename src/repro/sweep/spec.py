"""Declarative sweep specifications.

A :class:`SweepSpec` describes a whole experiment campaign -- which battery
configurations to simulate, which loads to put them under, which scheduling
policies to compare -- as plain data.  Specs expand deterministically into
an ordered list of :class:`ScenarioPoint` objects (the cartesian product of
battery configurations and resolved loads), which the runner cuts into
fixed-size chunks; and they serialize to a canonical JSON form whose SHA-256
digest (:meth:`SweepSpec.spec_hash`) content-addresses the on-disk result
store.  Two processes building the same spec therefore agree on the hash,
the scenario order and the chunk boundaries, which is what makes cached
re-runs and resume-after-interrupt possible.

The hash covers everything that determines the numbers -- battery triples,
load axes (including random seeds and generator arguments), policies,
backend, chunk size and a schema version bumped whenever the expansion or
storage semantics change.  It deliberately excludes the free-text ``name``
and ``description``, so renaming a campaign does not orphan its results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.kibam.parameters import BatteryParameters
from repro.workloads.generator import (
    RandomLoadConfig,
    generate_random_load,
    make_load,
)
from repro.workloads.load import Epoch, Load
from repro.workloads.profiles import PAPER_LOAD_NAMES, paper_loads

#: Bumped whenever the expansion order, chunk layout or stored record shape
#: changes incompatibly; part of the content hash so stale stores are never
#: silently reused across semantics changes.
SCHEMA_VERSION = 1

#: Default number of scenarios per stored chunk.
DEFAULT_CHUNK_SIZE = 256

#: The pseudo-policy name that requests the optimal-schedule column.
OPTIMAL_POLICY = "optimal"

#: Default node cap for optimal columns (the Monte-Carlo sweep's
#: long-standing bound; keeps arbitrary random loads tractable).
DEFAULT_OPTIMAL_MAX_NODES = 20_000

#: Default state-merge tolerance for optimal columns (half a dKiBaM charge
#: unit; does not change any reported digit on the paper loads).
DEFAULT_OPTIMAL_TOLERANCE = 0.005


# --------------------------------------------------------------------- #
# battery axis
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class BatteryConfig:
    """One battery configuration: a labelled tuple of battery parameter sets.

    Attributes:
        label: human readable identifier, used as the grouping key in
            aggregated tables (e.g. ``"2xB1"`` or ``"2xB1 x5"``).
        params: the battery parameter sets, one per battery slot.
    """

    label: str
    params: Tuple[BatteryParameters, ...]

    def __post_init__(self) -> None:
        if not self.params:
            raise ValueError("a battery configuration needs at least one battery")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "params": [
                {
                    "capacity": p.capacity,
                    "c": p.c,
                    "k_prime": p.k_prime,
                    "name": p.name,
                }
                for p in self.params
            ],
        }

    @staticmethod
    def from_dict(payload: Mapping) -> "BatteryConfig":
        return BatteryConfig(
            label=str(payload["label"]),
            params=tuple(
                BatteryParameters(
                    capacity=float(p["capacity"]),
                    c=float(p["c"]),
                    k_prime=float(p["k_prime"]),
                    name=str(p.get("name", "")),
                )
                for p in payload["params"]
            ),
        )


def battery_grid(
    capacities: Sequence[float],
    c: float,
    k_prime: float,
    n_batteries: int = 2,
    label_prefix: str = "",
) -> Tuple[BatteryConfig, ...]:
    """A capacity grid of homogeneous battery sets (the Section 6 lever).

    Each grid point is ``n_batteries`` identical batteries at one capacity;
    heterogeneous configurations are built directly as
    :class:`BatteryConfig` objects instead.
    """
    if n_batteries < 1:
        raise ValueError("n_batteries must be at least 1")
    configs: List[BatteryConfig] = []
    for capacity in capacities:
        params = BatteryParameters(capacity=capacity, c=c, k_prime=k_prime)
        label = f"{label_prefix}{n_batteries}x{capacity:g}Amin"
        configs.append(BatteryConfig(label=label, params=(params,) * n_batteries))
    return tuple(configs)


# --------------------------------------------------------------------- #
# load axis
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class LoadAxis:
    """One declarative source of loads for a sweep.

    ``kind`` selects the resolution rule and ``payload`` carries its
    JSON-able arguments:

    * ``"paper"`` -- the paper's named test loads (all ten, or a subset).
    * ``"random"`` -- seeded random loads: sample ``i`` is drawn with seed
      ``seed + i``, exactly the sequence the Monte-Carlo layer draws, so
      sweeps and ``run_montecarlo`` share cache entries.
    * ``"generator"`` -- one load built by a registered generator from
      :data:`repro.workloads.generator.LOAD_GENERATOR_REGISTRY`.
    * ``"explicit"`` -- loads embedded epoch by epoch (used when a caller
      already holds ``Load`` objects, e.g. the Monte-Carlo cache path).

    Resolution returns ``(group_label, load)`` pairs; all samples of a
    random axis share one group label, so aggregation naturally summarizes
    them into a distribution while deterministic loads stay one row each.
    """

    kind: str
    payload: Mapping

    def __post_init__(self) -> None:
        if self.kind not in ("paper", "random", "generator", "explicit"):
            raise ValueError(f"unknown load axis kind {self.kind!r}")

    # -- constructors --------------------------------------------------- #
    @staticmethod
    def paper(names: Optional[Sequence[str]] = None) -> "LoadAxis":
        chosen = tuple(names) if names is not None else PAPER_LOAD_NAMES
        unknown = sorted(set(chosen) - set(PAPER_LOAD_NAMES))
        if unknown:
            raise ValueError(f"unknown paper loads: {unknown}")
        return LoadAxis(kind="paper", payload={"names": list(chosen)})

    @staticmethod
    def random(
        n_samples: int,
        seed: int = 0,
        config: Optional[RandomLoadConfig] = None,
    ) -> "LoadAxis":
        if n_samples < 1:
            raise ValueError("n_samples must be at least 1")
        cfg = config if config is not None else RandomLoadConfig()
        return LoadAxis(
            kind="random",
            payload={
                "n_samples": int(n_samples),
                "seed": int(seed),
                "config": {
                    "levels": list(cfg.levels),
                    "job_duration_range": list(cfg.job_duration_range),
                    "idle_duration_range": list(cfg.idle_duration_range),
                    "total_duration": cfg.total_duration,
                    "duration_step": cfg.duration_step,
                },
            },
        )

    @staticmethod
    def generator(name: str, label: Optional[str] = None, **kwargs) -> "LoadAxis":
        return LoadAxis(
            kind="generator",
            payload={"name": name, "label": label or name, "kwargs": dict(kwargs)},
        )

    @staticmethod
    def explicit(loads: Sequence[Load], label: Optional[str] = None) -> "LoadAxis":
        if not loads:
            raise ValueError("an explicit load axis needs at least one load")
        return LoadAxis(
            kind="explicit",
            payload={
                "label": label or "explicit",
                "loads": [
                    {
                        "name": load.name,
                        "epochs": [[e.current, e.duration] for e in load.epochs],
                    }
                    for load in loads
                ],
            },
        )

    # -- resolution ----------------------------------------------------- #
    def resolve(self) -> List[Tuple[str, Load]]:
        """Expand this axis into ``(group_label, load)`` pairs, in order."""
        if self.kind == "paper":
            named = paper_loads()
            return [(name, named[name]) for name in self.payload["names"]]
        if self.kind == "random":
            cfg_dict = dict(self.payload["config"])
            cfg = RandomLoadConfig(
                levels=tuple(cfg_dict["levels"]),
                job_duration_range=tuple(cfg_dict["job_duration_range"]),
                idle_duration_range=tuple(cfg_dict["idle_duration_range"]),
                total_duration=cfg_dict["total_duration"],
                duration_step=cfg_dict["duration_step"],
            )
            seed = self.payload["seed"]
            label = f"random(seed={seed})"
            return [
                (label, generate_random_load(seed + index, cfg))
                for index in range(self.payload["n_samples"])
            ]
        if self.kind == "generator":
            load = make_load(self.payload["name"], **dict(self.payload["kwargs"]))
            return [(self.payload["label"], load)]
        label = self.payload["label"]
        loads = [
            Load(
                name=entry["name"],
                epochs=tuple(
                    Epoch(current=current, duration=duration)
                    for current, duration in entry["epochs"]
                ),
            )
            for entry in self.payload["loads"]
        ]
        if len(loads) == 1:
            return [(loads[0].name or label, loads[0])]
        return [(label, load) for load in loads]

    def labels(self) -> List[str]:
        """Group labels in resolution order, without materializing loads.

        Used by the runner when every chunk of a sweep is already stored:
        aggregation only needs the labels, and skipping the load generation
        (seeded random sampling in particular) keeps cached re-runs at pure
        read cost.
        """
        if self.kind == "paper":
            return list(self.payload["names"])
        if self.kind == "random":
            label = f"random(seed={self.payload['seed']})"
            return [label] * int(self.payload["n_samples"])
        if self.kind == "generator":
            return [self.payload["label"]]
        label = self.payload["label"]
        entries = self.payload["loads"]
        if len(entries) == 1:
            return [entries[0]["name"] or label]
        return [label] * len(entries)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "payload": _plain(self.payload)}

    @staticmethod
    def from_dict(payload: Mapping) -> "LoadAxis":
        return LoadAxis(kind=str(payload["kind"]), payload=dict(payload["payload"]))


# --------------------------------------------------------------------- #
# scenario points and the spec itself
# --------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class ScenarioPoint:
    """One expanded scenario: a battery configuration under one load.

    ``load`` is ``None`` in label-only expansions (see
    :meth:`SweepSpec.expand_labels`), which the runner uses when every
    chunk is already stored and only aggregation labels are needed.
    """

    index: int
    battery_label: str
    battery_params: Tuple[BatteryParameters, ...]
    load_label: str
    load: Optional[Load]


def _seedable_step(
    prev: Tuple[BatteryParameters, ...], cur: Tuple[BatteryParameters, ...]
) -> bool:
    """Whether ``prev``'s optimal schedule is a useful seed for ``cur``.

    True when the two battery sets differ only along a monotone capacity
    axis: same battery count, same ``(c, k')`` per slot, and every capacity
    non-decreasing.  Under the KiBaM dynamics the height difference evolves
    independently of the stored charge, so growing a capacity shifts the
    empty margin up uniformly: any schedule of the smaller set replays on
    the larger set at least as long, which makes the smaller point's
    optimum a strong (and always admissible -- it is re-replayed on the
    larger batteries) incumbent for the larger point's search.
    """
    if len(prev) != len(cur):
        return False
    return all(
        a.c == b.c and a.k_prime == b.k_prime and a.capacity <= b.capacity
        for a, b in zip(prev, cur)
    )


def optimal_seed_chains(points: Sequence["ScenarioPoint"]) -> List[List[int]]:
    """Group scenario positions into seed-ordered processing chains.

    Spec-level dominance pruning for the ``optimal`` column: positions of
    ``points`` (indices into the given sequence) are grouped by identical
    load, ordered by ascending capacity vector within each group, and split
    wherever consecutive battery sets are not monotone-comparable
    (:func:`_seedable_step`).  Each returned chain is processed in order by
    the runner, every completed search seeding the next one's incumbent;
    concatenated, the chains cover every position exactly once.  Ordering
    only affects *how much work* each search does -- seeded and fresh
    sweeps return identical results -- so the plan is deliberately not part
    of the spec content hash.
    """
    order: List[Tuple] = []
    groups: dict = {}
    for position, point in enumerate(points):
        if point.load is None:
            # Label-only expansion (fully cached sweep): nothing to run.
            key = ("label-only", position)
        else:
            key = (
                point.load_label,
                tuple((e.current, e.duration) for e in point.load.epochs),
            )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(position)

    chains: List[List[int]] = []
    for key in order:
        members = sorted(
            groups[key],
            key=lambda position: tuple(
                p.capacity for p in points[position].battery_params
            ),
        )
        chain: List[int] = []
        for position in members:
            if chain and not _seedable_step(
                points[chain[-1]].battery_params, points[position].battery_params
            ):
                chains.append(chain)
                chain = []
            chain.append(position)
        if chain:
            chains.append(chain)
    return chains


def _plain(value):
    """Recursively convert mappings/sequences to JSON-serializable plain types."""
    if isinstance(value, Mapping):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into a sweep spec")


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment campaign.

    Attributes:
        name: human readable campaign name (not part of the content hash).
        batteries: battery configurations to sweep over.
        loads: load axes; their resolved loads are concatenated in order.
        policies: scheduling policy names evaluated on every scenario.
        backend: battery model (``"analytical"`` and ``"discrete"`` both
            run vectorized; ``"linear"`` runs through the scalar fallback).
            Part of the content hash, so analytical and discrete results of
            an otherwise identical campaign never alias in the store;
            :attr:`model` / :meth:`with_model` are the preferred spelling.
        chunk_size: scenarios per stored chunk (the resume granularity).
        description: free text shown by the CLI (not hashed).
    """

    name: str
    batteries: Tuple[BatteryConfig, ...]
    loads: Tuple[LoadAxis, ...]
    policies: Tuple[str, ...]
    backend: str = "analytical"
    chunk_size: int = DEFAULT_CHUNK_SIZE
    description: str = ""
    optimal_max_nodes: Optional[int] = DEFAULT_OPTIMAL_MAX_NODES
    optimal_dominance_tolerance: float = DEFAULT_OPTIMAL_TOLERANCE

    def __post_init__(self) -> None:
        if not self.batteries:
            raise ValueError("a sweep needs at least one battery configuration")
        if self.optimal_max_nodes is not None and self.optimal_max_nodes < 1:
            raise ValueError(
                f"optimal_max_nodes must be at least 1 (or None for an "
                f"uncapped search), got {self.optimal_max_nodes}"
            )
        if self.optimal_dominance_tolerance < 0.0:
            raise ValueError(
                "optimal_dominance_tolerance must be non-negative, got "
                f"{self.optimal_dominance_tolerance}"
            )
        widths = {len(config.params) for config in self.batteries}
        if len(widths) != 1:
            # The engine batches scenarios over a common battery axis, so a
            # mixed-width campaign would only fail chunks deep into the run
            # (and only for chunk boundaries that mix widths); reject it at
            # construction instead.
            raise ValueError(
                "all battery configurations in a sweep need the same number "
                f"of batteries, got widths {sorted(widths)}"
            )
        if not self.loads:
            raise ValueError("a sweep needs at least one load axis")
        if not self.policies:
            raise ValueError("a sweep needs at least one policy")
        if len(set(self.policies)) != len(self.policies):
            raise ValueError(f"policy names must be unique, got {list(self.policies)}")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")

    # -- battery model -------------------------------------------------- #
    @property
    def model(self) -> str:
        """The battery model of this campaign (alias of :attr:`backend`)."""
        return self.backend

    def with_model(self, model: str) -> "SweepSpec":
        """This campaign under another battery model.

        The model enters the content hash, so e.g. ``table5`` and
        ``table5.with_model("discrete")`` address different store entries
        and can never alias each other's results.
        """
        if model == self.backend:
            return self
        return dataclasses.replace(self, backend=model)

    # -- the optimal-schedule column ------------------------------------ #
    @property
    def has_optimal(self) -> bool:
        """Whether this campaign includes the optimal-schedule column."""
        return OPTIMAL_POLICY in self.policies

    def with_optimal(
        self,
        max_nodes: Optional[int] = DEFAULT_OPTIMAL_MAX_NODES,
        dominance_tolerance: float = DEFAULT_OPTIMAL_TOLERANCE,
    ) -> "SweepSpec":
        """This campaign with an ``optimal`` column appended.

        The optimal column is computed by the batched branch-and-bound
        search (one search per scenario) rather than by a policy
        simulation; ``max_nodes`` and ``dominance_tolerance`` bound each
        search and -- because they change the computed numbers whenever a
        search hits them -- are part of the content hash of any spec that
        carries the column.  Specs without an optimal column hash exactly
        as before, so existing stores are not orphaned.
        """
        policies = self.policies
        if OPTIMAL_POLICY not in policies:
            policies = policies + (OPTIMAL_POLICY,)
        return dataclasses.replace(
            self,
            policies=policies,
            optimal_max_nodes=max_nodes,
            optimal_dominance_tolerance=dominance_tolerance,
        )

    # -- serialization and hashing -------------------------------------- #
    def to_dict(self) -> dict:
        payload = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "batteries": [config.to_dict() for config in self.batteries],
            "loads": [axis.to_dict() for axis in self.loads],
            "policies": list(self.policies),
            "backend": self.backend,
            "chunk_size": self.chunk_size,
        }
        if self.has_optimal:
            # Emitted (and therefore hashed) only when the optimal column is
            # requested: these settings change the computed numbers of that
            # column, but a spec without the column must keep its pre-optimal
            # hash so existing store entries stay addressable.
            payload["optimal"] = {
                "max_nodes": self.optimal_max_nodes,
                "dominance_tolerance": self.optimal_dominance_tolerance,
            }
        return payload

    @staticmethod
    def from_dict(payload: Mapping) -> "SweepSpec":
        schema = int(payload.get("schema", SCHEMA_VERSION))
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"sweep spec schema {schema} is not supported "
                f"(this build understands schema {SCHEMA_VERSION})"
            )
        optimal = payload.get("optimal") or {}
        max_nodes = optimal.get("max_nodes", DEFAULT_OPTIMAL_MAX_NODES)
        return SweepSpec(
            name=str(payload["name"]),
            batteries=tuple(
                BatteryConfig.from_dict(entry) for entry in payload["batteries"]
            ),
            loads=tuple(LoadAxis.from_dict(entry) for entry in payload["loads"]),
            policies=tuple(str(policy) for policy in payload["policies"]),
            backend=str(payload.get("backend", "analytical")),
            chunk_size=int(payload.get("chunk_size", DEFAULT_CHUNK_SIZE)),
            description=str(payload.get("description", "")),
            optimal_max_nodes=None if max_nodes is None else int(max_nodes),
            optimal_dominance_tolerance=float(
                optimal.get("dominance_tolerance", DEFAULT_OPTIMAL_TOLERANCE)
            ),
        )

    def canonical(self) -> dict:
        """The content that determines the results.

        Free text that affects no simulated number is stripped: the spec's
        ``name``/``description``, the cosmetic ``name`` of each battery
        parameter set, and the names of explicitly embedded loads.  Battery
        and axis *labels* stay -- they define the identity of the aggregated
        rows -- but renaming a battery triple or a load object must not
        orphan an already-computed store entry.
        """
        payload = self.to_dict()
        payload.pop("name")
        payload.pop("description")
        for config in payload["batteries"]:
            for params in config["params"]:
                params.pop("name", None)
        for axis in payload["loads"]:
            if axis["kind"] == "explicit":
                for load in axis["payload"]["loads"]:
                    load.pop("name", None)
        return payload

    def spec_hash(self) -> str:
        """Stable 16-hex-digit content address of this spec.

        Built from the canonical JSON form with sorted keys, so it does not
        depend on insertion order, ``PYTHONHASHSEED`` or the process that
        computes it; float round-tripping uses ``repr`` (shortest exact
        form), which is deterministic across CPython builds.
        """
        canonical = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- expansion ------------------------------------------------------ #
    def expand(self) -> List[ScenarioPoint]:
        """The ordered scenario list: battery-major over the resolved loads."""
        resolved = [pair for axis in self.loads for pair in axis.resolve()]
        points: List[ScenarioPoint] = []
        for index, (config, (load_label, load)) in enumerate(
            itertools.product(self.batteries, resolved)
        ):
            points.append(
                ScenarioPoint(
                    index=index,
                    battery_label=config.label,
                    battery_params=config.params,
                    load_label=load_label,
                    load=load,
                )
            )
        return points

    def expand_labels(self) -> List[ScenarioPoint]:
        """Label-only expansion: same order as :meth:`expand`, loads unset."""
        labels = [label for axis in self.loads for label in axis.labels()]
        return [
            ScenarioPoint(
                index=index,
                battery_label=config.label,
                battery_params=config.params,
                load_label=load_label,
                load=None,
            )
            for index, (config, load_label) in enumerate(
                itertools.product(self.batteries, labels)
            )
        ]

    @property
    def n_scenarios(self) -> int:
        per_axis = 0
        for axis in self.loads:
            if axis.kind == "random":
                per_axis += int(axis.payload["n_samples"])
            elif axis.kind == "paper":
                per_axis += len(axis.payload["names"])
            elif axis.kind == "explicit":
                per_axis += len(axis.payload["loads"])
            else:
                per_axis += 1
        return len(self.batteries) * per_axis

    @property
    def n_chunks(self) -> int:
        return (self.n_scenarios + self.chunk_size - 1) // self.chunk_size

    def chunk_bounds(self) -> List[Tuple[int, int]]:
        """Half-open scenario index ranges, one per chunk."""
        total = self.n_scenarios
        return [
            (start, min(start + self.chunk_size, total))
            for start in range(0, total, self.chunk_size)
        ]
