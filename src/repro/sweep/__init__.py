"""Declarative experiment orchestration with a content-addressed store.

Where :mod:`repro.engine` answers "simulate these scenarios fast", this
subsystem answers "describe a whole experiment campaign, run exactly the
missing part of it, and never compute the same thing twice":

* :mod:`repro.sweep.spec` -- :class:`SweepSpec`: grids over battery
  parameters, load families (paper loads, generators, seeded random
  samples) and scheduling policies, expanded deterministically into
  scenario chunks and content-hashed for addressing,
* :mod:`repro.sweep.store` -- :class:`ResultStore`: chunked NPZ records
  under ``<store>/<spec_hash>/`` with atomic writes, so re-runs are cache
  hits and interrupted campaigns resume from the last completed chunk,
* :mod:`repro.sweep.runner` -- :class:`SweepRunner`: dispatches pending
  chunks through the vectorized batch engine (using per-scenario battery
  parameter arrays for mixed-parameter chunks) and aggregates
  analysis-ready tables,
* :mod:`repro.sweep.builtin` -- the paper campaigns (``table5``,
  ``table6``, ``ils-random``),
* :mod:`repro.sweep.cli` -- ``python -m repro sweep run/status/show``.
"""

from repro.sweep.builtin import builtin_specs
from repro.sweep.runner import SweepResult, SweepRunner, SweepStats, SweepTableRow
from repro.sweep.spec import (
    OPTIMAL_POLICY,
    BatteryConfig,
    LoadAxis,
    ScenarioPoint,
    SweepSpec,
    battery_grid,
    optimal_seed_chains,
)
from repro.sweep.store import ResultStore, StoreEntry

__all__ = [
    "BatteryConfig",
    "LoadAxis",
    "OPTIMAL_POLICY",
    "ResultStore",
    "ScenarioPoint",
    "StoreEntry",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "SweepTableRow",
    "battery_grid",
    "builtin_specs",
    "optimal_seed_chains",
]
