"""Content-addressed on-disk store for sweep results.

Layout, under a caller-chosen root directory::

    <root>/<spec_hash>/
        manifest.json       # full spec dict + hash + chunk layout
        log.jsonl           # append-only event log (one line per chunk run)
        chunks/
            chunk_00000.npz # per-policy lifetimes/decisions/residual arrays

The directory name is the spec's content hash, so identical specs -- even
built by different processes, sessions or campaign names -- share one
entry: a re-run finds every chunk present and becomes a pure read, and an
interrupted sweep resumes from the chunks already on disk.  Chunk files are
written to a temporary name and atomically renamed, so a sweep killed
mid-write never leaves a truncated chunk behind (the half-written temp file
is simply ignored and overwritten on resume).

Arrays are stored as NPZ (exact float64 round-trip -- cache hits reproduce
the computed lifetimes bit for bit); the event log is JSONL for cheap
appends and human inspection.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
import time
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.sweep.spec import SweepSpec

#: Arrays every (chunk, policy) record must carry; matches the BatchResult
#: fields the analysis layer consumes.  Policies may persist additional
#: arrays (the ``optimal`` column stores its per-scenario ``complete``
#: mask plus the ``nodes``/``seeded`` search-work accounting of the
#: cross-grid-point seeding); chunks round-trip whatever fields they were
#: saved with, and chunks written before a field existed simply omit it.
RESULT_FIELDS = ("lifetimes", "decisions", "residual_charge")


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """Summary of one stored sweep, as listed by ``sweep status``."""

    spec_hash: str
    name: str
    backend: str
    policies: Sequence[str]
    n_scenarios: int
    n_chunks: int
    completed_chunks: int
    path: pathlib.Path

    @property
    def complete(self) -> bool:
        return self.completed_chunks == self.n_chunks


class ResultStore:
    """Filesystem-backed, content-addressed sweep result cache."""

    def __init__(self, root) -> None:
        # The root is created lazily on first write, so read-only commands
        # (`sweep status`/`show`) against a mistyped path report a missing
        # store instead of silently materializing an empty directory.
        self.root = pathlib.Path(root)

    @property
    def exists(self) -> bool:
        return self.root.is_dir()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def entry_dir(self, spec_hash: str) -> pathlib.Path:
        return self.root / spec_hash

    def _chunk_path(self, spec_hash: str, index: int) -> pathlib.Path:
        return self.entry_dir(spec_hash) / "chunks" / f"chunk_{index:05d}.npz"

    def _manifest_path(self, spec_hash: str) -> pathlib.Path:
        return self.entry_dir(spec_hash) / "manifest.json"

    def _log_path(self, spec_hash: str) -> pathlib.Path:
        return self.entry_dir(spec_hash) / "log.jsonl"

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    def ensure_entry(self, spec: SweepSpec) -> str:
        """Create (or revisit) the store entry for ``spec``; returns the hash."""
        spec_hash = spec.spec_hash()
        entry = self.entry_dir(spec_hash)
        (entry / "chunks").mkdir(parents=True, exist_ok=True)
        manifest_path = self._manifest_path(spec_hash)
        if not manifest_path.exists():
            manifest = {
                "hash": spec_hash,
                "spec": spec.to_dict(),
                "n_scenarios": spec.n_scenarios,
                "n_chunks": spec.n_chunks,
            }
            _atomic_write_text(manifest_path, json.dumps(manifest, indent=2) + "\n")
        return spec_hash

    def load_manifest(self, spec_hash: str) -> dict:
        manifest_path = self._manifest_path(spec_hash)
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no sweep {spec_hash!r} in store {self.root} "
                f"(run it first, or check `sweep status`)"
            )
        return json.loads(manifest_path.read_text())

    # ------------------------------------------------------------------ #
    # chunks
    # ------------------------------------------------------------------ #
    def has_chunk(self, spec_hash: str, index: int) -> bool:
        return self._chunk_path(spec_hash, index).exists()

    def completed_chunks(self, spec_hash: str, n_chunks: int) -> List[int]:
        return [i for i in range(n_chunks) if self.has_chunk(spec_hash, i)]

    def save_chunk(
        self,
        spec_hash: str,
        index: int,
        results: Dict[str, Dict[str, np.ndarray]],
        elapsed_seconds: float,
    ) -> None:
        """Atomically persist one chunk's per-policy result arrays."""
        arrays: Dict[str, np.ndarray] = {}
        for policy_index, (policy, fields) in enumerate(results.items()):
            missing = [field for field in RESULT_FIELDS if field not in fields]
            if missing:
                raise ValueError(
                    f"policy {policy!r} chunk record is missing required "
                    f"fields {missing}"
                )
            for field, values in fields.items():
                arrays[f"p{policy_index}__{field}"] = np.asarray(values)
        path = self._chunk_path(spec_hash, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A per-writer temp name keeps concurrent runs of the same spec from
        # interleaving their bytes in one file; identical specs compute
        # identical arrays, so whichever rename lands last is still correct.
        fd, tmp = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp.npz", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._append_log(
            spec_hash,
            {
                "event": "chunk",
                "chunk": index,
                "elapsed_seconds": round(elapsed_seconds, 6),
                "time": time.strftime("%Y-%m-%dT%H:%M:%S"),
            },
        )

    def load_chunk(
        self, spec_hash: str, index: int, policies: Sequence[str]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Load one chunk back into the per-policy array mapping."""
        path = self._chunk_path(spec_hash, index)
        with np.load(path) as archive:
            out: Dict[str, Dict[str, np.ndarray]] = {}
            for policy_index, policy in enumerate(policies):
                prefix = f"p{policy_index}__"
                out[policy] = {
                    name[len(prefix):]: archive[name]
                    for name in archive.files
                    if name.startswith(prefix)
                }
            return out

    # ------------------------------------------------------------------ #
    # log and listing
    # ------------------------------------------------------------------ #
    def _append_log(self, spec_hash: str, event: dict) -> None:
        with open(self._log_path(spec_hash), "a") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")

    def read_log(self, spec_hash: str) -> List[dict]:
        log_path = self._log_path(spec_hash)
        if not log_path.exists():
            return []
        events = []
        for line in log_path.read_text().splitlines():
            line = line.strip()
            if line:
                events.append(json.loads(line))
        return events

    def entries(self) -> Iterator[StoreEntry]:
        """All sweeps in the store, manifest order by hash."""
        if not self.exists:
            return
        for entry in sorted(self.root.iterdir()):
            manifest_path = entry / "manifest.json"
            if not entry.is_dir() or not manifest_path.exists():
                continue
            manifest = json.loads(manifest_path.read_text())
            spec_hash = manifest["hash"]
            n_chunks = int(manifest["n_chunks"])
            yield StoreEntry(
                spec_hash=spec_hash,
                name=manifest["spec"].get("name", ""),
                backend=manifest["spec"].get("backend", "analytical"),
                policies=list(manifest["spec"].get("policies", [])),
                n_scenarios=int(manifest["n_scenarios"]),
                n_chunks=n_chunks,
                completed_chunks=len(self.completed_chunks(spec_hash, n_chunks)),
                path=entry,
            )

    def find(self, prefix: str) -> Optional[StoreEntry]:
        """Look up a stored sweep by hash prefix or campaign name."""
        matches = [
            entry
            for entry in self.entries()
            if entry.spec_hash.startswith(prefix) or entry.name == prefix
        ]
        if not matches:
            return None
        if len(matches) > 1:
            hashes = ", ".join(entry.spec_hash for entry in matches)
            raise ValueError(f"ambiguous sweep reference {prefix!r}: {hashes}")
        return matches[0]


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(prefix=path.stem + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
