"""Running the TA-KiBaM: validation runs, policy runs and optimal schedules.

Three entry points mirror how the paper uses its model:

* :func:`takibam_single_battery_lifetime` -- the Section 5 validation runs:
  a single battery, no real scheduling choice, executed deterministically.
* :func:`run_policy_on_takibam` -- drive the network with one of the
  deterministic scheduling policies of :mod:`repro.core.policies`; the only
  nondeterminism of the network (the scheduler's ``go_on`` choice) is
  resolved by the policy.
* :func:`takibam_optimal_schedule` -- the Cora query: minimum-cost
  reachability of the ``maximum_finder.done`` location, which yields the
  schedule with the least residual charge and hence the longest lifetime.

The explicit-state engine is exponential in the number of scheduling
decisions (Section 4.4 of the paper makes the same observation for Cora),
so the optimal query is only meant for coarse discretizations and short
loads; the production path for Table 5 is :mod:`repro.core.optimal`.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Sequence, Tuple

from repro.core.battery import BatteryView
from repro.core.policies import DecisionContext, SchedulingPolicy
from repro.kibam.parameters import BatteryParameters
from repro.pta.mcr import MCRResult, minimum_cost_reachability, run_deterministic
from repro.pta.semantics import NetworkSemantics, Transition
from repro.pta.state import NetworkState
from repro.takibam.builder import TakibamModel, build_takibam
from repro.workloads.load import Load

_CHOICE_PATTERN = re.compile(r"scheduler\.choose_(\d+)")


def _goal_all_empty(model: TakibamModel):
    """Goal predicate: the maximum finder has reached its ``done`` location."""
    finder_index = model.network.automaton_index("maximum_finder")

    def goal(state: NetworkState) -> bool:
        return state.locations[finder_index] == "done"

    return goal


def _chosen_battery(transition: Transition) -> Optional[int]:
    """The battery index chosen by a scheduler transition, if it is one."""
    match = _CHOICE_PATTERN.search(transition.label)
    return int(match.group(1)) if match else None


def _eager_priority(transition: Transition) -> int:
    """Priority of non-scheduler actions for deterministic runs.

    When a charge draw and an epoch end are due at the same tick, the
    dKiBaM performs the draw first; preferring ``draw`` (and the empty
    observation and recovery that may follow it) keeps the deterministic TA
    runs aligned with :class:`repro.kibam.discrete.DiscreteKibam`.
    """
    label = transition.label
    if "draw" in label or "observe_empty" in label:
        return 0
    if "recover" in label:
        return 1
    return 2


def _default_chooser(_state: NetworkState, actions: List[Transition]) -> int:
    """Resolve benign interleavings by the dKiBaM-aligned priority order."""
    return min(range(len(actions)), key=lambda index: _eager_priority(actions[index]))


def takibam_single_battery_lifetime(
    params: BatteryParameters,
    load: Load,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> float:
    """Lifetime (minutes) of a single battery computed on the TA-KiBaM.

    This is the TA-KiBaM column of Tables 3 and 4.  With one battery the
    network is deterministic (up to interleavings of independent events), so
    an eager run suffices.
    """
    model = build_takibam([params], load, time_step=time_step, charge_unit=charge_unit)
    semantics = NetworkSemantics(model.network)
    result = run_deterministic(semantics, _goal_all_empty(model), chooser=_default_chooser)
    if not result.found:
        raise RuntimeError(
            "the TA-KiBaM did not reach the all-empty state; the load is too short"
        )
    assert result.goal_state is not None
    return result.goal_state.time * time_step


@dataclasses.dataclass(frozen=True)
class TakibamRunResult:
    """Outcome of a policy run or an optimal query on the TA-KiBaM."""

    lifetime: float
    assignment: Tuple[int, ...]
    residual_charge_units: float
    states_explored: int


def run_policy_on_takibam(
    model: TakibamModel,
    policy: SchedulingPolicy,
) -> TakibamRunResult:
    """Drive the TA-KiBaM with a deterministic scheduling policy."""
    semantics = NetworkSemantics(model.network)
    policy.reset(model.n_batteries)
    decisions: List[int] = []
    previous_choice: Optional[int] = None

    def chooser(state: NetworkState, actions: List[Transition]) -> int:
        nonlocal previous_choice
        options = [(index, _chosen_battery(action)) for index, action in enumerate(actions)]
        battery_options = [(index, battery) for index, battery in options if battery is not None]
        if not battery_options:
            # Interleaving of independent events (recoveries, draws, epoch
            # ends): resolve with the dKiBaM-aligned priority order.
            return _default_chooser(state, actions)
        variables = state.variable_valuation()
        views = [
            BatteryView(
                index=battery,
                available_charge=model.available_charge(variables, battery),
                total_charge=model.total_charge(variables, battery),
                is_empty=model.is_battery_empty(variables, battery),
            )
            for battery in range(model.n_batteries)
        ]
        epoch_index = min(variables["j"], model.arrays.n_epochs - 1)
        context = DecisionContext(
            time=state.time * model.time_step,
            epoch_index=epoch_index,
            job_index=len(decisions),
            current=model.arrays.epoch_current(epoch_index, model.charge_unit, model.time_step),
            remaining_duration=max(
                0.0, (model.arrays.load_time[epoch_index] - state.time) * model.time_step
            ),
            views=views,
            is_switchover=any(view.is_empty for view in views),
            previous_choice=previous_choice,
        )
        wanted = policy.choose(context)
        for index, battery in battery_options:
            if battery == wanted:
                decisions.append(battery)
                previous_choice = battery
                return index
        # The policy asked for a battery whose go_on edge is not enabled
        # (e.g. it is empty); fall back to the first enabled choice.
        index, battery = battery_options[0]
        decisions.append(battery)
        previous_choice = battery
        return index

    result = run_deterministic(semantics, _goal_all_empty(model), chooser=chooser)
    if not result.found:
        raise RuntimeError(
            "the TA-KiBaM policy run did not reach the all-empty state; extend the load"
        )
    assert result.goal_state is not None
    return TakibamRunResult(
        lifetime=result.goal_state.time * model.time_step,
        assignment=tuple(decisions),
        residual_charge_units=result.goal_state.cost,
        states_explored=result.states_explored,
    )


@dataclasses.dataclass(frozen=True)
class TakibamOptimalResult:
    """Result of the Cora-style optimal query on the TA-KiBaM."""

    lifetime: float
    assignment: Tuple[int, ...]
    residual_charge_units: float
    states_explored: int
    mcr: MCRResult


def takibam_optimal_schedule(
    model: TakibamModel,
    max_states: Optional[int] = None,
) -> TakibamOptimalResult:
    """Find the cost-optimal (maximum lifetime) schedule on the TA-KiBaM.

    The query minimizes the residual charge left in the batteries when they
    are all empty, which is the paper's encoding of lifetime maximization
    (Section 4.3).
    """
    semantics = NetworkSemantics(model.network)
    result = minimum_cost_reachability(semantics, _goal_all_empty(model), max_states=max_states)
    if not result.found:
        raise RuntimeError(
            "the optimal query did not reach the all-empty state "
            "(load too short or max_states too small)"
        )
    assert result.goal_state is not None
    assignment = tuple(
        battery
        for battery in (_chosen_battery(t) for t in result.trace if not t.is_delay)
        if battery is not None
    )
    return TakibamOptimalResult(
        lifetime=result.goal_state.time * model.time_step,
        assignment=assignment,
        residual_charge_units=result.cost,
        states_explored=result.states_explored,
        mcr=result,
    )
