"""Precomputed arrays of the TA-KiBaM (Table 1 of the paper).

The load is described by three equal-length arrays:

* ``load_time[y]`` -- the tick at which epoch ``y`` ends (absolute time),
* ``cur[y]`` -- charge units drawn per draw during epoch ``y`` (0 for idle),
* ``cur_times[y]`` -- ticks between two draws during epoch ``y``,

so that the current of epoch ``y`` is ``cur[y] * Gamma / (cur_times[y] * T)``
(equation (7)).  The recovery table ``recov_time[m]`` (equation (6)) lives in
:class:`repro.kibam.discrete.DiscreteKibam` and is reused directly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.kibam.discrete import DiscreteKibam
from repro.workloads.load import Load


@dataclasses.dataclass(frozen=True)
class LoadArrays:
    """The three load-describing arrays of the TA-KiBaM, plus bookkeeping.

    Attributes:
        load_time: absolute epoch end times in ticks (strictly increasing).
        cur: charge units drawn per draw, per epoch (0 during idle epochs).
        cur_times: ticks between draws, per epoch (1 during idle epochs).
        currents: the epoch currents in Ampere (for inspection/round trips).
    """

    load_time: Tuple[int, ...]
    cur: Tuple[int, ...]
    cur_times: Tuple[int, ...]
    currents: Tuple[float, ...]

    def __post_init__(self) -> None:
        lengths = {len(self.load_time), len(self.cur), len(self.cur_times), len(self.currents)}
        if len(lengths) != 1:
            raise ValueError("all load arrays must have the same length")
        if any(later <= earlier for earlier, later in zip(self.load_time, self.load_time[1:])):
            raise ValueError("load_time must be strictly increasing")

    @property
    def n_epochs(self) -> int:
        return len(self.load_time)

    def epoch_current(self, index: int, charge_unit: float, time_step: float) -> float:
        """Reconstruct the epoch current (equation (7)) from the arrays."""
        if self.cur[index] == 0:
            return 0.0
        return self.cur[index] * charge_unit / (self.cur_times[index] * time_step)


def load_arrays(load: Load, discretizer: DiscreteKibam) -> LoadArrays:
    """Translate a :class:`~repro.workloads.load.Load` into the TA arrays.

    Every epoch duration must be a whole number of ticks and every job
    current must be representable as an integer ``(cur, cur_times)`` pair
    for the discretizer's time step and charge unit.
    """
    load_time: List[int] = []
    cur: List[int] = []
    cur_times: List[int] = []
    currents: List[float] = []
    elapsed_ticks = 0
    for epoch in load.epochs:
        elapsed_ticks += discretizer.duration_to_ticks(epoch.duration)
        load_time.append(elapsed_ticks)
        currents.append(epoch.current)
        if epoch.is_idle:
            cur.append(0)
            cur_times.append(1)
        else:
            spec = discretizer.discharge_spec(epoch.current)
            cur.append(spec.cur)
            cur_times.append(spec.cur_times)
    return LoadArrays(
        load_time=tuple(load_time),
        cur=tuple(cur),
        cur_times=tuple(cur_times),
        currents=tuple(currents),
    )
