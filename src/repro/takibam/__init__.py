"""TA-KiBaM: the dKiBaM as a network of priced timed automata (Section 4)."""

from repro.takibam.arrays import LoadArrays, load_arrays
from repro.takibam.builder import TakibamModel, build_takibam
from repro.takibam.runner import (
    takibam_single_battery_lifetime,
    run_policy_on_takibam,
    takibam_optimal_schedule,
    TakibamOptimalResult,
)

__all__ = [
    "LoadArrays",
    "load_arrays",
    "TakibamModel",
    "build_takibam",
    "takibam_single_battery_lifetime",
    "run_policy_on_takibam",
    "takibam_optimal_schedule",
    "TakibamOptimalResult",
]
