"""Construction of the TA-KiBaM network (Figure 5 and Tables 1-2 of the paper).

For every battery the network contains a *total charge* automaton and a
*height difference* automaton; a single *load*, *scheduler* and *maximum
finder* automaton complete the network.  Synchronisation channels follow
Table 2 of the paper:

========== ===================== ==================== =========================================
channel    senders               receivers            purpose
========== ===================== ==================== =========================================
new_job    load, total charge    scheduler            request a scheduling decision
go_on_i    scheduler             total charge i       switch the chosen battery on
go_off     load                  total charge (on)    switch the serving battery off at job end
use_charge total charge i        height difference i  propagate a draw to the height difference
emptied    total charge i        maximum finder       count empty batteries
all_empty  maximum finder        (broadcast)          stop all processes when everything is empty
========== ===================== ==================== =========================================

Two intentional, behaviour-preserving deviations from the figures are
documented in DESIGN.md: the residual charge is added to the cost directly
on the final ``all_empty`` switch instead of via a cost-rate location, and a
``job_active`` flag replaces the implicit "a job is running" knowledge when
an emptied battery asks the scheduler for a replacement.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.kibam.discrete import DiscreteKibam
from repro.kibam.parameters import BatteryParameters
from repro.pta.automaton import Automaton, Edge, Location, Sync
from repro.pta.network import Network
from repro.takibam.arrays import LoadArrays, load_arrays
from repro.workloads.load import Load


@dataclasses.dataclass(frozen=True)
class TakibamModel:
    """A built TA-KiBaM network plus the data needed to interpret it.

    Attributes:
        network: the priced timed automata network.
        params: battery parameters, one per battery.
        discretizers: the per-battery dKiBaM discretizers (shared time step
            and charge unit).
        arrays: the precomputed load arrays.
        load: the original load object.
        time_step: tick length in minutes.
        charge_unit: charge unit in Amin.
    """

    network: Network
    params: Tuple[BatteryParameters, ...]
    discretizers: Tuple[DiscreteKibam, ...]
    arrays: LoadArrays
    load: Load
    time_step: float
    charge_unit: float

    @property
    def n_batteries(self) -> int:
        return len(self.params)

    def available_charge(self, variables: Mapping[str, int], battery: int) -> float:
        """Available charge (Amin) of one battery from a variable valuation."""
        params = self.params[battery]
        n = variables[f"n_gamma_{battery}"]
        m = variables[f"m_delta_{battery}"]
        return self.charge_unit * (params.c * n - (1.0 - params.c) * m)

    def total_charge(self, variables: Mapping[str, int], battery: int) -> float:
        """Total charge (Amin) of one battery from a variable valuation."""
        return self.charge_unit * variables[f"n_gamma_{battery}"]

    def is_battery_empty(self, variables: Mapping[str, int], battery: int) -> bool:
        return variables[f"bat_empty_{battery}"] == 1


def _total_charge_automaton(
    battery: int,
    params: BatteryParameters,
    arrays: LoadArrays,
    n_batteries: int,
) -> Automaton:
    """The total charge automaton of Figure 5(a) for one battery."""
    c_permille = params.c_permille
    cur = arrays.cur
    cur_times = arrays.cur_times
    n_epochs = arrays.n_epochs
    clock = f"c_disch_{battery}"
    n_var = f"n_gamma_{battery}"
    m_var = f"m_delta_{battery}"
    empty_var = f"bat_empty_{battery}"

    def cur_times_now(variables: Mapping[str, int]) -> int:
        j = variables["j"]
        return cur_times[j] if j < n_epochs else 1

    def cur_now(variables: Mapping[str, int]) -> int:
        j = variables["j"]
        return cur[j] if j < n_epochs else 0

    def empty_condition(variables: Mapping[str, int]) -> bool:
        # Equation (8) in the paper's per-mille integer form.
        return (1000 - c_permille) * variables[m_var] >= c_permille * variables[n_var]

    def invariant_on(variables, clocks) -> bool:
        return clocks[clock] <= cur_times_now(variables)

    def guard_draw(variables, clocks) -> bool:
        return clocks[clock] >= cur_times_now(variables) and not empty_condition(variables)

    def guard_empty(variables, _clocks) -> bool:
        return empty_condition(variables)

    def update_draw(variables) -> None:
        variables[n_var] -= cur_now(variables)

    def update_mark_empty(variables) -> None:
        variables[empty_var] = 1

    def guard_others_alive(variables, _clocks) -> bool:
        return variables["empty_count"] < n_batteries and variables["job_active"] == 1

    def guard_no_reschedule(variables, _clocks) -> bool:
        return variables["empty_count"] >= n_batteries or variables["job_active"] == 0

    return Automaton(
        name=f"total_charge_{battery}",
        locations=(
            Location(name="idle"),
            Location(name="on", invariant=invariant_on),
            Location(name="empty_notify", committed=True),
            Location(name="empty"),
        ),
        initial_location="idle",
        clocks=(clock,),
        edges=(
            Edge(
                source="idle",
                target="on",
                sync=Sync.receive(f"go_on_{battery}"),
                clock_resets=(clock,),
                name="switch_on",
            ),
            Edge(
                source="on",
                target="idle",
                sync=Sync.receive("go_off"),
                clock_resets=(clock,),
                name="switch_off",
            ),
            Edge(
                source="on",
                target="on",
                guard=guard_draw,
                sync=Sync.send(f"use_charge_{battery}"),
                update=update_draw,
                clock_resets=(clock,),
                name="draw",
            ),
            Edge(
                source="on",
                target="empty_notify",
                guard=guard_empty,
                sync=Sync.send("emptied"),
                update=update_mark_empty,
                name="observe_empty",
            ),
            Edge(
                source="empty_notify",
                target="empty",
                guard=guard_others_alive,
                sync=Sync.send("new_job"),
                name="request_replacement",
            ),
            Edge(
                source="empty_notify",
                target="empty",
                guard=guard_no_reschedule,
                name="retire",
            ),
        ),
    )


def _height_difference_automaton(
    battery: int,
    discretizer: DiscreteKibam,
    arrays: LoadArrays,
) -> Automaton:
    """The height difference automaton of Figure 5(b) for one battery."""
    recov_time = discretizer.recovery_steps
    cur = arrays.cur
    n_epochs = arrays.n_epochs
    clock = f"c_recov_{battery}"
    m_var = f"m_delta_{battery}"

    def cur_now(variables: Mapping[str, int]) -> int:
        j = variables["j"]
        return cur[j] if j < n_epochs else 0

    def recov_now(variables: Mapping[str, int]) -> int:
        m = variables[m_var]
        if m < 2:
            return recov_time[1]
        return recov_time[min(m, len(recov_time) - 1)]

    def invariant_recovering(variables, clocks) -> bool:
        return clocks[clock] <= recov_now(variables)

    def update_use(variables) -> None:
        variables[m_var] += cur_now(variables)

    def update_recover(variables) -> None:
        variables[m_var] -= 1

    return Automaton(
        name=f"height_difference_{battery}",
        locations=(
            Location(name="m_delta_0"),
            Location(name="m_delta_1"),
            Location(name="m_delta_gt_1", invariant=invariant_recovering),
            Location(name="off"),
        ),
        initial_location="m_delta_0",
        clocks=(clock,),
        edges=(
            Edge(
                source="m_delta_0",
                target="m_delta_1",
                guard=lambda v, c: cur_now(v) == 1,
                sync=Sync.receive(f"use_charge_{battery}"),
                update=update_use,
                name="first_use_single",
            ),
            Edge(
                source="m_delta_0",
                target="m_delta_gt_1",
                guard=lambda v, c: cur_now(v) > 1,
                sync=Sync.receive(f"use_charge_{battery}"),
                update=update_use,
                clock_resets=(clock,),
                name="first_use_multi",
            ),
            Edge(
                source="m_delta_1",
                target="m_delta_gt_1",
                sync=Sync.receive(f"use_charge_{battery}"),
                update=update_use,
                clock_resets=(clock,),
                name="use",
            ),
            Edge(
                source="m_delta_gt_1",
                target="m_delta_gt_1",
                sync=Sync.receive(f"use_charge_{battery}"),
                update=update_use,
                name="use_while_recovering",
            ),
            Edge(
                source="m_delta_gt_1",
                target="m_delta_gt_1",
                guard=lambda v, c: v[m_var] > 2 and c[clock] >= recov_now(v),
                update=update_recover,
                clock_resets=(clock,),
                name="recover",
            ),
            Edge(
                source="m_delta_gt_1",
                target="m_delta_1",
                guard=lambda v, c: v[m_var] == 2 and c[clock] >= recov_now(v),
                update=update_recover,
                name="recover_to_one",
            ),
            Edge(source="m_delta_0", target="off", sync=Sync.receive("all_empty"), name="stop0"),
            Edge(source="m_delta_1", target="off", sync=Sync.receive("all_empty"), name="stop1"),
            Edge(
                source="m_delta_gt_1",
                target="off",
                sync=Sync.receive("all_empty"),
                name="stop_gt1",
            ),
        ),
    )


def _load_automaton(arrays: LoadArrays) -> Automaton:
    """The load automaton of Figure 5(c)."""
    load_time = arrays.load_time
    cur = arrays.cur
    n_epochs = arrays.n_epochs

    def epoch_end(variables: Mapping[str, int]) -> int:
        j = variables["j"]
        return load_time[j] if j < n_epochs else load_time[-1]

    def is_job(variables: Mapping[str, int]) -> bool:
        j = variables["j"]
        return j < n_epochs and cur[j] > 0

    def invariant_running(variables, clocks) -> bool:
        return clocks["t"] <= epoch_end(variables)

    def advance_epoch(variables) -> None:
        variables["j"] += 1
        variables["job_active"] = 0

    def mark_job(variables) -> None:
        variables["job_active"] = 1

    return Automaton(
        name="load",
        locations=(
            Location(name="start", committed=True),
            Location(name="load_on", invariant=invariant_running),
            Location(name="dispatch", committed=True),
            Location(name="exhausted"),
            Location(name="off"),
        ),
        initial_location="start",
        clocks=("t",),
        edges=(
            Edge(
                source="start",
                target="load_on",
                guard=lambda v, c: is_job(v),
                sync=Sync.send("new_job"),
                update=mark_job,
                name="first_job",
            ),
            Edge(
                source="start",
                target="load_on",
                guard=lambda v, c: not is_job(v),
                name="first_idle",
            ),
            Edge(
                source="load_on",
                target="dispatch",
                guard=lambda v, c: c["t"] >= epoch_end(v) and is_job(v),
                sync=Sync.send("go_off"),
                update=advance_epoch,
                name="end_job",
            ),
            Edge(
                source="load_on",
                target="dispatch",
                guard=lambda v, c: c["t"] >= epoch_end(v) and not is_job(v),
                update=advance_epoch,
                name="end_idle",
            ),
            Edge(
                source="dispatch",
                target="load_on",
                guard=lambda v, c: v["j"] < n_epochs and is_job(v),
                sync=Sync.send("new_job"),
                update=mark_job,
                name="next_job",
            ),
            Edge(
                source="dispatch",
                target="load_on",
                guard=lambda v, c: v["j"] < n_epochs and not is_job(v),
                name="next_idle",
            ),
            Edge(
                source="dispatch",
                target="exhausted",
                guard=lambda v, c: v["j"] >= n_epochs,
                name="load_exhausted",
            ),
            Edge(source="load_on", target="off", sync=Sync.receive("all_empty"), name="stop"),
        ),
    )


def _scheduler_automaton(n_batteries: int) -> Automaton:
    """The scheduler automaton of Figure 5(d).

    The choice among the ``go_on_k`` edges in the committed ``choose``
    location is the only nondeterminism of the network; resolving it is what
    produces a schedule.
    """
    edges: List[Edge] = [
        Edge(source="wait", target="choose", sync=Sync.receive("new_job"), name="new_job"),
        Edge(source="wait", target="off", sync=Sync.receive("all_empty"), name="stop"),
    ]
    for battery in range(n_batteries):
        edges.append(
            Edge(
                source="choose",
                target="wait",
                guard=lambda v, c, b=battery: v[f"bat_empty_{b}"] == 0,
                sync=Sync.send(f"go_on_{battery}"),
                name=f"choose_{battery}",
            )
        )
    return Automaton(
        name="scheduler",
        locations=(
            Location(name="wait"),
            Location(name="choose", committed=True),
            Location(name="off"),
        ),
        initial_location="wait",
        clocks=(),
        edges=tuple(edges),
    )


def _maximum_finder_automaton(n_batteries: int) -> Automaton:
    """The maximum finder automaton of Figure 5(e).

    The paper converts the residual charge into cost by letting a clock run
    with cost rate 1 for ``charge_left`` ticks; we add the same amount to
    the cost directly on the final broadcast, which is equivalent for the
    minimum-cost query and keeps the state space small.
    """

    def count_up(variables) -> None:
        variables["empty_count"] += 1

    def residual_charge(variables: Mapping[str, int]) -> float:
        return float(
            sum(variables[f"n_gamma_{battery}"] for battery in range(n_batteries))
        )

    return Automaton(
        name="maximum_finder",
        locations=(
            Location(name="counting"),
            Location(name="pre_done", committed=True),
            Location(name="done"),
        ),
        initial_location="counting",
        clocks=(),
        edges=(
            Edge(
                source="counting",
                target="counting",
                guard=lambda v, c: v["empty_count"] < n_batteries - 1,
                sync=Sync.receive("emptied"),
                update=count_up,
                name="count_empty",
            ),
            Edge(
                source="counting",
                target="pre_done",
                guard=lambda v, c: v["empty_count"] >= n_batteries - 1,
                sync=Sync.receive("emptied"),
                update=count_up,
                name="last_empty",
            ),
            Edge(
                source="pre_done",
                target="done",
                sync=Sync.send("all_empty"),
                cost=residual_charge,
                name="all_empty",
            ),
        ),
    )


def build_takibam(
    params: Sequence[BatteryParameters],
    load: Load,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> TakibamModel:
    """Build the TA-KiBaM network for the given batteries and load.

    Args:
        params: battery parameter sets, one per battery; they may differ in
            capacity but must share ``c`` (the per-mille empty criterion is
            evaluated per battery, so differing ``c`` would also work, but
            the paper never needs it).
        load: the load to serve; every epoch duration must be a whole number
            of ticks.
        time_step: tick length in minutes.
        charge_unit: charge unit in Amin.
    """
    if not params:
        raise ValueError("at least one battery is required")
    discretizers = tuple(
        DiscreteKibam(p, time_step=time_step, charge_unit=charge_unit) for p in params
    )
    arrays = load_arrays(load, discretizers[0])
    n_batteries = len(params)

    automata: List[Automaton] = []
    variables: Dict[str, int] = {"j": 0, "empty_count": 0, "job_active": 0}
    for battery, (battery_params, discretizer) in enumerate(zip(params, discretizers)):
        automata.append(_total_charge_automaton(battery, battery_params, arrays, n_batteries))
        automata.append(_height_difference_automaton(battery, discretizer, arrays))
        variables[f"n_gamma_{battery}"] = discretizer.total_units
        variables[f"m_delta_{battery}"] = 0
        variables[f"bat_empty_{battery}"] = 0
    automata.append(_load_automaton(arrays))
    automata.append(_scheduler_automaton(n_batteries))
    automata.append(_maximum_finder_automaton(n_batteries))

    network = Network(
        automata=tuple(automata),
        initial_variables=variables,
        broadcast_channels=frozenset({"all_empty", "go_off"}),
    )
    return TakibamModel(
        network=network,
        params=tuple(params),
        discretizers=discretizers,
        arrays=arrays,
        load=load,
        time_step=time_step,
        charge_unit=charge_unit,
    )
