"""The paper's contribution: multi-battery scheduling for lifetime maximization.

This subpackage contains the scheduling layer built on top of the battery
models of :mod:`repro.kibam`:

* :mod:`repro.core.battery` -- a uniform stepping interface over the
  analytical and the discretized KiBaM (and the other battery models).
* :mod:`repro.core.policies` -- the deterministic scheduling schemes of
  Section 6 (sequential, round robin, best-of-two) plus a replay policy.
* :mod:`repro.core.simulator` -- the multi-battery discharge simulator with
  mid-job switchover when the serving battery is observed empty.
* :mod:`repro.core.optimal` -- the optimal scheduler: a branch-and-bound
  search over scheduling decisions that replaces the Uppaal Cora
  minimum-cost reachability analysis of the paper.
* :mod:`repro.core.schedule` -- schedules and simulation results.
"""

from repro.core.battery import (
    BatteryModel,
    AnalyticalBattery,
    DiscreteBattery,
    LinearBatteryModel,
    BatteryView,
    StepOutcome,
)
from repro.core.schedule import ScheduleEntry, Schedule, SimulationResult
from repro.core.policies import (
    SchedulingPolicy,
    DecisionContext,
    SequentialPolicy,
    RoundRobinPolicy,
    BestOfTwoPolicy,
    WorstOfTwoPolicy,
    RandomPolicy,
    FixedAssignmentPolicy,
    POLICY_REGISTRY,
    make_policy,
)
from repro.core.simulator import MultiBatterySimulator, simulate_policy
from repro.core.optimal import (
    DominanceArchive,
    OptimalScheduleResult,
    OptimalScheduler,
    find_optimal_schedule,
)
from repro.core.job_scheduling import (
    Job,
    JobTimeline,
    JobScheduler,
    JobSchedulingResult,
    ScheduledJob,
    schedule_jobs,
    eager_timeline,
    spread_timeline,
)

__all__ = [
    "BatteryModel",
    "AnalyticalBattery",
    "DiscreteBattery",
    "LinearBatteryModel",
    "BatteryView",
    "StepOutcome",
    "ScheduleEntry",
    "Schedule",
    "SimulationResult",
    "SchedulingPolicy",
    "DecisionContext",
    "SequentialPolicy",
    "RoundRobinPolicy",
    "BestOfTwoPolicy",
    "WorstOfTwoPolicy",
    "RandomPolicy",
    "FixedAssignmentPolicy",
    "POLICY_REGISTRY",
    "make_policy",
    "MultiBatterySimulator",
    "simulate_policy",
    "DominanceArchive",
    "OptimalScheduleResult",
    "OptimalScheduler",
    "find_optimal_schedule",
    "Job",
    "JobTimeline",
    "JobScheduler",
    "JobSchedulingResult",
    "ScheduledJob",
    "schedule_jobs",
    "eager_timeline",
    "spread_timeline",
]
