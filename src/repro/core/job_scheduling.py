"""Scheduling jobs over time on a single battery (the paper's outlook).

Section 7 of the paper sketches a second optimization problem: *given one
battery and a set of jobs, when should the jobs be run so that the battery
survives them?*  Sensor nodes with regular workloads are the motivating
example.  This module implements that problem on top of the analytical
KiBaM:

* a :class:`Job` has a current, a duration, a release time and a deadline;
* a :class:`JobTimeline` assigns a start time to every job (jobs never
  overlap -- the device is single-threaded);
* :func:`schedule_jobs` searches for a timeline that completes as many jobs
  as possible (and, among timelines completing the same set, leaves the most
  charge in the battery), using the same branch-and-bound machinery idea as
  the multi-battery scheduler: decisions are job start times on a discrete
  slot grid, states are pruned by dominance on the battery state.

Two baseline strategies are provided for comparison: ``eager`` (run every
job as early as possible, i.e. no battery awareness) and ``spread`` (space
the jobs evenly over the available slack).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.kibam.analytical import KibamState, initial_state, step_constant_current
from repro.kibam.lifetime import time_to_empty
from repro.kibam.parameters import BatteryParameters

_TIME_EPSILON = 1e-9


@dataclasses.dataclass(frozen=True)
class Job:
    """One schedulable job.

    Attributes:
        name: identifier used in timelines.
        current: discharge current while the job runs, in Ampere.
        duration: job length in minutes.
        release: earliest start time in minutes.
        deadline: latest allowed *completion* time in minutes (``None`` for
            no deadline).
    """

    name: str
    current: float
    duration: float
    release: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.current <= 0.0:
            raise ValueError("a job must draw a positive current")
        if self.duration <= 0.0:
            raise ValueError("a job must have a positive duration")
        if self.release < 0.0:
            raise ValueError("release time must be non-negative")
        if self.deadline is not None and self.deadline < self.release + self.duration:
            raise ValueError(
                f"job {self.name!r}: deadline {self.deadline} is before the earliest "
                f"possible completion {self.release + self.duration}"
            )

    @property
    def charge(self) -> float:
        """Charge drawn by a complete run of the job, in Amin."""
        return self.current * self.duration


@dataclasses.dataclass(frozen=True)
class ScheduledJob:
    """A job placed on the timeline."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        return self.start + self.job.duration


@dataclasses.dataclass(frozen=True)
class JobTimeline:
    """A complete single-battery schedule of jobs over time.

    Attributes:
        scheduled: the completed jobs with their start times, in time order.
        dropped: jobs that could not be completed (battery empty or deadline
            unreachable).
        final_state: KiBaM state after the last scheduled job.
        strategy: name of the strategy that produced the timeline.
    """

    scheduled: Tuple[ScheduledJob, ...]
    dropped: Tuple[Job, ...]
    final_state: KibamState
    strategy: str

    @property
    def completed_count(self) -> int:
        return len(self.scheduled)

    @property
    def makespan(self) -> float:
        return self.scheduled[-1].end if self.scheduled else 0.0

    def segments(self) -> List[Tuple[float, float]]:
        """The timeline as ``(current, duration)`` segments including gaps."""
        segments: List[Tuple[float, float]] = []
        cursor = 0.0
        for item in self.scheduled:
            if item.start > cursor + _TIME_EPSILON:
                segments.append((0.0, item.start - cursor))
            segments.append((item.job.current, item.job.duration))
            cursor = item.end
        return segments


def _run_job(
    params: BatteryParameters, state: KibamState, job: Job
) -> Optional[KibamState]:
    """State after running ``job`` to completion, or ``None`` if the battery dies."""
    crossing = time_to_empty(params, state, job.current, horizon=job.duration)
    if crossing is not None and crossing < job.duration - _TIME_EPSILON:
        return None
    return step_constant_current(params, state, job.current, job.duration)


def eager_timeline(
    params: BatteryParameters,
    jobs: Sequence[Job],
    horizon: Optional[float] = None,
) -> JobTimeline:
    """Run every job as early as possible, in release order (battery-oblivious)."""
    ordered = sorted(jobs, key=lambda job: (job.release, job.name))
    state = initial_state(params)
    cursor = 0.0
    scheduled: List[ScheduledJob] = []
    dropped: List[Job] = []
    for job in ordered:
        start = max(cursor, job.release)
        end = start + job.duration
        if job.deadline is not None and end > job.deadline + _TIME_EPSILON:
            dropped.append(job)
            continue
        if horizon is not None and end > horizon + _TIME_EPSILON:
            dropped.append(job)
            continue
        rested = step_constant_current(params, state, 0.0, start - cursor)
        after = _run_job(params, rested, job)
        if after is None:
            # The job is skipped entirely; the battery state and the cursor
            # stay where they were (the rest above is discarded).
            dropped.append(job)
            continue
        scheduled.append(ScheduledJob(job=job, start=start))
        state = after
        cursor = end
    return JobTimeline(
        scheduled=tuple(scheduled),
        dropped=tuple(dropped),
        final_state=state,
        strategy="eager",
    )


def spread_timeline(
    params: BatteryParameters,
    jobs: Sequence[Job],
    horizon: float,
) -> JobTimeline:
    """Space the jobs evenly over the horizon (a simple battery-friendly baseline)."""
    if horizon <= 0.0:
        raise ValueError("horizon must be positive")
    ordered = sorted(jobs, key=lambda job: (job.release, job.name))
    busy = sum(job.duration for job in ordered)
    slack = max(0.0, horizon - busy)
    gap = slack / (len(ordered) + 1) if ordered else 0.0
    state = initial_state(params)
    cursor = 0.0
    scheduled: List[ScheduledJob] = []
    dropped: List[Job] = []
    for job in ordered:
        start = max(cursor + gap, job.release)
        end = start + job.duration
        if job.deadline is not None and end > job.deadline + _TIME_EPSILON:
            start = max(job.release, min(start, job.deadline - job.duration))
            end = start + job.duration
        if end > horizon + _TIME_EPSILON or start < cursor - _TIME_EPSILON:
            dropped.append(job)
            continue
        rested = step_constant_current(params, state, 0.0, start - cursor)
        after = _run_job(params, rested, job)
        if after is None:
            # Dropped job: keep the state and cursor untouched so the next
            # placement sees exactly the recovery time that really elapses.
            dropped.append(job)
            continue
        scheduled.append(ScheduledJob(job=job, start=start))
        state = after
        cursor = end
    return JobTimeline(
        scheduled=tuple(scheduled),
        dropped=tuple(dropped),
        final_state=state,
        strategy="spread",
    )


@dataclasses.dataclass(frozen=True)
class JobSchedulingResult:
    """Result of the optimizing search plus the baselines for comparison."""

    best: JobTimeline
    eager: JobTimeline
    spread: JobTimeline
    nodes_expanded: int
    complete: bool


class JobScheduler:
    """Branch-and-bound search for a battery-aware single-battery job timeline.

    Decisions place the next job (in a fixed order, earliest release first)
    at one of a discrete set of start slots between its release time and the
    latest start that still meets its deadline and the horizon.  The search
    maximizes, in order, the number of completed jobs and the remaining total
    charge.  Dominance pruning merges timelines that reach the same decision
    with a pointwise-worse battery state and less time left.

    Args:
        params: battery parameters.
        jobs: the jobs to place.
        horizon: scheduling horizon in minutes (jobs must finish by then).
        slot: granularity of candidate start times in minutes.
        max_nodes: optional cap on the number of expanded decision nodes.
    """

    def __init__(
        self,
        params: BatteryParameters,
        jobs: Sequence[Job],
        horizon: float,
        slot: float = 0.5,
        max_nodes: Optional[int] = None,
    ) -> None:
        if horizon <= 0.0:
            raise ValueError("horizon must be positive")
        if slot <= 0.0:
            raise ValueError("slot must be positive")
        if not jobs:
            raise ValueError("at least one job is required")
        self.params = params
        self.jobs = tuple(sorted(jobs, key=lambda job: (job.release, job.name)))
        self.horizon = horizon
        self.slot = slot
        self.max_nodes = max_nodes
        self._best_key: Tuple[int, float] = (-1, float("-inf"))
        self._best_schedule: Tuple[ScheduledJob, ...] = ()
        self._best_state = initial_state(params)
        self._nodes = 0
        self._complete = True
        self._archive: dict = {}

    # ------------------------------------------------------------------ #
    def search(self) -> JobSchedulingResult:
        """Run the search and return the best timeline plus the baselines."""
        eager = eager_timeline(self.params, self.jobs, horizon=self.horizon)
        spread = spread_timeline(self.params, self.jobs, self.horizon)
        for baseline in (eager, spread):
            key = (baseline.completed_count, baseline.final_state.gamma)
            if key > self._best_key:
                self._best_key = key
                self._best_schedule = baseline.scheduled
                self._best_state = baseline.final_state
        self._explore(0, 0.0, initial_state(self.params), ())

        completed = {item.job.name for item in self._best_schedule}
        dropped = tuple(job for job in self.jobs if job.name not in completed)
        best = JobTimeline(
            scheduled=self._best_schedule,
            dropped=dropped,
            final_state=self._best_state,
            strategy="optimized",
        )
        return JobSchedulingResult(
            best=best,
            eager=eager,
            spread=spread,
            nodes_expanded=self._nodes,
            complete=self._complete,
        )

    # ------------------------------------------------------------------ #
    def _candidate_starts(self, job: Job, cursor: float) -> List[float]:
        earliest = max(cursor, job.release)
        latest = self.horizon - job.duration
        if job.deadline is not None:
            latest = min(latest, job.deadline - job.duration)
        if latest < earliest - _TIME_EPSILON:
            return []
        starts = [earliest]
        slots = int((latest - earliest) / self.slot + _TIME_EPSILON)
        starts.extend(earliest + self.slot * k for k in range(1, slots + 1))
        if starts[-1] < latest - _TIME_EPSILON:
            starts.append(latest)
        return starts

    def _record(self, schedule: Tuple[ScheduledJob, ...], state: KibamState) -> None:
        key = (len(schedule), state.gamma)
        if key > self._best_key:
            self._best_key = key
            self._best_schedule = schedule
            self._best_state = state

    def _explore(
        self,
        index: int,
        cursor: float,
        state: KibamState,
        schedule: Tuple[ScheduledJob, ...],
    ) -> None:
        self._record(schedule, state)
        if index >= len(self.jobs):
            return
        remaining = len(self.jobs) - index
        # Bound: even if every remaining job completes we cannot beat the
        # incumbent when the completed-count ceiling is below it.
        if (len(schedule) + remaining, float("inf")) < self._best_key:
            return
        if self.max_nodes is not None and self._nodes >= self.max_nodes:
            self._complete = False
            return
        self._nodes += 1

        # Dominance: at the same job index, a state with an earlier cursor,
        # more total charge and a smaller height difference can only do better.
        archive = self._archive.setdefault(index, [])
        signature = (round(cursor, 6), round(state.gamma, 6), round(state.delta, 6))
        for other_cursor, other_gamma, other_delta in archive:
            if (
                other_cursor <= signature[0] + 1e-9
                and other_gamma >= signature[1] - 1e-9
                and other_delta <= signature[2] + 1e-9
            ):
                return
        if len(archive) < 2048:
            archive.append(signature)

        job = self.jobs[index]
        starts = self._candidate_starts(job, cursor)
        # Try late starts first: more idle time before a job lets the battery
        # recover, which is usually the better branch and tightens the bound.
        for start in reversed(starts):
            idle = start - cursor
            rested = step_constant_current(self.params, state, 0.0, idle)
            after = _run_job(self.params, rested, job)
            if after is None:
                continue
            self._explore(
                index + 1,
                start + job.duration,
                after,
                schedule + (ScheduledJob(job=job, start=start),),
            )
        # Branch where the job is skipped (dropped) entirely.
        self._explore(index + 1, cursor, state, schedule)


def schedule_jobs(
    params: BatteryParameters,
    jobs: Sequence[Job],
    horizon: float,
    slot: float = 0.5,
    max_nodes: Optional[int] = None,
) -> JobSchedulingResult:
    """Find a battery-aware timeline for ``jobs`` on a single battery.

    Convenience wrapper around :class:`JobScheduler`; see the class docstring
    for the search semantics.
    """
    return JobScheduler(params, jobs, horizon, slot=slot, max_nodes=max_nodes).search()
