"""Multi-battery discharge simulator.

The simulator walks the load epoch by epoch.  Idle epochs let every battery
recover; job epochs are served by the battery chosen by the scheduling
policy at the start of the job.  When the serving battery is observed empty
mid-job the policy is consulted again and another battery continues the job
from that point (Section 4.3 of the paper).  The system lifetime is the
instant the last battery is observed empty.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.battery import BatteryModel, make_battery_models
from repro.core.policies import DecisionContext, SchedulingPolicy, make_policy
from repro.core.schedule import Schedule, ScheduleEntry, SimulationResult
from repro.kibam.parameters import BatteryParameters
from repro.workloads.load import Load

#: Spans shorter than this (minutes) are ignored to avoid infinite loops on
#: floating point residue when a battery empties exactly at a boundary.
_TIME_EPSILON = 1e-9


class MultiBatterySimulator:
    """Simulates a set of batteries serving a load under a scheduling policy.

    Args:
        models: one battery model per battery (see
            :func:`repro.core.battery.make_battery_models`).
    """

    def __init__(self, models: Sequence[BatteryModel]) -> None:
        if not models:
            raise ValueError("at least one battery model is required")
        self.models = tuple(models)

    @property
    def n_batteries(self) -> int:
        return len(self.models)

    def run(self, load: Load, policy: SchedulingPolicy) -> SimulationResult:
        """Simulate ``policy`` serving ``load`` and return the result."""
        policy.reset(self.n_batteries)
        states: List[Any] = [model.initial_state() for model in self.models]
        entries: List[ScheduleEntry] = []
        time = 0.0
        job_index = -1
        decisions = 0
        previous_choice: Optional[int] = None
        lifetime: Optional[float] = None

        for epoch_index, epoch in enumerate(load.epochs):
            if lifetime is not None:
                break
            if epoch.is_idle:
                states = self._step_idle(states, epoch.duration)
                entries.append(
                    ScheduleEntry(
                        epoch_index=epoch_index,
                        job_index=None,
                        battery=None,
                        start_time=time,
                        end_time=time + epoch.duration,
                        current=0.0,
                    )
                )
                time += epoch.duration
                continue

            job_index += 1
            remaining = epoch.duration
            is_switchover = False
            while remaining > _TIME_EPSILON:
                alive = [i for i in range(self.n_batteries) if not self.models[i].is_empty(states[i])]
                if not alive:
                    lifetime = time
                    break
                context = DecisionContext(
                    time=time,
                    epoch_index=epoch_index,
                    job_index=job_index,
                    current=epoch.current,
                    remaining_duration=remaining,
                    views=[self.models[i].view(i, states[i]) for i in range(self.n_batteries)],
                    is_switchover=is_switchover,
                    previous_choice=previous_choice,
                )
                choice = policy.choose(context)
                decisions += 1
                if choice < 0 or choice >= self.n_batteries:
                    raise ValueError(f"policy chose battery {choice}, which does not exist")
                if self.models[choice].is_empty(states[choice]):
                    raise ValueError(f"policy chose battery {choice}, which is already empty")

                outcome = self.models[choice].step(states[choice], epoch.current, remaining)
                span = outcome.emptied_after if outcome.emptied else remaining
                states[choice] = outcome.state
                for other in range(self.n_batteries):
                    if other != choice:
                        states[other] = self.models[other].step(states[other], 0.0, span).state
                entries.append(
                    ScheduleEntry(
                        epoch_index=epoch_index,
                        job_index=job_index,
                        battery=choice,
                        start_time=time,
                        end_time=time + span,
                        current=epoch.current,
                        switchover=is_switchover,
                    )
                )
                time += span
                remaining -= span
                previous_choice = choice
                if not outcome.emptied:
                    break
                # The serving battery was observed empty; if it was the last
                # one the system dies here, otherwise another battery takes
                # over from this point.
                still_alive = [
                    i for i in range(self.n_batteries) if not self.models[i].is_empty(states[i])
                ]
                if not still_alive:
                    lifetime = time
                    break
                is_switchover = True

        schedule = Schedule(
            policy_name=policy.name,
            entries=tuple(entries),
            n_batteries=self.n_batteries,
        )
        residual = sum(
            self.models[i].total_charge(states[i]) for i in range(self.n_batteries)
        )
        return SimulationResult(
            lifetime=lifetime,
            schedule=schedule,
            final_states=tuple(states),
            residual_charge=residual,
            decisions=decisions,
        )

    def _step_idle(self, states: Sequence[Any], duration: float) -> List[Any]:
        """Let every battery recover for ``duration`` minutes."""
        return [
            model.step(state, 0.0, duration).state
            for model, state in zip(self.models, states)
        ]


def simulate_policy(
    params: Sequence[BatteryParameters],
    load: Load,
    policy: "SchedulingPolicy | str",
    backend: str = "analytical",
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> SimulationResult:
    """Convenience wrapper: build models, run one policy, return the result.

    Args:
        params: battery parameter sets, one per battery.
        load: the load to serve.
        policy: a policy instance or a registered policy name
            (``"sequential"``, ``"round-robin"``, ``"best-of-two"``, ...).
        backend: ``"analytical"`` (continuous KiBaM), ``"discrete"``
            (dKiBaM) or ``"linear"``.
        time_step: dKiBaM tick length in minutes (discrete backend only).
        charge_unit: dKiBaM charge unit in Amin (discrete backend only).
    """
    if isinstance(policy, str):
        policy = make_policy(policy)
    models = make_battery_models(
        params, backend=backend, time_step=time_step, charge_unit=charge_unit
    )
    return MultiBatterySimulator(models).run(load, policy)
