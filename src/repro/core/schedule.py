"""Schedules and simulation results.

A *schedule* records which battery served which portion of the load.  It is
produced both by the policy simulator (:mod:`repro.core.simulator`) and by
the optimal scheduler (:mod:`repro.core.optimal`), and can be replayed, and
rendered into the charge-evolution series of Figure 6 of the paper by
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class ScheduleEntry:
    """One contiguous span during which a single battery serves the load.

    Attributes:
        epoch_index: index of the load epoch the span belongs to.
        job_index: index of the job (counting only job epochs), or ``None``
            for idle spans.
        battery: index of the serving battery, or ``None`` for idle spans.
        start_time: absolute start time in minutes.
        end_time: absolute end time in minutes.
        current: current drawn during the span in Ampere.
        switchover: ``True`` when the span started because the previously
            serving battery was observed empty mid-job.
    """

    epoch_index: int
    job_index: Optional[int]
    battery: Optional[int]
    start_time: float
    end_time: float
    current: float
    switchover: bool = False

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("end_time must not precede start_time")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def is_idle(self) -> bool:
        return self.battery is None


@dataclasses.dataclass(frozen=True)
class Schedule:
    """A complete schedule: an ordered sequence of spans plus metadata."""

    policy_name: str
    entries: Tuple[ScheduleEntry, ...]
    n_batteries: int

    def __post_init__(self) -> None:
        if self.n_batteries < 1:
            raise ValueError("a schedule needs at least one battery")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def end_time(self) -> float:
        return self.entries[-1].end_time if self.entries else 0.0

    def serving_entries(self) -> List[ScheduleEntry]:
        """The spans in which some battery serves a job."""
        return [entry for entry in self.entries if entry.battery is not None]

    def job_assignments(self) -> Dict[int, List[int]]:
        """Mapping from job index to the batteries that served it, in order."""
        assignments: Dict[int, List[int]] = {}
        for entry in self.entries:
            if entry.job_index is None or entry.battery is None:
                continue
            assignments.setdefault(entry.job_index, [])
            batteries = assignments[entry.job_index]
            if not batteries or batteries[-1] != entry.battery:
                batteries.append(entry.battery)
        return assignments

    def battery_usage(self, battery: int) -> float:
        """Total time (minutes) the given battery spent serving the load."""
        return sum(entry.duration for entry in self.entries if entry.battery == battery)

    def switch_count(self) -> int:
        """Number of times the serving battery changed between consecutive jobs."""
        serving = self.serving_entries()
        return sum(
            1
            for previous, current in zip(serving[:-1], serving[1:])
            if previous.battery != current.battery
        )

    def per_battery_segments(self, horizon: Optional[float] = None) -> List[List[Tuple[float, float]]]:
        """Per-battery piecewise-constant load segments implied by the schedule.

        Battery ``i`` sees its scheduled current while it serves and zero
        current otherwise.  The result can be fed directly to the battery
        models to regenerate charge-evolution curves (Figure 6).
        """
        end = horizon if horizon is not None else self.end_time
        segments: List[List[Tuple[float, float]]] = [[] for _ in range(self.n_batteries)]
        cursors = [0.0] * self.n_batteries
        for entry in self.entries:
            if entry.battery is None or entry.duration <= 0.0:
                continue
            start = min(entry.start_time, end)
            stop = min(entry.end_time, end)
            if stop <= start:
                continue
            battery = entry.battery
            if start > cursors[battery]:
                segments[battery].append((0.0, start - cursors[battery]))
            segments[battery].append((entry.current, stop - start))
            cursors[battery] = stop
        for battery in range(self.n_batteries):
            if cursors[battery] < end:
                segments[battery].append((0.0, end - cursors[battery]))
        return segments


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating a policy (or replaying a schedule) on a load.

    Attributes:
        lifetime: system lifetime in minutes (time at which the last battery
            was observed empty), or ``None`` if the batteries survived the
            whole load.
        schedule: the schedule that was executed.
        final_states: the per-battery model states at the end.
        residual_charge: total charge (Amin) left in the batteries at the
            end of the simulation.
        decisions: number of scheduling decisions taken (job starts plus
            mid-job switchovers).
    """

    lifetime: Optional[float]
    schedule: Schedule
    final_states: Tuple[Any, ...]
    residual_charge: float
    decisions: int

    @property
    def survived(self) -> bool:
        return self.lifetime is None

    def lifetime_or_raise(self) -> float:
        """The lifetime, raising if the batteries outlived the load.

        Experiments that tabulate lifetimes (Table 5) use loads long enough
        to exhaust the batteries, so surviving the load indicates a
        configuration error.
        """
        if self.lifetime is None:
            raise RuntimeError(
                "the batteries survived the whole load; extend the load to "
                "measure a lifetime"
            )
        return self.lifetime


def relative_difference(value: float, reference: float) -> float:
    """Relative difference in percent, as reported in the paper's tables."""
    if reference == 0.0:
        raise ValueError("reference value must be non-zero")
    return (value - reference) / reference * 100.0
