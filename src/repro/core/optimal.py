"""Optimal battery scheduling by branch-and-bound search.

The paper obtains optimal schedules by encoding the dKiBaM as a priced
timed automata network and asking the Uppaal Cora model checker for a
minimum-cost path (Section 4).  This module provides the same capability as
a direct search over the scheduling decisions:

* decisions are taken at the start of every job and whenever the serving
  battery is observed empty mid-job -- exactly the points where the paper's
  scheduler automaton synchronises on ``new_job``;
* between decisions the battery dynamics are deterministic, so the search
  only branches over the (at most ``B``) usable batteries per decision;
* the search is exhaustive up to three sound prunings: an admissible upper
  bound on the remaining lifetime (the batteries cannot deliver more than
  the total charge they still hold), dominance pruning between states at the
  same decision point, and group-wise symmetry reduction between identical
  batteries (heterogeneous fleets prune within each identical-parameter
  group).

The search runs on any :class:`repro.core.battery.BatteryModel` backend.
The analytical backend reproduces Table 5 in seconds; the discrete backend
matches the paper's dKiBaM exactly and is cross-checked against the
TA-KiBaM route in the test suite.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.battery import BatteryModel, make_battery_models
from repro.core.policies import FixedAssignmentPolicy, make_policy
from repro.core.schedule import Schedule, SimulationResult
from repro.core.simulator import MultiBatterySimulator
from repro.kibam.analytical import KibamState, step_constant_current
from repro.kibam.bounds import build_pooled_job_table, recovery_limited_refinements
from repro.kibam.lifetime import time_to_empty
from repro.kibam.parameters import BatteryParameters
from repro.workloads.load import Load

_TIME_EPSILON = 1e-9
#: Slack used when comparing dominance vectors built from floats.
_DOMINANCE_EPSILON = 1e-9
#: Size cap for the bound memoization dicts.  Long sweep chains reuse one
#: scheduler per scenario but run many scenarios back to back; clearing a
#: full cache costs one recomputation burst while an unbounded cache grows
#: with the number of distinct pooled states ever seen.
_BOUND_CACHE_LIMIT = 65536
#: Cap on the number of within-group battery permutations enumerated per
#: dominance check.  Beyond this the quadratic pairing cost outweighs the
#: extra pruning and the archive falls back to the identity pairing (the
#: sorted-per-group signatures still catch exact permuted duplicates).
_MAX_SYMMETRY_PERMUTATIONS = 24


def parameter_symmetry_groups(keys: Iterable[Any]) -> Tuple[int, ...]:
    """Per-battery symmetry-group ids for a sequence of hashable keys.

    Batteries with equal keys (parameter sets, for the optimal searches)
    land in the same group; group ids are assigned in first-appearance
    order, so two schedulers built from the same parameter sequence agree
    on the grouping exactly -- the property the scalar/batched
    decision-for-decision pinning relies on.
    """
    ids: dict = {}
    return tuple(ids.setdefault(key, len(ids)) for key in keys)


def model_symmetry_groups(models: Sequence[BatteryModel]) -> Tuple[int, ...]:
    """Symmetry groups for battery *models*: identical type + parameters.

    Models without a ``params`` attribute are never considered
    interchangeable; discrete models additionally key on their
    discretization so differently gridded dKiBaM instances stay distinct.
    """
    keys: List[Any] = []
    for index, model in enumerate(models):
        params = getattr(model, "params", None)
        if params is None:
            keys.append(("opaque", index))
            continue
        kibam = getattr(model, "kibam", None)
        if kibam is not None:
            keys.append(
                (type(model).__name__, params, kibam.time_step, kibam.charge_unit)
            )
        else:
            keys.append((type(model).__name__, params))
    return parameter_symmetry_groups(keys)


def group_permutations(
    groups: Sequence[int], limit: int = _MAX_SYMMETRY_PERMUTATIONS
) -> List[Tuple[int, ...]]:
    """All battery-index permutations that only shuffle within a group.

    The product of the per-group factorials is the number of sound
    pairings for the dominance check; when it exceeds ``limit`` only the
    identity is returned (checking them all would cost more than the
    pruning saves).  The identity permutation is always first.
    """
    n = len(groups)
    members: dict = {}
    for index, group in enumerate(groups):
        members.setdefault(group, []).append(index)
    total = 1
    for indices in members.values():
        total *= math.factorial(len(indices))
        if total > limit:
            return [tuple(range(n))]
    perms: List[List[int]] = [list(range(n))]
    for indices in members.values():
        if len(indices) < 2:
            continue
        extended: List[List[int]] = []
        for perm in perms:
            for ordering in itertools.permutations(indices):
                candidate = perm[:]
                for slot, source in zip(indices, ordering):
                    candidate[slot] = source
                extended.append(candidate)
        perms = extended
    return [tuple(perm) for perm in perms]


@dataclasses.dataclass(frozen=True)
class OptimalScheduleResult:
    """Result of the optimal-schedule search.

    Attributes:
        lifetime: the maximum achievable system lifetime in minutes.
        schedule: a schedule achieving that lifetime.
        assignment: the battery chosen at each scheduling decision, in order.
        nodes_expanded: number of decision nodes expanded by the search.
        complete: ``False`` when the search hit ``max_nodes`` and the result
            is only a lower bound on the optimum.
        backend: battery model backend used ("analytical" or "discrete").
        incumbent_policy: name of the heuristic policy that provided the
            initial incumbent solution.
        final_states: per-battery model states at the end of the winning
            schedule (from replaying the best assignment).
        residual_charge: total charge (Amin) left across the batteries at
            the end of the winning schedule.
    """

    lifetime: float
    schedule: Schedule
    assignment: Tuple[int, ...]
    nodes_expanded: int
    complete: bool
    backend: str
    incumbent_policy: str
    final_states: Tuple[Any, ...] = ()
    residual_charge: float = float("nan")

    def as_simulation_result(self) -> SimulationResult:
        """The optimal schedule re-expressed as a simulation result."""
        return SimulationResult(
            lifetime=self.lifetime,
            schedule=self.schedule,
            final_states=self.final_states,
            residual_charge=self.residual_charge,
            decisions=len(self.assignment),
        )


class DominanceArchive:
    """Per-decision-point dominance pruning shared by both optimal searches.

    .. note:: Keep this implementation simple and scalar -- it is the
       *golden reference* for the pruning semantics.  It accounts for ~86%
       of the scalar search's runtime, which is exactly why the batched
       search's :class:`repro.engine.optimal_batch.VectorDominanceArchive`
       exists as its array-backed hot-path counterpart (pinned
       decision-for-decision against this class in
       ``tests/test_optimal_batch.py``), and why the ``BENCH_optimal.json``
       node-throughput ratio depends on this class staying the transparent
       baseline rather than being optimized itself.

    Two mechanisms prune revisits of a decision point:

    * an O(1) duplicate check on the quantized (and, for identical
      batteries, permutation-canonical) state signature -- this catches
      the bulk of the revisits on regular loads, where different
      assignment orders produce (nearly) identical battery states;
    * a small Pareto archive of previously admitted states, checked for
      componentwise dominance.

    A *state matrix* is one dominance vector per battery (see
    :meth:`repro.core.battery.BatteryModel.dominance_vector`); larger
    components mean a strictly better battery state, so a componentwise
    larger matrix can achieve (or better) every schedule of a smaller one.
    """

    def __init__(
        self,
        symmetric: bool,
        dominance_tolerance: float = 0.0,
        archive_limit: int = 64,
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        self.symmetric = symmetric
        self.dominance_tolerance = dominance_tolerance
        self.archive_limit = archive_limit
        #: Optional per-battery symmetry-group ids (see
        #: :func:`parameter_symmetry_groups`).  When given, signatures are
        #: canonicalized per group and dominance checks enumerate the
        #: within-group permutation products, superseding the all-or-nothing
        #: ``symmetric`` flag (kept for the legacy two-state construction).
        self.groups: Optional[Tuple[int, ...]] = (
            tuple(groups) if groups is not None else None
        )
        self._group_members: Tuple[Tuple[int, ...], ...] = ()
        self._perms: List[Tuple[int, ...]] = []
        if self.groups is not None:
            members: dict = {}
            for index, group in enumerate(self.groups):
                members.setdefault(group, []).append(index)
            self._group_members = tuple(
                tuple(indices) for indices in members.values() if len(indices) > 1
            )
            self._perms = group_permutations(self.groups)
        self._archives: dict = {}

    def _vector_dominates(self, a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
        slack = _DOMINANCE_EPSILON + self.dominance_tolerance
        return all(x >= y - slack for x, y in zip(a, b))

    def _matrix_dominates(
        self,
        a: Tuple[Tuple[float, ...], ...],
        b: Tuple[Tuple[float, ...], ...],
    ) -> bool:
        """Whether battery-state matrix ``a`` dominates ``b``.

        Batteries in the same symmetry group are interchangeable, so any
        pairing of ``a``'s batteries against ``b``'s that respects the
        grouping is allowed; when the within-group permutation count stays
        under :data:`_MAX_SYMMETRY_PERMUTATIONS` they are all checked,
        otherwise only the identity pairing.
        """
        n = len(a)
        if self.groups is not None:
            for permutation in self._perms:
                if all(
                    self._vector_dominates(a[permutation[i]], b[i]) for i in range(n)
                ):
                    return True
            return False
        if self.symmetric and n <= 3:
            for permutation in itertools.permutations(range(n)):
                if all(self._vector_dominates(a[permutation[i]], b[i]) for i in range(n)):
                    return True
            return False
        return all(self._vector_dominates(a[i], b[i]) for i in range(n))

    def _canonical_signature(
        self, matrix: Tuple[Tuple[float, ...], ...]
    ) -> Tuple[Tuple[float, ...], ...]:
        """Quantized, permutation-canonical form of a dominance matrix.

        Rows are sorted *within* each symmetry group (all rows, in the
        legacy fully-symmetric mode), so assignment orders that only
        permute identical batteries collapse to one signature.
        """
        scale = max(self.dominance_tolerance, 1e-9)
        quantized = tuple(
            tuple(round(value / scale) if value not in (float("inf"), float("-inf")) else value for value in vector)
            for vector in matrix
        )
        if self.groups is not None:
            canonical = list(quantized)
            for members in self._group_members:
                for slot, row in zip(
                    members, sorted(quantized[index] for index in members)
                ):
                    canonical[slot] = row
            return tuple(canonical)
        if self.symmetric:
            return tuple(sorted(quantized))
        return quantized

    def admit(self, key, matrix: Tuple[Tuple[float, ...], ...]) -> bool:
        """Record a state matrix at a decision point; False when dominated."""
        seen, archive = self._archives.setdefault(key, (set(), []))
        signature = self._canonical_signature(matrix)
        if signature in seen:
            return False
        for existing in archive:
            if self._matrix_dominates(existing, matrix):
                return False
        # Drop archived entries that the new state dominates, to keep the
        # archive small and the checks cheap.
        archive[:] = [
            existing for existing in archive if not self._matrix_dominates(matrix, existing)
        ]
        if len(archive) < self.archive_limit:
            archive.append(matrix)
        seen.add(signature)
        return True


def discrete_bound_slack_for(time_step: float, charge_unit: float) -> float:
    """Relative safety margin of the pooling bound for a dKiBaM search.

    The dKiBaM reports lifetimes slightly above the analytical model (up to
    ~1 % at the paper's reference discretization of ``T = Gamma = 0.01``,
    Tables 3 and 4), so the analytical perfect-pooling bound is inflated
    before pruning discrete-backend searches.  The discretization error --
    and with it the inflation needed to keep the pruning sound -- grows
    with the tick length and the charge unit, so the margin scales with the
    coarseness relative to the reference discretization; at the reference
    itself this is the long-standing 2 %.  Both the scalar and the batched
    search use this same margin, which is what keeps their results in
    lockstep on coarse discretizations.
    """
    coarseness = max(1.0, time_step / 0.01, charge_unit / 0.01)
    return 0.02 * coarseness


def discrete_bound_slack(model: BatteryModel) -> float:
    """The pooling-bound safety margin for one battery model (0 unless dKiBaM)."""
    if model.backend != "discrete":
        return 0.0
    kibam = getattr(model, "kibam", None)
    if kibam is None:
        return 0.02
    return discrete_bound_slack_for(kibam.time_step, kibam.charge_unit)


class _SearchNode:
    """Mutable bookkeeping for one decision point during the search."""

    __slots__ = ("states", "epoch_index", "offset", "time", "assignment")

    def __init__(
        self,
        states: Tuple[Any, ...],
        epoch_index: int,
        offset: float,
        time: float,
        assignment: Tuple[int, ...],
    ) -> None:
        self.states = states
        self.epoch_index = epoch_index
        self.offset = offset
        self.time = time
        self.assignment = assignment


class OptimalScheduler:
    """Branch-and-bound search for the lifetime-maximizing schedule.

    Args:
        models: one battery model per battery.
        load: the load to schedule.
        max_nodes: optional cap on the number of expanded decision nodes;
            when reached the best schedule found so far is returned with
            ``complete=False``.
        use_dominance: enable dominance pruning (on by default; turning it
            off is only useful for the ablation benchmarks).
        use_symmetry: enable symmetry reduction between identical batteries
            (on by default; turning it off -- every battery its own
            group -- is only useful for ablation measurements such as the
            fleet benchmark's group-symmetry nodes ratio).
        archive_limit: maximum number of states kept per decision point for
            dominance checks.
    """

    def __init__(
        self,
        models: Sequence[BatteryModel],
        load: Load,
        max_nodes: Optional[int] = None,
        use_dominance: bool = True,
        archive_limit: int = 64,
        dominance_tolerance: float = 0.0,
        use_symmetry: bool = True,
    ) -> None:
        if not models:
            raise ValueError("at least one battery model is required")
        if dominance_tolerance < 0.0:
            raise ValueError("dominance_tolerance must be non-negative")
        self.models = tuple(models)
        self.load = load
        self.max_nodes = max_nodes
        self.use_dominance = use_dominance
        self.archive_limit = archive_limit
        #: Tolerance (in the units of the dominance vectors, i.e. Amin for
        #: the KiBaM backends) under which two battery states are considered
        #: interchangeable.  Zero gives a certified-optimal search; a small
        #: positive value (e.g. one charge unit) collapses near-identical
        #: states and makes long loads tractable at a negligible, documented
        #: loss of optimality certification.
        self.dominance_tolerance = dominance_tolerance
        self._epochs = load.epochs
        self._epoch_starts = load.epoch_start_times()
        self.use_symmetry = use_symmetry
        #: Per-battery symmetry-group ids: batteries in the same group are
        #: interchangeable (identical model type + parameters).  With
        #: ``use_symmetry=False`` every battery is its own group, which
        #: turns every symmetry mechanism into a no-op.
        self._groups = (
            model_symmetry_groups(self.models)
            if use_symmetry
            else tuple(range(len(self.models)))
        )
        self._pooled_params = self._pooling_parameters()
        self._bound_slack = discrete_bound_slack(self.models[0])
        # Search state.
        self._best_lifetime = float("-inf")
        self._best_assignment: Tuple[int, ...] = ()
        self._nodes_expanded = 0
        self._complete = True
        self._archive = DominanceArchive(
            symmetric=len(set(self._groups)) == 1,
            dominance_tolerance=dominance_tolerance,
            archive_limit=archive_limit,
            groups=self._groups,
        )
        self._bound_cache: dict = {}
        self._job_table_cache: dict = {}
        self._rl_cache: dict = {}

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def search(
        self,
        incumbent_policies: Sequence[str] = ("sequential", "round-robin", "best-of-two"),
    ) -> OptimalScheduleResult:
        """Run the search and return the optimal schedule."""
        incumbent_name = "none"
        incumbent_assignment: Tuple[int, ...] = ()
        simulator = MultiBatterySimulator(self.models)
        for policy_name in incumbent_policies:
            result = simulator.run(self.load, make_policy(policy_name))
            lifetime = result.lifetime if result.lifetime is not None else self.load.total_duration
            if lifetime > self._best_lifetime:
                self._best_lifetime = lifetime
                incumbent_name = policy_name
                incumbent_assignment = self._assignment_from_schedule(result.schedule)
        self._best_assignment = incumbent_assignment

        initial_states = tuple(model.initial_state() for model in self.models)
        root = _SearchNode(
            states=initial_states, epoch_index=0, offset=0.0, time=0.0, assignment=()
        )
        self._explore(root)

        replay = self._replay(self._best_assignment)
        lifetime = (
            replay.lifetime if replay.lifetime is not None else self.load.total_duration
        )
        # Replaying can only agree with (or, for incumbent fallbacks, refine)
        # the recorded value; keep the replayed number as the authoritative one.
        return OptimalScheduleResult(
            lifetime=lifetime,
            schedule=replay.schedule,
            assignment=self._best_assignment,
            nodes_expanded=self._nodes_expanded,
            complete=self._complete,
            backend=self.models[0].backend,
            incumbent_policy=incumbent_name,
            final_states=replay.final_states,
            residual_charge=replay.residual_charge,
        )

    # ------------------------------------------------------------------ #
    # search internals
    # ------------------------------------------------------------------ #
    def _pooling_parameters(self) -> Optional[BatteryParameters]:
        """Parameters of the pooled bound battery, if every model is KiBaM-shaped.

        Summing the transformed states ``(gamma_i, delta_i)`` of KiBaM
        batteries that share ``c`` and ``k'`` yields a quantity that evolves
        exactly like one KiBaM battery with those parameters, regardless of
        how the load is split across the batteries.  Any real schedule dies
        no later than that pooled battery, which gives a tight admissible
        bound for the search.
        """
        params_list = [model.kibam_parameters() for model in self.models]
        if any(p is None for p in params_list):
            return None
        first = params_list[0]
        assert first is not None
        if not all(p.c == first.c and p.k_prime == first.k_prime for p in params_list if p):
            return None
        total_capacity = sum(p.capacity for p in params_list if p is not None)
        return BatteryParameters(
            capacity=total_capacity, c=first.c, k_prime=first.k_prime, name="pooled-bound"
        )

    def _assignment_from_schedule(self, schedule: Schedule) -> Tuple[int, ...]:
        """Extract the per-decision battery choices from a simulated schedule."""
        return tuple(
            entry.battery
            for entry in schedule.entries
            if entry.battery is not None
        )

    def _explore(self, node: _SearchNode) -> None:
        """Depth-first exploration from one decision point."""
        states = node.states
        epoch_index = node.epoch_index
        offset = node.offset
        time = node.time

        # Advance deterministically through idle epochs and detect the end
        # of the load or of the system.
        while True:
            if epoch_index >= len(self._epochs):
                # The batteries survived the load; treat the load end as the
                # observed lifetime (experiments use loads long enough for
                # this not to happen).
                self._record_candidate(time, node.assignment)
                return
            epoch = self._epochs[epoch_index]
            if epoch.is_job:
                break
            span = epoch.duration - offset
            states = tuple(
                model.step(state, 0.0, span).state
                for model, state in zip(self.models, states)
            )
            time += span
            epoch_index += 1
            offset = 0.0

        epoch = self._epochs[epoch_index]
        alive = [
            index
            for index in range(len(self.models))
            if not self.models[index].is_empty(states[index])
        ]
        if not alive:
            self._record_candidate(time, node.assignment)
            return

        # Bound pruning: the system cannot outlive the perfect-pooling bound
        # (or, failing that, the point where cumulative demand exceeds the
        # total remaining charge).
        bound_needed = self._best_lifetime - time
        if self._remaining_lifetime_bound(states, epoch_index, offset) <= bound_needed + _TIME_EPSILON:
            return

        # Dominance pruning among states reaching the same decision point.
        if self.use_dominance and not self._archive.admit(
            (epoch_index, round(offset, 9)), self._dominance_matrix(states)
        ):
            return

        if self.max_nodes is not None and self._nodes_expanded >= self.max_nodes:
            self._complete = False
            return
        self._nodes_expanded += 1

        remaining = epoch.duration - offset
        # Branch over usable batteries, most available charge first (the
        # greedy choice tends to be optimal, which tightens the incumbent
        # early and lets the bound prune the rest).
        ordered = sorted(
            alive, key=lambda index: -self.models[index].available_charge(states[index])
        )
        if offset == 0.0 and node.time == 0.0:
            # All batteries are full at the very first decision: within a
            # symmetry group the choices are interchangeable, so explore one
            # representative per group (a no-op when every group is a
            # singleton).  The stable sort keeps the representative the
            # first-listed battery of its group, matching the batched search.
            seen_groups = set()
            representatives = []
            for index in ordered:
                group = self._groups[index]
                if group in seen_groups:
                    continue
                seen_groups.add(group)
                representatives.append(index)
            ordered = representatives
        for choice in ordered:
            outcome = self.models[choice].step(states[choice], epoch.current, remaining)
            span = outcome.emptied_after if outcome.emptied else remaining
            new_states = list(states)
            new_states[choice] = outcome.state
            for other in range(len(self.models)):
                if other != choice:
                    new_states[other] = self.models[other].step(states[other], 0.0, span).state
            new_assignment = node.assignment + (choice,)
            if outcome.emptied and remaining - span > _TIME_EPSILON:
                child = _SearchNode(
                    states=tuple(new_states),
                    epoch_index=epoch_index,
                    offset=offset + span,
                    time=time + span,
                    assignment=new_assignment,
                )
            else:
                child = _SearchNode(
                    states=tuple(new_states),
                    epoch_index=epoch_index + 1,
                    offset=0.0,
                    time=time + remaining,
                    assignment=new_assignment,
                )
            if outcome.emptied:
                still_alive = any(
                    not self.models[i].is_empty(child.states[i]) for i in range(len(self.models))
                )
                if not still_alive:
                    self._record_candidate(time + span, new_assignment)
                    continue
            self._explore(child)

    def _record_candidate(self, lifetime: float, assignment: Tuple[int, ...]) -> None:
        if lifetime > self._best_lifetime + _TIME_EPSILON:
            self._best_lifetime = lifetime
            self._best_assignment = assignment

    # ------------------------------------------------------------------ #
    # pruning helpers
    # ------------------------------------------------------------------ #
    def _remaining_lifetime_bound(
        self,
        states: Sequence[Any],
        epoch_index: int,
        offset: float,
    ) -> float:
        """Admissible upper bound on the remaining system lifetime.

        With KiBaM-shaped batteries sharing ``c``/``k'`` this is the
        perfect-pooling bound refined by the recovery-limited bound of
        :mod:`repro.kibam.bounds` (never looser, often tighter near the
        endgame); otherwise the total-charge fallback.
        """
        if self._pooled_params is not None:
            bound = self._pooled_bound(states, epoch_index, offset)
            refined = self._recovery_limited_bound(states, epoch_index, offset)
            if refined is not None and refined < bound:
                return refined
            return bound
        return self._total_charge_bound(states, epoch_index, offset)

    def _pooled_bound(self, states: Sequence[Any], epoch_index: int, offset: float) -> float:
        """Perfect-pooling bound: lifetime of one battery holding all alive charge.

        Before any battery dies, the pooled ``(gamma, delta)`` state at a
        given decision point is identical across all branches, so the result
        is cached on (decision point, pooled state) and computed only a
        handful of times per search.
        """
        assert self._pooled_params is not None
        gamma = 0.0
        delta = 0.0
        alive = False
        for i in range(len(self.models)):
            if self.models[i].is_empty(states[i]):
                continue
            summary = self.models[i].kibam_summary(states[i])
            assert summary is not None
            gamma += summary[0]
            delta += summary[1]
            alive = True
        if not alive:
            return 0.0
        cache_key = (epoch_index, round(offset, 9), round(gamma, 9), round(delta, 9))
        cached = self._bound_cache.get(cache_key)
        if cached is not None:
            return cached
        pooled = KibamState(gamma=gamma, delta=delta)
        params = self._pooled_params
        elapsed = 0.0
        bound: Optional[float] = None
        for index in range(epoch_index, len(self._epochs)):
            epoch = self._epochs[index]
            duration = epoch.duration - (offset if index == epoch_index else 0.0)
            crossing = time_to_empty(params, pooled, epoch.current, horizon=duration)
            if crossing is not None:
                bound = (elapsed + crossing) * (1.0 + self._bound_slack)
                break
            pooled = step_constant_current(params, pooled, epoch.current, duration)
            elapsed += duration
        if bound is None:
            bound = elapsed * (1.0 + self._bound_slack)
        if len(self._bound_cache) >= _BOUND_CACHE_LIMIT:
            self._bound_cache.clear()
        self._bound_cache[cache_key] = bound
        return bound

    def _recovery_limited_bound(
        self, states: Sequence[Any], epoch_index: int, offset: float
    ) -> Optional[float]:
        """Recovery-limited refinement of the pooling bound (scalar reference).

        Returns ``None`` when the refinement does not apply (fewer than two
        alive batteries -- the pooled bound is already exact about a single
        server -- or no pooled parameters).  The refinement is admissible
        only for batteries sharing ``c`` and ``k'``, which is exactly the
        condition under which ``self._pooled_params`` exists, and only for
        the *analytical* model: the chain-feasibility half of the argument
        is a theorem of the continuous dynamics, and the dKiBaM grid can
        keep a marginal burst alive that the continuous threshold rules out
        (tick rounding works in the battery's favor), which no
        multiplicative slack can repair.  Discrete searches keep the
        slack-inflated pooling bound.
        """
        params = self._pooled_params
        if params is None or self.models[0].backend != "analytical":
            return None
        c = params.c
        wells = []
        alive = []
        for i in range(len(self.models)):
            if self.models[i].is_empty(states[i]):
                wells.append((0.0, 0.0))
                alive.append(False)
                continue
            summary = self.models[i].kibam_summary(states[i])
            assert summary is not None
            gamma_i, delta_i = summary
            y1_i = c * (gamma_i - (1.0 - c) * delta_i)
            wells.append((y1_i, gamma_i - y1_i))
            alive.append(True)
        if sum(alive) < 2:
            return None
        gamma = sum(w[0] + w[1] for w, ok in zip(wells, alive) if ok)
        y1_pool = sum(w[0] for w, ok in zip(wells, alive) if ok)
        delta = (gamma - y1_pool / c) / (1.0 - c)
        # The bound depends only on the *multiset* of per-battery wells
        # (all batteries share c/k' whenever pooled params exist), so the
        # cache key sorts the wells -- sound for heterogeneous fleets too.
        well_sig = tuple(
            sorted((round(w[0], 9), round(w[1], 9)) for w, ok in zip(wells, alive) if ok)
        )
        rl_key = (epoch_index, round(offset, 9), well_sig)
        cached = self._rl_cache.get(rl_key)
        if cached is not None:
            return cached
        table = self._job_table(epoch_index, offset, gamma, delta)
        y1 = np.asarray([[w[0] for w in wells]])
        y2 = np.asarray([[w[1] for w in wells]])
        mask = np.asarray([alive])
        refined = float(
            recovery_limited_refinements(table, params, y1, y2, mask)[0]
        ) * (1.0 + self._bound_slack)
        if len(self._rl_cache) >= _BOUND_CACHE_LIMIT:
            self._rl_cache.clear()
        self._rl_cache[rl_key] = refined
        return refined

    def _job_table(self, epoch_index: int, offset: float, gamma: float, delta: float):
        """Pooled job table for a decision point (cached on the pooled state)."""
        params = self._pooled_params
        assert params is not None
        cache_key = (epoch_index, round(offset, 9), round(gamma, 9), round(delta, 9))
        table = self._job_table_cache.get(cache_key)
        if table is not None:
            return table

        def solver(p, g, d, current, horizon):
            return time_to_empty(p, KibamState(gamma=g, delta=d), current, horizon=horizon)

        currents = [epoch.current for epoch in self._epochs]
        durations = [epoch.duration for epoch in self._epochs]
        table = build_pooled_job_table(
            params, currents, durations, epoch_index, offset, gamma, delta, solver
        )
        if len(self._job_table_cache) >= _BOUND_CACHE_LIMIT:
            self._job_table_cache.clear()
        self._job_table_cache[cache_key] = table
        return table

    def _total_charge_bound(
        self, states: Sequence[Any], epoch_index: int, offset: float
    ) -> float:
        """Fallback bound: batteries cannot deliver more charge than they hold."""
        total_charge = sum(
            self.models[i].total_charge(states[i])
            for i in range(len(self.models))
            if not self.models[i].is_empty(states[i])
        )
        elapsed = 0.0
        for index in range(epoch_index, len(self._epochs)):
            epoch = self._epochs[index]
            duration = epoch.duration - (offset if index == epoch_index else 0.0)
            demand = epoch.current * duration
            if epoch.current > 0.0 and demand >= total_charge:
                return elapsed + total_charge / epoch.current
            total_charge -= demand
            elapsed += duration
        return elapsed

    def _dominance_matrix(self, states: Sequence[Any]) -> Tuple[Tuple[float, ...], ...]:
        return tuple(
            self.models[i].dominance_vector(states[i]) for i in range(len(self.models))
        )

    # ------------------------------------------------------------------ #
    # schedule reconstruction
    # ------------------------------------------------------------------ #
    def _replay(self, assignment: Sequence[int]) -> SimulationResult:
        """Replay an assignment through the simulator to obtain a schedule."""
        simulator = MultiBatterySimulator(self.models)
        return simulator.run(self.load, FixedAssignmentPolicy(assignment))


def find_optimal_schedule(
    params: Sequence[BatteryParameters],
    load: Load,
    backend: str = "analytical",
    time_step: float = 0.01,
    charge_unit: float = 0.01,
    max_nodes: Optional[int] = None,
    use_dominance: bool = True,
    dominance_tolerance: float = 0.0,
    use_symmetry: bool = True,
) -> OptimalScheduleResult:
    """Find the schedule that maximizes the system lifetime.

    This is the library's replacement for the paper's Uppaal Cora analysis.

    Args:
        params: battery parameter sets, one per battery.
        load: the load to schedule (must be long enough to exhaust the
            batteries, otherwise the reported lifetime is the load length).
        backend: ``"analytical"`` for the continuous KiBaM (fast, used for
            Table 5) or ``"discrete"`` for the dKiBaM (faithful to the
            paper's TA-KiBaM).
        time_step: dKiBaM tick length in minutes (discrete backend only).
        charge_unit: dKiBaM charge unit in Amin (discrete backend only).
        max_nodes: optional cap on the search size.
        use_dominance: disable only for ablation experiments.
        dominance_tolerance: charge tolerance (Amin) under which two battery
            states are merged.  Zero (the default) certifies optimality; a
            small value such as one dKiBaM charge unit (0.01 Amin) makes the
            longest loads tractable with a negligible effect on the result.
        use_symmetry: disable only for ablation experiments (symmetry
            reduction between identical batteries never changes the result,
            only the node count).

    Returns:
        An :class:`OptimalScheduleResult` with the maximal lifetime, a
        schedule achieving it and search statistics.
    """
    models = make_battery_models(
        params, backend=backend, time_step=time_step, charge_unit=charge_unit
    )
    scheduler = OptimalScheduler(
        models,
        load,
        max_nodes=max_nodes,
        use_dominance=use_dominance,
        dominance_tolerance=dominance_tolerance,
        use_symmetry=use_symmetry,
    )
    return scheduler.search()
