"""Deterministic battery scheduling policies (Section 6 of the paper).

A policy is consulted at every *scheduling point*: the start of each job
and the instant a serving battery is observed empty mid-job (switchover).
The paper compares three deterministic schemes against the optimal
schedule:

* **sequential** -- use the batteries one after the other; the second one is
  only touched when the first is empty,
* **round robin** -- pick the next battery in a fixed cyclic order at every
  new job,
* **best-of-two** (best available) -- pick the non-empty battery with the
  most charge in its available-charge well.

This module also provides a few extra policies used by the examples and the
extension experiments: a worst-of-two adversarial baseline, a seeded random
policy and a fixed-assignment policy for replaying precomputed (optimal)
schedules.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.battery import BatteryView


@dataclasses.dataclass(frozen=True)
class DecisionContext:
    """Everything a policy may look at when choosing a battery.

    Attributes:
        time: absolute time of the decision in minutes.
        epoch_index: index of the current load epoch.
        job_index: index of the current job (counting job epochs only).
        current: the current demanded by the job, in Ampere.
        remaining_duration: time left in the job at this decision, in minutes.
        views: one :class:`BatteryView` per battery, indexed by battery.
        is_switchover: ``True`` when the decision is due to the previously
            serving battery being observed empty mid-job.
        previous_choice: battery that served the previous span, if any.
    """

    time: float
    epoch_index: int
    job_index: int
    current: float
    remaining_duration: float
    views: Sequence[BatteryView]
    is_switchover: bool = False
    previous_choice: Optional[int] = None

    def alive(self) -> List[int]:
        """Indices of the batteries that have not been observed empty."""
        return [view.index for view in self.views if not view.is_empty]


class SchedulingPolicy(abc.ABC):
    """Interface for battery scheduling policies."""

    #: Short identifier used in tables and registries.
    name: str = "abstract"

    def reset(self, n_batteries: int) -> None:
        """Forget all internal state before a new simulation run."""

    @abc.abstractmethod
    def choose(self, context: DecisionContext) -> int:
        """Return the index of the battery that should serve the job.

        The returned battery must be alive (not observed empty); the
        simulator validates this and raises otherwise.
        """


class SequentialPolicy(SchedulingPolicy):
    """Use the batteries in index order; switch only when one is empty."""

    name = "sequential"

    def choose(self, context: DecisionContext) -> int:
        alive = context.alive()
        if not alive:
            raise ValueError("no battery left to schedule")
        return min(alive)


class RoundRobinPolicy(SchedulingPolicy):
    """Pick the next battery in a fixed cyclic order at every decision."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last_choice: Optional[int] = None

    def reset(self, n_batteries: int) -> None:
        self._last_choice = None

    def choose(self, context: DecisionContext) -> int:
        alive = set(context.alive())
        if not alive:
            raise ValueError("no battery left to schedule")
        n = len(context.views)
        start = 0 if self._last_choice is None else (self._last_choice + 1) % n
        for offset in range(n):
            candidate = (start + offset) % n
            if candidate in alive:
                self._last_choice = candidate
                return candidate
        raise AssertionError("unreachable: alive set was non-empty")


class BestOfTwoPolicy(SchedulingPolicy):
    """Pick the non-empty battery with the most available charge.

    Despite the name (taken from the paper, which schedules two batteries),
    the rule generalises to any number of batteries: it is the
    "best available charge" policy of Chiasserini & Rao and Benini et al.
    Ties are broken towards the lowest battery index, which makes the policy
    behave exactly like round robin on symmetric loads -- the behaviour the
    paper reports.
    """

    name = "best-of-two"

    def choose(self, context: DecisionContext) -> int:
        alive = context.alive()
        if not alive:
            raise ValueError("no battery left to schedule")
        previous = context.previous_choice
        def sort_key(index: int):
            view = context.views[index]
            # Highest available charge first; prefer switching away from the
            # battery that just served on ties (and then the lowest index)
            # so that fully symmetric states alternate like round robin.
            return (-view.available_charge, 1 if index == previous else 0, index)
        return min(alive, key=sort_key)


class WorstOfTwoPolicy(SchedulingPolicy):
    """Adversarial baseline: always pick the weakest non-empty battery."""

    name = "worst-of-two"

    def choose(self, context: DecisionContext) -> int:
        alive = context.alive()
        if not alive:
            raise ValueError("no battery left to schedule")
        return min(alive, key=lambda index: (context.views[index].available_charge, index))


class RandomPolicy(SchedulingPolicy):
    """Pick a uniformly random alive battery (seeded, for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self, n_batteries: int) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, context: DecisionContext) -> int:
        alive = context.alive()
        if not alive:
            raise ValueError("no battery left to schedule")
        return self._rng.choice(alive)


class FixedAssignmentPolicy(SchedulingPolicy):
    """Replay a precomputed assignment (used to replay optimal schedules).

    The assignment maps a decision counter (0 for the first scheduling
    point, 1 for the second, ...) to a battery index.  Decisions beyond the
    end of the assignment fall back to the best-available rule, which keeps
    replays robust when the tail of a schedule is irrelevant (after the
    recorded lifetime).
    """

    name = "fixed"

    def __init__(self, assignment: Sequence[int]) -> None:
        self.assignment = list(assignment)
        self._decision = 0
        self._fallback = BestOfTwoPolicy()

    def reset(self, n_batteries: int) -> None:
        self._decision = 0

    def choose(self, context: DecisionContext) -> int:
        index = self._decision
        self._decision += 1
        if index < len(self.assignment):
            choice = self.assignment[index]
            if context.views[choice].is_empty:
                error = ValueError(
                    f"fixed assignment chose battery {choice} at decision {index}, "
                    "but it is already empty"
                )
                # Structured location for callers that repair the
                # assignment (the seeded optimal search truncates a foreign
                # schedule at the failing decision instead of replaying
                # one-shorter prefixes quadratically).
                error.decision_index = index
                raise error
            return choice
        return self._fallback.choose(context)


#: Registry of the named policies used by the analysis layer and the CLI
#: examples.  The values are zero-argument factories so each simulation run
#: gets a fresh, state-free policy instance.
POLICY_REGISTRY: Dict[str, Callable[[], SchedulingPolicy]] = {
    "sequential": SequentialPolicy,
    "round-robin": RoundRobinPolicy,
    "best-of-two": BestOfTwoPolicy,
    "worst-of-two": WorstOfTwoPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ValueError(f"unknown policy {name!r}; known policies: {known}") from None
    return factory()
