"""Uniform battery-stepping interface for the scheduling layer.

The simulator and the optimal scheduler need to advance a battery by a
constant-current span and to detect the instant the battery is observed
empty, but they should not care whether the underlying model is the
analytical KiBaM, the dKiBaM or something else.  This module defines that
interface (:class:`BatteryModel`) and the adapters for the models in
:mod:`repro.kibam`.

Once a battery has been observed empty it stays unusable, even though the
KiBaM recovery effect would make a little charge available again -- this is
the assumption of Section 4.3 of the paper.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Optional, Sequence, Tuple

from repro.kibam.analytical import (
    KibamState,
    available_charge as kibam_available_charge,
    initial_state as kibam_initial_state,
    is_empty as kibam_is_empty,
    step_constant_current,
)
from repro.kibam.discrete import DiscreteBatteryState, DiscreteKibam
from repro.kibam.lifetime import time_to_empty
from repro.kibam.parameters import BatteryParameters


@dataclasses.dataclass(frozen=True)
class StepOutcome:
    """Result of stepping one battery over (part of) a constant-current span.

    Attributes:
        state: battery state at the end of the step.
        emptied_after: if the battery was observed empty during the span,
            the time (minutes) into the span at which this happened;
            ``None`` when the battery survived the whole span.
    """

    state: Any
    emptied_after: Optional[float] = None

    @property
    def emptied(self) -> bool:
        return self.emptied_after is not None


@dataclasses.dataclass(frozen=True)
class BatteryView:
    """Read-only battery summary exposed to scheduling policies."""

    index: int
    available_charge: float
    total_charge: float
    is_empty: bool


class BatteryModel(abc.ABC):
    """Stepping interface for a single battery."""

    #: Human readable backend name ("analytical", "discrete", ...).
    backend: str = "abstract"

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """State of a fully charged battery."""

    @abc.abstractmethod
    def step(self, state: Any, current: float, duration: float) -> StepOutcome:
        """Advance ``state`` by ``duration`` minutes at constant ``current``.

        If the battery is observed empty during the span, the returned
        outcome carries the offset at which that happened and the state at
        that instant; the battery must not be stepped further with a
        positive current afterwards.
        """

    @abc.abstractmethod
    def is_empty(self, state: Any) -> bool:
        """Whether the empty criterion holds for ``state``."""

    @abc.abstractmethod
    def available_charge(self, state: Any) -> float:
        """Charge in the available-charge well (Amin)."""

    @abc.abstractmethod
    def total_charge(self, state: Any) -> float:
        """Total charge left in the battery (Amin)."""

    @abc.abstractmethod
    def dominance_vector(self, state: Any) -> Tuple[float, ...]:
        """A tuple in which componentwise-larger means a strictly better state.

        Used by the optimal scheduler for dominance pruning: if every
        component of ``dominance_vector(a)`` is at least the corresponding
        component of ``dominance_vector(b)``, then any schedule achievable
        from ``b`` is achievable (or bettered) from ``a``.
        """

    def kibam_summary(self, state: Any) -> Optional[Tuple[float, float]]:
        """The transformed KiBaM coordinates ``(gamma, delta)`` of a state.

        Returns ``None`` for models that are not KiBaM-shaped.  The optimal
        scheduler uses this for its perfect-pooling bound: the sum of the
        per-battery ``(gamma, delta)`` states evolves exactly like a single
        KiBaM battery, whose lifetime upper-bounds every schedule.
        """
        return None

    def kibam_parameters(self) -> Optional[BatteryParameters]:
        """The KiBaM parameters of this battery, if it is KiBaM-shaped."""
        return None

    def view(self, index: int, state: Any) -> BatteryView:
        """Build the policy-facing view of a battery state."""
        return BatteryView(
            index=index,
            available_charge=self.available_charge(state),
            total_charge=self.total_charge(state),
            is_empty=self.is_empty(state),
        )


@dataclasses.dataclass(frozen=True)
class _MarkedState:
    """Wrapper adding a sticky ``empty`` observation flag to a model state."""

    inner: Any
    empty: bool = False


class AnalyticalBattery(BatteryModel):
    """Adapter for the analytical (continuous) KiBaM."""

    backend = "analytical"

    def __init__(self, params: BatteryParameters) -> None:
        self.params = params

    def initial_state(self) -> _MarkedState:
        return _MarkedState(inner=kibam_initial_state(self.params))

    def step(self, state: _MarkedState, current: float, duration: float) -> StepOutcome:
        if state.empty:
            if current > 0.0:
                raise ValueError("cannot draw current from a battery observed empty")
            return StepOutcome(state=state)
        inner: KibamState = state.inner
        crossing = time_to_empty(self.params, inner, current, horizon=duration)
        if crossing is None:
            new_inner = step_constant_current(self.params, inner, current, duration)
            return StepOutcome(state=_MarkedState(inner=new_inner))
        new_inner = step_constant_current(self.params, inner, current, crossing)
        return StepOutcome(
            state=_MarkedState(inner=new_inner, empty=True),
            emptied_after=crossing,
        )

    def is_empty(self, state: _MarkedState) -> bool:
        return state.empty or kibam_is_empty(self.params, state.inner, tolerance=1e-12)

    def available_charge(self, state: _MarkedState) -> float:
        return max(0.0, kibam_available_charge(self.params, state.inner))

    def total_charge(self, state: _MarkedState) -> float:
        return max(0.0, state.inner.gamma)

    def dominance_vector(self, state: _MarkedState) -> Tuple[float, ...]:
        if state.empty:
            # Any empty battery is as bad as any other and worse than every
            # usable one: collapse to a canonical minimum.
            return (0.0, float("-inf"), float("-inf"))
        return (1.0, state.inner.gamma, -state.inner.delta)

    def kibam_summary(self, state: _MarkedState) -> Optional[Tuple[float, float]]:
        return (state.inner.gamma, state.inner.delta)

    def kibam_parameters(self) -> Optional[BatteryParameters]:
        return self.params


class DiscreteBattery(BatteryModel):
    """Adapter for the discretized KiBaM (dKiBaM)."""

    backend = "discrete"

    def __init__(
        self,
        params: BatteryParameters,
        time_step: float = 0.01,
        charge_unit: float = 0.01,
    ) -> None:
        self.params = params
        self.kibam = DiscreteKibam(params, time_step=time_step, charge_unit=charge_unit)

    def initial_state(self) -> DiscreteBatteryState:
        return self.kibam.initial_state()

    def step(self, state: DiscreteBatteryState, current: float, duration: float) -> StepOutcome:
        if state.empty:
            if current > 0.0:
                raise ValueError("cannot draw current from a battery observed empty")
            return StepOutcome(state=state)
        new_state, empty_tick = self.kibam.run_segment(state, current, duration)
        if empty_tick is None:
            return StepOutcome(state=new_state)
        return StepOutcome(state=new_state, emptied_after=empty_tick * self.kibam.time_step)

    def is_empty(self, state: DiscreteBatteryState) -> bool:
        return state.empty or self.kibam.is_empty(state)

    def available_charge(self, state: DiscreteBatteryState) -> float:
        return max(0.0, self.kibam.available_charge(state))

    def total_charge(self, state: DiscreteBatteryState) -> float:
        return state.n * self.kibam.charge_unit

    def dominance_vector(self, state: DiscreteBatteryState) -> Tuple[float, ...]:
        if state.empty:
            inf = float("-inf")
            return (0.0, inf, inf, inf, inf)
        return (
            1.0,
            float(state.n),
            -float(state.m),
            -float(state.disch_ticks),
            float(state.recov_ticks),
        )

    def kibam_summary(self, state: DiscreteBatteryState) -> Optional[Tuple[float, float]]:
        continuous = self.kibam.to_continuous(state)
        return (continuous.gamma, continuous.delta)

    def kibam_parameters(self) -> Optional[BatteryParameters]:
        return self.params


class LinearBatteryModel(BatteryModel):
    """Adapter for the ideal linear battery (no rate-capacity, no recovery).

    Under this model scheduling is irrelevant -- every schedule delivers the
    same lifetime -- which makes it a useful control in experiments that
    attribute the scheduling gains to the KiBaM non-linearities.
    """

    backend = "linear"

    def __init__(self, params: BatteryParameters) -> None:
        self.params = params

    def initial_state(self) -> float:
        return self.params.capacity

    def step(self, state: float, current: float, duration: float) -> StepOutcome:
        if current <= 0.0:
            return StepOutcome(state=state)
        drawn = current * duration
        if drawn < state:
            return StepOutcome(state=state - drawn)
        emptied_after = state / current
        return StepOutcome(state=0.0, emptied_after=emptied_after)

    def is_empty(self, state: float) -> bool:
        return state <= 0.0

    def available_charge(self, state: float) -> float:
        return max(0.0, state)

    def total_charge(self, state: float) -> float:
        return max(0.0, state)

    def dominance_vector(self, state: float) -> Tuple[float, ...]:
        return (state,)


def make_battery_models(
    params: Sequence[BatteryParameters],
    backend: str = "analytical",
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> Tuple[BatteryModel, ...]:
    """Build one battery model per parameter set for the given backend."""
    if backend == "analytical":
        return tuple(AnalyticalBattery(p) for p in params)
    if backend == "discrete":
        return tuple(DiscreteBattery(p, time_step=time_step, charge_unit=charge_unit) for p in params)
    if backend == "linear":
        return tuple(LinearBatteryModel(p) for p in params)
    raise ValueError(f"unknown battery backend: {backend!r}")
