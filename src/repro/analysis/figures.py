"""Reproduction of Figure 6: charge evolution under a schedule.

Figure 6 of the paper plots, for the ILs alt load on two B1 batteries, the
total and available charge of both batteries over time together with the
chosen-battery step function, once for the best-of-two schedule and once
for the optimal schedule.  :func:`figure6` regenerates those data series;
the examples render them as ASCII plots or dump them as CSV for external
plotting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.optimal import find_optimal_schedule
from repro.core.schedule import Schedule
from repro.core.simulator import simulate_policy
from repro.kibam.analytical import available_charge, initial_state, step_constant_current
from repro.kibam.parameters import B1, BatteryParameters
from repro.workloads.load import Load
from repro.workloads.profiles import paper_loads


@dataclasses.dataclass(frozen=True)
class ChargeTrace:
    """Sampled charge evolution of the batteries under one schedule.

    Attributes:
        policy_name: name of the schedule that produced the trace.
        times: sample times in minutes.
        total_charge: per-battery list of total-charge series (Amin).
        available_charge: per-battery list of available-charge series (Amin).
        chosen_battery: per-sample index of the serving battery (``None``
            while idle or after system death).
        lifetime: system lifetime of the schedule in minutes.
    """

    policy_name: str
    times: List[float]
    total_charge: List[List[float]]
    available_charge: List[List[float]]
    chosen_battery: List[Optional[int]]
    lifetime: float

    @property
    def n_batteries(self) -> int:
        return len(self.total_charge)


@dataclasses.dataclass(frozen=True)
class Figure6Data:
    """The two panels of Figure 6: best-of-two (a) and optimal (b)."""

    best_of_two: ChargeTrace
    optimal: ChargeTrace
    load_name: str


def charge_trace_for_schedule(
    params: Sequence[BatteryParameters],
    schedule: Schedule,
    lifetime: float,
    sample_interval: float = 0.05,
) -> ChargeTrace:
    """Sample the per-battery charge evolution implied by a schedule.

    The schedule is converted to per-battery piecewise-constant loads and
    each battery is stepped with the analytical KiBaM, which is how the
    paper's figure is produced (the plotted curves are the model state, not
    measurements).
    """
    if sample_interval <= 0.0:
        raise ValueError("sample_interval must be positive")
    if len(params) != schedule.n_batteries:
        raise ValueError("one parameter set per scheduled battery is required")
    horizon = lifetime
    per_battery = schedule.per_battery_segments(horizon=horizon)

    times: List[float] = [0.0]
    time = 0.0
    while time < horizon - 1e-12:
        time = min(time + sample_interval, horizon)
        times.append(time)

    total: List[List[float]] = []
    available: List[List[float]] = []
    for battery, segments in enumerate(per_battery):
        battery_params = params[battery]
        state = initial_state(battery_params)
        series_total = [state.gamma]
        series_available = [available_charge(battery_params, state)]
        segment_iter = iter(segments)
        current, remaining = next(segment_iter, (0.0, float("inf")))
        for previous, now in zip(times[:-1], times[1:]):
            span = now - previous
            while span > 1e-12:
                step = min(span, remaining)
                state = step_constant_current(battery_params, state, current, step)
                span -= step
                remaining -= step
                if remaining <= 1e-12:
                    current, remaining = next(segment_iter, (0.0, float("inf")))
            series_total.append(state.gamma)
            series_available.append(max(0.0, available_charge(battery_params, state)))
        total.append(series_total)
        available.append(series_available)

    chosen: List[Optional[int]] = []
    serving = [entry for entry in schedule.entries if entry.battery is not None]
    for time in times:
        battery: Optional[int] = None
        for entry in serving:
            if entry.start_time - 1e-9 <= time < entry.end_time - 1e-9:
                battery = entry.battery
                break
        chosen.append(battery)

    return ChargeTrace(
        policy_name=schedule.policy_name,
        times=times,
        total_charge=total,
        available_charge=available,
        chosen_battery=chosen,
        lifetime=lifetime,
    )


def figure6(
    load: Optional[Load] = None,
    params: Optional[Sequence[BatteryParameters]] = None,
    sample_interval: float = 0.05,
    dominance_tolerance: float = 0.005,
) -> Figure6Data:
    """Regenerate the data behind Figure 6 of the paper.

    Args:
        load: the load to schedule; defaults to the paper's ILs alt load.
        params: battery parameters; defaults to two B1 batteries.
        sample_interval: sampling interval of the charge curves in minutes.
        dominance_tolerance: tolerance passed to the optimal search.
    """
    if load is None:
        load = paper_loads()["ILs alt"]
    if params is None:
        params = (B1, B1)

    best = simulate_policy(params, load, "best-of-two")
    best_trace = charge_trace_for_schedule(
        params, best.schedule, best.lifetime_or_raise(), sample_interval=sample_interval
    )

    optimal = find_optimal_schedule(params, load, dominance_tolerance=dominance_tolerance)
    optimal_trace = charge_trace_for_schedule(
        params, optimal.schedule, optimal.lifetime, sample_interval=sample_interval
    )
    return Figure6Data(best_of_two=best_trace, optimal=optimal_trace, load_name=load.name)


def residual_charge_summary(trace: ChargeTrace) -> Dict[str, float]:
    """Residual charge statistics at system death for one trace.

    Section 6 observes that about 70 % of the original charge is still in
    the B1 batteries when the system dies; this helper extracts that number
    from a trace.
    """
    final_total = sum(series[-1] for series in trace.total_charge)
    initial_total = sum(series[0] for series in trace.total_charge)
    return {
        "residual_charge_amin": final_total,
        "residual_fraction": final_total / initial_total if initial_total else 0.0,
        "lifetime": trace.lifetime,
    }
