"""Reproduction of the paper's tables.

* Table 3: single-battery lifetimes for battery type B1 under the ten test
  loads, analytical KiBaM versus the discretized model (the paper runs the
  TA-KiBaM; the dKiBaM underneath is identical, and the TA route is cross
  checked in the test suite).
* Table 4: the same for battery type B2.
* Table 5: two-battery system lifetimes under the sequential, round-robin,
  best-of-two and optimal schedules, with the relative difference to round
  robin.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.engine.optimal_batch import find_optimal_schedule_batched
from repro.core.schedule import relative_difference
from repro.core.simulator import simulate_policy
from repro.kibam.discrete import DiscreteKibam
from repro.kibam.lifetime import lifetime_under_segments
from repro.kibam.parameters import B1, B2, BatteryParameters
from repro.workloads.load import Load
from repro.workloads.profiles import paper_loads

#: The paper's published numbers, used by EXPERIMENTS.md and the regression
#: tests to report paper-vs-measured side by side.  Loads ILs r1 / ILs r2
#: use unpublished random sequences and are therefore not compared
#: quantitatively.
PAPER_TABLE3 = {
    "CL 250": (4.53, 4.56),
    "CL 500": (2.02, 2.04),
    "CL alt": (2.58, 2.60),
    "ILs 250": (10.80, 10.84),
    "ILs 500": (4.30, 4.32),
    "ILs alt": (4.80, 4.82),
    "IL` 250": (21.86, 21.88),
    "IL` 500": (6.53, 6.56),
}

PAPER_TABLE4 = {
    "CL 250": (12.16, 12.28),
    "CL 500": (4.53, 4.54),
    "CL alt": (6.45, 6.52),
    "ILs 250": (44.78, 44.80),
    "ILs 500": (10.80, 10.84),
    "ILs alt": (16.93, 16.94),
    "IL` 250": (84.90, 84.92),
    "IL` 500": (21.86, 21.88),
}

#: Table 5 of the paper: (sequential, round robin, best-of-two, optimal)
#: system lifetimes for two B1 batteries.
PAPER_TABLE5 = {
    "CL 250": (9.12, 11.60, 11.60, 12.04),
    "CL 500": (4.10, 4.53, 4.53, 4.58),
    "CL alt": (5.48, 6.10, 6.12, 6.48),
    "ILs 250": (22.80, 38.96, 38.96, 40.80),
    "ILs 500": (8.60, 10.48, 10.48, 10.48),
    "ILs alt": (12.38, 12.82, 16.30, 16.91),
    "IL` 250": (45.84, 76.00, 76.00, 78.96),
    "IL` 500": (12.94, 15.96, 15.96, 18.68),
}


@dataclasses.dataclass(frozen=True)
class ValidationRow:
    """One row of Table 3 / Table 4.

    Attributes:
        load_name: name of the test load.
        analytical_lifetime: lifetime from the analytical KiBaM (minutes).
        discrete_lifetime: lifetime from the dKiBaM (minutes).
        difference_percent: relative difference of the discrete model with
            respect to the analytical one, in percent.
        paper_analytical: the paper's KiBaM column, when published.
        paper_discrete: the paper's TA-KiBaM column, when published.
    """

    load_name: str
    analytical_lifetime: float
    discrete_lifetime: float
    difference_percent: float
    paper_analytical: Optional[float] = None
    paper_discrete: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class SchedulingRow:
    """One row of Table 5.

    Lifetimes are in minutes; the ``*_diff_percent`` columns are relative to
    the round-robin lifetime, matching the paper's presentation.
    """

    load_name: str
    sequential: float
    sequential_diff_percent: float
    round_robin: float
    best_of_two: float
    best_of_two_diff_percent: float
    optimal: float
    optimal_diff_percent: float
    paper_values: Optional[tuple] = None


def validation_table(
    params: BatteryParameters,
    loads: Optional[Mapping[str, Load]] = None,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
    paper_reference: Optional[Mapping[str, tuple]] = None,
) -> List[ValidationRow]:
    """Single-battery validation table (the shape of Tables 3 and 4).

    Args:
        params: battery parameters (B1 for Table 3, B2 for Table 4).
        loads: loads to evaluate; defaults to the paper's ten test loads.
        time_step: dKiBaM tick length in minutes.
        charge_unit: dKiBaM charge unit in Amin.
        paper_reference: optional mapping from load name to the paper's
            (analytical, discrete) values for side-by-side reporting.
    """
    if loads is None:
        loads = paper_loads()
    rows: List[ValidationRow] = []
    for name, load in loads.items():
        segments = load.segments()
        analytical = lifetime_under_segments(params, segments)
        if analytical is None:
            raise RuntimeError(f"load {name!r} does not exhaust the battery; extend it")
        discrete_model = DiscreteKibam(params, time_step=time_step, charge_unit=charge_unit)
        discrete = discrete_model.lifetime_under_segments(segments)
        if discrete is None:
            raise RuntimeError(f"load {name!r} does not exhaust the discretized battery")
        reference = (paper_reference or {}).get(name)
        rows.append(
            ValidationRow(
                load_name=name,
                analytical_lifetime=analytical,
                discrete_lifetime=discrete,
                difference_percent=relative_difference(discrete, analytical),
                paper_analytical=reference[0] if reference else None,
                paper_discrete=reference[1] if reference else None,
            )
        )
    return rows


def table3(
    loads: Optional[Mapping[str, Load]] = None,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> List[ValidationRow]:
    """Table 3: battery B1 lifetimes, analytical KiBaM vs dKiBaM."""
    return validation_table(
        B1, loads=loads, time_step=time_step, charge_unit=charge_unit, paper_reference=PAPER_TABLE3
    )


def table4(
    loads: Optional[Mapping[str, Load]] = None,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
) -> List[ValidationRow]:
    """Table 4: battery B2 lifetimes, analytical KiBaM vs dKiBaM."""
    return validation_table(
        B2, loads=loads, time_step=time_step, charge_unit=charge_unit, paper_reference=PAPER_TABLE4
    )


def scheduling_table(
    params: Sequence[BatteryParameters],
    loads: Optional[Mapping[str, Load]] = None,
    backend: str = "analytical",
    dominance_tolerance: float = 0.005,
    max_nodes: Optional[int] = None,
    paper_reference: Optional[Mapping[str, tuple]] = None,
) -> List[SchedulingRow]:
    """Multi-battery scheduling comparison (the shape of Table 5).

    Args:
        params: battery parameters, one entry per battery (the paper uses
            two B1 batteries).
        loads: loads to evaluate; defaults to the paper's ten test loads.
        backend: battery backend used for policy simulation and the optimal
            search.
        dominance_tolerance: state-merge tolerance for the optimal search;
            the default of half a charge unit keeps the longest loads
            tractable and does not change any reported digit.
        max_nodes: optional cap on the optimal search size.
        paper_reference: optional mapping from load name to the paper's
            (sequential, round robin, best-of-two, optimal) values.
    """
    if loads is None:
        loads = paper_loads()
    rows: List[SchedulingRow] = []
    for name, load in loads.items():
        lifetimes: Dict[str, float] = {}
        for policy in ("sequential", "round-robin", "best-of-two"):
            result = simulate_policy(params, load, policy, backend=backend)
            lifetimes[policy] = result.lifetime_or_raise()
        # The batched branch-and-bound (engine kernels + vectorized
        # dominance archive) reproduces the scalar search's optima and cuts
        # the Table-5 optimal column from ~30s to a few seconds.
        optimal = find_optimal_schedule_batched(
            params,
            load,
            model=backend,
            dominance_tolerance=dominance_tolerance,
            max_nodes=max_nodes,
        )
        round_robin = lifetimes["round-robin"]
        rows.append(
            SchedulingRow(
                load_name=name,
                sequential=lifetimes["sequential"],
                sequential_diff_percent=relative_difference(lifetimes["sequential"], round_robin),
                round_robin=round_robin,
                best_of_two=lifetimes["best-of-two"],
                best_of_two_diff_percent=relative_difference(lifetimes["best-of-two"], round_robin),
                optimal=optimal.lifetime,
                optimal_diff_percent=relative_difference(optimal.lifetime, round_robin),
                paper_values=(paper_reference or {}).get(name),
            )
        )
    return rows


def table5(
    loads: Optional[Mapping[str, Load]] = None,
    backend: str = "analytical",
    dominance_tolerance: float = 0.005,
) -> List[SchedulingRow]:
    """Table 5: two B1 batteries under the four scheduling schemes."""
    return scheduling_table(
        [B1, B1],
        loads=loads,
        backend=backend,
        dominance_tolerance=dominance_tolerance,
        paper_reference=PAPER_TABLE5,
    )
