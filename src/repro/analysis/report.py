"""Plain-text rendering of the reproduced tables and figures.

The benchmark harnesses and examples use these helpers to print the same
rows the paper reports, side by side with the published values where they
exist.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.figures import ChargeTrace, Figure6Data, residual_charge_summary
from repro.analysis.tables import SchedulingRow, ValidationRow


def _format_optional(value, fmt: str = "{:.2f}", missing: str = "   -") -> str:
    return fmt.format(value) if value is not None else missing


def render_validation_table(rows: Iterable[ValidationRow], title: str) -> str:
    """Render a Table 3 / Table 4 style comparison as text."""
    lines: List[str] = [title]
    header = (
        f"{'load':10s} {'KiBaM':>8s} {'dKiBaM':>8s} {'diff %':>7s} "
        f"{'paper KiBaM':>12s} {'paper TA':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.load_name:10s} {row.analytical_lifetime:8.2f} {row.discrete_lifetime:8.2f} "
            f"{row.difference_percent:7.2f} "
            f"{_format_optional(row.paper_analytical, '{:>12.2f}', '           -')} "
            f"{_format_optional(row.paper_discrete, '{:>9.2f}', '        -')}"
        )
    return "\n".join(lines)


def render_scheduling_table(rows: Iterable[SchedulingRow], title: str) -> str:
    """Render a Table 5 style scheduling comparison as text."""
    lines: List[str] = [title]
    header = (
        f"{'load':10s} {'seq':>7s} {'diff%':>7s} {'RR':>7s} {'best':>7s} {'diff%':>7s} "
        f"{'opt':>7s} {'diff%':>7s}  {'paper (seq/RR/best/opt)':>26s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        paper = (
            "/".join(f"{value:.2f}" for value in row.paper_values)
            if row.paper_values
            else "-"
        )
        lines.append(
            f"{row.load_name:10s} {row.sequential:7.2f} {row.sequential_diff_percent:7.1f} "
            f"{row.round_robin:7.2f} {row.best_of_two:7.2f} {row.best_of_two_diff_percent:7.1f} "
            f"{row.optimal:7.2f} {row.optimal_diff_percent:7.1f}  {paper:>26s}"
        )
    return "\n".join(lines)


def render_figure6_summary(data: Figure6Data) -> str:
    """Summarize the Figure 6 traces as text (lifetimes and residual charge)."""
    lines = [f"Figure 6 -- load {data.load_name}"]
    for label, trace in (("best-of-two", data.best_of_two), ("optimal", data.optimal)):
        summary = residual_charge_summary(trace)
        lines.append(
            f"  {label:12s} lifetime={summary['lifetime']:.2f} min, "
            f"residual charge={summary['residual_charge_amin']:.2f} Amin "
            f"({summary['residual_fraction'] * 100.0:.0f}% of capacity)"
        )
    return "\n".join(lines)


def render_schedule_ascii(trace: ChargeTrace, width: int = 72) -> str:
    """A small ASCII rendering of which battery serves over time."""
    if not trace.times:
        return "(empty trace)"
    lines = [f"schedule ({trace.policy_name}), lifetime {trace.lifetime:.2f} min"]
    horizon = trace.times[-1]
    for battery in range(trace.n_batteries):
        cells = []
        for column in range(width):
            time = horizon * column / max(1, width - 1)
            index = min(
                range(len(trace.times)), key=lambda i: abs(trace.times[i] - time)
            )
            cells.append("#" if trace.chosen_battery[index] == battery else ".")
        lines.append(f"  battery {battery}: {''.join(cells)}")
    return "\n".join(lines)


def render_charge_series_csv(trace: ChargeTrace) -> str:
    """Dump a trace as CSV (time, per-battery total and available charge)."""
    header_cells = ["time_min"]
    for battery in range(trace.n_batteries):
        header_cells.append(f"total_{battery}")
        header_cells.append(f"available_{battery}")
    header_cells.append("chosen_battery")
    lines = [",".join(header_cells)]
    for index, time in enumerate(trace.times):
        cells = [f"{time:.4f}"]
        for battery in range(trace.n_batteries):
            cells.append(f"{trace.total_charge[battery][index]:.5f}")
            cells.append(f"{trace.available_charge[battery][index]:.5f}")
        chosen = trace.chosen_battery[index]
        cells.append("" if chosen is None else str(chosen))
        lines.append(",".join(cells))
    return "\n".join(lines)
