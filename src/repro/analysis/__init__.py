"""Experiment layer: regenerates every table and figure of the paper."""

from repro.analysis.tables import (
    ValidationRow,
    SchedulingRow,
    table3,
    table4,
    table5,
    validation_table,
    scheduling_table,
)
from repro.analysis.figures import (
    ChargeTrace,
    Figure6Data,
    figure6,
    charge_trace_for_schedule,
)
from repro.analysis.report import (
    render_validation_table,
    render_scheduling_table,
    render_figure6_summary,
)
from repro.analysis.montecarlo import (
    LifetimeDistribution,
    MonteCarloResult,
    lifetime_distribution,
    render_distributions,
    run_montecarlo,
)

__all__ = [
    "ValidationRow",
    "SchedulingRow",
    "table3",
    "table4",
    "table5",
    "validation_table",
    "scheduling_table",
    "ChargeTrace",
    "Figure6Data",
    "figure6",
    "charge_trace_for_schedule",
    "render_validation_table",
    "render_scheduling_table",
    "render_figure6_summary",
    "LifetimeDistribution",
    "MonteCarloResult",
    "lifetime_distribution",
    "render_distributions",
    "run_montecarlo",
]
