"""Monte-Carlo analysis of scheduling policies under random loads.

The paper's conclusion calls for the analysis of "realistic random loads",
which Uppaal Cora cannot express (it has no probabilities).  This module
closes that gap on the simulation side: it samples random loads, runs the
scheduling policies (and optionally the optimal scheduler) on each sample
and summarizes the lifetime distribution -- the simulation counterpart of
the lifetime-distribution work the authors reference (Cloth et al.,
DSN 2007).

Two execution engines are available.  The ``"scalar"`` engine is the
original pure-Python loop over :func:`repro.core.simulator.simulate_policy`
and remains the golden reference.  The ``"batch"`` engine hands the whole
sample set to :class:`repro.engine.batch.BatchSimulator`, which advances
every scenario through vectorized NumPy kernels and delivers identical
lifetimes (within the 1e-9 root-finder tolerance for the analytical model;
*exactly*, tick for tick, for ``model="discrete"``) at well over an order
of magnitude higher throughput.  ``"auto"`` picks the batch engine whenever
the battery model and all requested policies are vectorizable.
"""

from __future__ import annotations

import dataclasses
import functools
import statistics
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.optimal import find_optimal_schedule
from repro.core.simulator import simulate_policy
from repro.engine.batch import VECTOR_MODELS, BatchSimulator, resolve_model
from repro.engine.optimal_batch import optimal_schedules_batch
from repro.engine.parallel import (
    optimal_lifetimes_chunk,
    run_chunked,
    simulate_lifetimes_chunk,
)
from repro.engine.policies import VectorPolicy, has_vector_policy
from repro.engine.scenarios import ScenarioSet
from repro.kibam.parameters import BatteryParameters
from repro.sweep.spec import OPTIMAL_POLICY
from repro.workloads.generator import ILS_LIKE_RANDOM_CONFIG, RandomLoadConfig
from repro.workloads.load import Load

#: Engines understood by :func:`run_montecarlo`.
ENGINES = ("auto", "scalar", "batch")


@dataclasses.dataclass(frozen=True)
class LifetimeDistribution:
    """Summary statistics of a set of lifetimes (minutes)."""

    policy: str
    samples: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    percentile_10: float
    median: float
    percentile_90: float

    @staticmethod
    def from_samples(policy: str, lifetimes: Sequence[float]) -> "LifetimeDistribution":
        """Summarize a non-empty sequence (or array) of lifetime samples.

        A single sample is a legitimate degenerate sweep and yields a zero
        standard deviation; an empty sequence is rejected with a clear
        error instead of crashing inside the statistics helpers.
        """
        values = [float(value) for value in lifetimes]
        if not values:
            raise ValueError(
                "cannot summarize an empty set of lifetime samples; "
                "at least one lifetime is required"
            )
        ordered = sorted(values)
        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
            return ordered[index]
        return LifetimeDistribution(
            policy=policy,
            samples=len(ordered),
            mean=statistics.fmean(ordered),
            stdev=statistics.pstdev(ordered) if len(ordered) > 1 else 0.0,
            minimum=ordered[0],
            maximum=ordered[-1],
            percentile_10=percentile(0.10),
            median=percentile(0.50),
            percentile_90=percentile(0.90),
        )


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Lifetime distributions per policy over a common set of random loads."""

    distributions: Dict[str, LifetimeDistribution]
    per_sample: Dict[str, List[float]]
    n_samples: int
    engine: str = "scalar"

    def mean_gain_percent(self, policy: str, reference: str) -> float:
        """Mean per-sample lifetime gain of ``policy`` over ``reference`` in percent."""
        gains = [
            (a - b) / b * 100.0
            for a, b in zip(self.per_sample[policy], self.per_sample[reference])
        ]
        return statistics.fmean(gains)


def _require_lifetimes(
    lifetimes: Sequence[Optional[float]], policy: str
) -> List[float]:
    """Reject survived-the-load samples, mirroring ``lifetime_or_raise``."""
    out: List[float] = []
    for value in lifetimes:
        if value is None or (isinstance(value, float) and np.isnan(value)):
            raise RuntimeError(
                f"a sample survived the whole load under policy {policy!r}; "
                "extend the load to measure a lifetime"
            )
        out.append(float(value))
    return out


def run_montecarlo(
    params: Sequence[BatteryParameters],
    n_samples: int = 50,
    policies: Sequence[str] = ("sequential", "round-robin", "best-of-two"),
    include_optimal: bool = False,
    config: Optional[RandomLoadConfig] = None,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    engine: str = "auto",
    backend: Optional[str] = None,
    optimal_max_nodes: Optional[int] = 20_000,
    n_workers: int = 1,
    loads: Optional[Sequence[Load]] = None,
    cache_dir: Optional[str] = None,
    model: Optional[str] = None,
    time_step: float = 0.01,
    charge_unit: float = 0.01,
    dominance_tolerance: float = 0.005,
) -> MonteCarloResult:
    """Sample random loads and summarize the policy lifetimes on them.

    Args:
        params: battery parameter sets, one per battery.
        n_samples: number of random loads to draw.
        policies: policies to evaluate on every sample.  The pseudo-policy
            ``"optimal"`` is a first-class column: it runs one branch-and-
            bound search per sample (batched through the engine kernels on
            the vectorizable battery models, scalar otherwise) with the
            ``optimal_max_nodes`` cap and the sweep state-merge tolerance.
        include_optimal: legacy spelling of appending ``"optimal"`` to
            ``policies``; the resulting column is labelled ``"optimal"``.
        config: random-load configuration; the default produces ILs-like
            loads with mixed currents.
        seed: base seed; sample ``i`` uses ``seed + i`` (ignored when
            ``rng`` or ``loads`` is given).
        rng: an explicit :class:`numpy.random.Generator` to draw every
            sample from one stream.  The loads are drawn exactly once, so
            scalar and batch engines see identical samples either way.
        engine: ``"scalar"`` (the golden-reference Python loop),
            ``"batch"`` (the vectorized engine; non-vectorizable
            model/policy combinations still run, scenario by scenario,
            through the scalar fallback) or ``"auto"``.  The result's
            ``engine`` field records the path that actually executed.
        backend: battery model for the policy simulations (legacy name;
            ``model`` is the preferred spelling).  Both ``"analytical"``
            and ``"discrete"`` sweeps vectorize; ``"linear"`` runs scalar.
        model: alias of ``backend``; passing both with different values is
            an error.
        optimal_max_nodes: node cap per optimal search.
        n_workers: worker processes for the scalar and optimal sweeps
            (``1`` runs inline; the batch engine itself is single-process
            array code and ignores this).
        loads: explicit sample loads, overriding the random sampling; the
            length overrides ``n_samples``.
        cache_dir: directory of a :class:`repro.sweep.store.ResultStore`.
            When given and the batch engine executes the sweep, the
            deterministic-policy lifetimes are routed through the sweep
            result store: a repeated call with the same seed/config/params
            (or the same explicit loads) is a pure cache read instead of a
            re-simulation, and an interrupted sweep resumes chunk by chunk.
            The store is keyed by spec content, so scalar re-verification
            runs (``engine="scalar"``), explicit ``rng`` streams and
            non-string policy objects bypass it.  The optimal column is
            stored too (its node cap and merge tolerance are part of the
            spec hash), except on multiprocessing runs (``n_workers > 1``),
            which keep the scalar worker path and bypass the store.
        time_step / charge_unit: dKiBaM discretization (minutes / Amin;
            ``model="discrete"`` only).  Threaded through *every* execution
            path -- batch kernels, inline scalar loops and the
            multiprocessing workers alike (the workers silently ran the
            default 0.01 grid once; that bug is regression-tested now).
            Non-default grids bypass the result store on the discrete
            model, whose sweep specs pin the reference discretization;
            analytical runs ignore the knobs and keep their cache.
        dominance_tolerance: state-merge tolerance (Amin) of the optimal
            column's searches; the long-standing sweep default is half a
            charge unit.  Part of the spec hash on store-routed runs.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known engines: {ENGINES}")
    backend = resolve_model(model, backend)
    load_config = config if config is not None else ILS_LIKE_RANDOM_CONFIG
    # Sampling is deferred: a fully cached store run never touches the
    # random loads, so drawing them here would put the (Python-loop) load
    # generation back on the cache-hit path.
    _scenarios: List[Optional[ScenarioSet]] = [None]

    def get_scenarios() -> ScenarioSet:
        if _scenarios[0] is None:
            if loads is not None:
                _scenarios[0] = ScenarioSet.from_loads(list(loads))
            else:
                _scenarios[0] = ScenarioSet.random(
                    n_samples, load_config, seed=seed, rng=rng
                )
        return _scenarios[0]

    if loads is not None:
        n_samples = len(loads)
    elif n_samples < 1:
        raise ValueError("n_samples must be at least 1")

    # Policies may be registry names or policy objects (vector or scalar);
    # the result columns are always keyed by the policy's name.  The
    # pseudo-policy "optimal" is split off: it is one branch-and-bound
    # search per sample, not a policy simulation.
    names = [policy if isinstance(policy, str) else policy.name for policy in policies]
    if len(set(names)) != len(names):
        raise ValueError(f"policy names must be unique, got {names}")
    for policy in policies:
        if not isinstance(policy, str) and policy.name == OPTIMAL_POLICY:
            raise ValueError(
                "the 'optimal' column is computed by the branch-and-bound "
                "search, so a policy *object* named 'optimal' would be "
                "silently shadowed; rename the policy or pass the string "
                "'optimal' to request the search column"
            )
    if include_optimal and OPTIMAL_POLICY not in names:
        names = names + [OPTIMAL_POLICY]
    optimal_requested = OPTIMAL_POLICY in names
    sim_pairs = [
        (name, policy)
        for name, policy in zip(
            [p if isinstance(p, str) else p.name for p in policies], policies
        )
        if name != OPTIMAL_POLICY
    ]
    sim_names = [name for name, _ in sim_pairs]
    sim_policies = [policy for _, policy in sim_pairs]

    vectorizable = backend in VECTOR_MODELS and all(
        isinstance(policy, VectorPolicy)
        or (isinstance(policy, str) and has_vector_policy(policy))
        for policy in sim_policies
    )
    if engine == "auto":
        engine = "batch" if vectorizable else "scalar"
    # The result's engine label records the execution path that actually
    # ran: requesting "batch" with a non-vectorizable backend/policy set
    # still works, but runs scenario-by-scenario through the scalar
    # fallback and is labelled accordingly.
    executed_engine = "batch" if (engine == "batch" and vectorizable) else "scalar"

    use_store = (
        cache_dir is not None
        and engine == "batch"
        and vectorizable
        and rng is None
        and all(isinstance(policy, str) for policy in policies)
        and not (optimal_requested and n_workers > 1)
        # Sweep specs pin the reference discretization; a non-default grid
        # must not alias the reference entries, so it runs store-less.
        # Only the discrete model reads the grid -- analytical sweeps keep
        # their cache whatever the (ignored) knobs say.
        and (
            backend != "discrete"
            or (time_step == 0.01 and charge_unit == 0.01)
        )
    )

    per_sample: Dict[str, List[float]] = {}
    if use_store:
        # Route the whole sweep -- deterministic policies and the optimal
        # column alike -- through the content-addressed sweep store: the
        # spec below reproduces this call's samples exactly (seeded sampling
        # draws load i with seed + i on both paths), so a repeated
        # distribution with the same seed/spec is a cache hit.
        from repro.sweep import (
            BatteryConfig,
            LoadAxis,
            ResultStore,
            SweepRunner,
            SweepSpec,
        )

        if loads is not None:
            axis = LoadAxis.explicit(list(loads), label="montecarlo")
        else:
            axis = LoadAxis.random(n_samples, seed=seed, config=load_config)
        spec = SweepSpec(
            name="montecarlo",
            batteries=(BatteryConfig(label="batteries", params=tuple(params)),),
            loads=(axis,),
            policies=tuple(names),
            backend=backend,
        )
        if optimal_requested:
            spec = spec.with_optimal(
                max_nodes=optimal_max_nodes,
                dominance_tolerance=dominance_tolerance,
            )
        sweep_result = SweepRunner(ResultStore(cache_dir)).run(spec)
        for name in names:
            per_sample[name] = _require_lifetimes(
                sweep_result.per_sample[name], name
            )
    else:
        if engine == "batch" and sim_names:
            simulator = BatchSimulator(
                params,
                backend=backend,
                time_step=time_step,
                charge_unit=charge_unit,
            )
            results = simulator.run_many(get_scenarios(), list(sim_policies))
            for name in sim_names:
                per_sample[name] = _require_lifetimes(
                    results[name].lifetimes.tolist(), name
                )
        else:
            for name, policy in sim_pairs:
                if isinstance(policy, VectorPolicy):
                    raise ValueError(
                        f"the scalar engine cannot run vector policy {name!r}; "
                        "pass its registry name or a SchedulingPolicy instead"
                    )
                if n_workers > 1 and isinstance(policy, str):
                    # The worker partial binds *every* solver setting; the
                    # discretization knobs were once dropped here, silently
                    # running multiprocessing sweeps on the default grid.
                    worker = functools.partial(
                        simulate_lifetimes_chunk,
                        params=tuple(params),
                        policy_name=policy,
                        backend=backend,
                        time_step=time_step,
                        charge_unit=charge_unit,
                    )
                    lifetimes = run_chunked(
                        worker, get_scenarios().loads, n_workers=n_workers
                    )
                else:
                    # Policy objects are not safely picklable (state, custom
                    # classes), so they always run inline.
                    lifetimes = [
                        simulate_policy(
                            params,
                            load,
                            policy,
                            backend=backend,
                            time_step=time_step,
                            charge_unit=charge_unit,
                        ).lifetime
                        for load in get_scenarios().loads
                    ]
                per_sample[name] = _require_lifetimes(lifetimes, name)

        if optimal_requested:
            if n_workers > 1:
                worker = functools.partial(
                    optimal_lifetimes_chunk,
                    params=tuple(params),
                    backend=backend,
                    max_nodes=optimal_max_nodes,
                    dominance_tolerance=dominance_tolerance,
                    time_step=time_step,
                    charge_unit=charge_unit,
                )
                optima = run_chunked(
                    worker, get_scenarios().loads, n_workers=n_workers
                )
            elif executed_engine == "batch":
                # One batched branch-and-bound search per sample, through
                # the same engine kernels as the policy sweep.
                optima = [
                    result.lifetime
                    for result in optimal_schedules_batch(
                        get_scenarios().loads,
                        params,
                        model=backend,
                        max_nodes=optimal_max_nodes,
                        dominance_tolerance=dominance_tolerance,
                        time_step=time_step,
                        charge_unit=charge_unit,
                    )
                ]
            else:
                optima = [
                    find_optimal_schedule(
                        params,
                        load,
                        backend=backend,
                        time_step=time_step,
                        charge_unit=charge_unit,
                        dominance_tolerance=dominance_tolerance,
                        max_nodes=optimal_max_nodes,
                    ).lifetime
                    for load in get_scenarios().loads
                ]
            per_sample[OPTIMAL_POLICY] = _require_lifetimes(optima, OPTIMAL_POLICY)

    # Column order follows the request order (optimal included wherever the
    # caller listed it; legacy include_optimal appends it last).
    per_sample = {name: per_sample[name] for name in names}
    distributions = {
        policy: LifetimeDistribution.from_samples(policy, lifetimes)
        for policy, lifetimes in per_sample.items()
    }
    return MonteCarloResult(
        distributions=distributions,
        per_sample=per_sample,
        n_samples=n_samples,
        engine=executed_engine,
    )


def lifetime_distribution(
    params: Sequence[BatteryParameters],
    n_samples: int = 50,
    policies: Sequence[str] = ("sequential", "round-robin", "best-of-two"),
    include_optimal: bool = False,
    config: Optional[RandomLoadConfig] = None,
    seed: int = 0,
    backend: str = "analytical",
    optimal_max_nodes: Optional[int] = 20_000,
) -> MonteCarloResult:
    """Backward-compatible wrapper around :func:`run_montecarlo`.

    Kept for the original call sites (tests, benchmarks, examples); new code
    should call :func:`run_montecarlo`, which also exposes the engine
    selection, an explicit ``rng`` and multiprocessing workers.
    """
    return run_montecarlo(
        params,
        n_samples=n_samples,
        policies=policies,
        include_optimal=include_optimal,
        config=config,
        seed=seed,
        engine="auto",
        backend=backend,
        optimal_max_nodes=optimal_max_nodes,
    )


def render_distributions(result: MonteCarloResult) -> str:
    """Plain-text table of the lifetime distributions."""
    header = (
        f"{'policy':12s} {'mean':>7s} {'stdev':>7s} {'min':>7s} {'p10':>7s} "
        f"{'median':>7s} {'p90':>7s} {'max':>7s}"
    )
    lines = [header, "-" * len(header)]
    for policy, dist in result.distributions.items():
        lines.append(
            f"{policy:12s} {dist.mean:7.2f} {dist.stdev:7.2f} {dist.minimum:7.2f} "
            f"{dist.percentile_10:7.2f} {dist.median:7.2f} {dist.percentile_90:7.2f} "
            f"{dist.maximum:7.2f}"
        )
    return "\n".join(lines)
