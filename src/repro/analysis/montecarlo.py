"""Monte-Carlo analysis of scheduling policies under random loads.

The paper's conclusion calls for the analysis of "realistic random loads",
which Uppaal Cora cannot express (it has no probabilities).  This module
closes that gap on the simulation side: it samples random loads, runs the
scheduling policies (and optionally the optimal scheduler) on each sample
and summarizes the lifetime distribution -- the simulation counterpart of
the lifetime-distribution work the authors reference (Cloth et al.,
DSN 2007).
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional, Sequence

from repro.core.optimal import find_optimal_schedule
from repro.core.simulator import simulate_policy
from repro.kibam.parameters import BatteryParameters
from repro.workloads.generator import RandomLoadConfig, generate_random_load
from repro.workloads.load import Load


@dataclasses.dataclass(frozen=True)
class LifetimeDistribution:
    """Summary statistics of a set of lifetimes (minutes)."""

    policy: str
    samples: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    percentile_10: float
    median: float
    percentile_90: float

    @staticmethod
    def from_samples(policy: str, lifetimes: Sequence[float]) -> "LifetimeDistribution":
        if not lifetimes:
            raise ValueError("at least one lifetime sample is required")
        ordered = sorted(lifetimes)
        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
            return ordered[index]
        return LifetimeDistribution(
            policy=policy,
            samples=len(ordered),
            mean=statistics.fmean(ordered),
            stdev=statistics.pstdev(ordered) if len(ordered) > 1 else 0.0,
            minimum=ordered[0],
            maximum=ordered[-1],
            percentile_10=percentile(0.10),
            median=percentile(0.50),
            percentile_90=percentile(0.90),
        )


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Lifetime distributions per policy over a common set of random loads."""

    distributions: Dict[str, LifetimeDistribution]
    per_sample: Dict[str, List[float]]
    n_samples: int

    def mean_gain_percent(self, policy: str, reference: str) -> float:
        """Mean per-sample lifetime gain of ``policy`` over ``reference`` in percent."""
        gains = [
            (a - b) / b * 100.0
            for a, b in zip(self.per_sample[policy], self.per_sample[reference])
        ]
        return statistics.fmean(gains)


def lifetime_distribution(
    params: Sequence[BatteryParameters],
    n_samples: int = 50,
    policies: Sequence[str] = ("sequential", "round-robin", "best-of-two"),
    include_optimal: bool = False,
    config: Optional[RandomLoadConfig] = None,
    seed: int = 0,
    backend: str = "analytical",
    optimal_max_nodes: Optional[int] = 20_000,
) -> MonteCarloResult:
    """Sample random loads and summarize the policy lifetimes on them.

    Args:
        params: battery parameter sets, one per battery.
        n_samples: number of random loads to draw.
        policies: deterministic policies to evaluate on every sample.
        include_optimal: also run the optimal scheduler on every sample
            (with a node cap and state-merge tolerance so the sweep stays
            bounded; the resulting column is labelled ``"optimal"``).
        config: random-load configuration; the default produces ILs-like
            loads with mixed currents.
        seed: base seed; sample ``i`` uses ``seed + i``.
        backend: battery backend for the policy simulations.
        optimal_max_nodes: node cap per optimal search.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    load_config = config if config is not None else RandomLoadConfig(
        levels=(0.25, 0.5),
        job_duration_range=(0.5, 1.5),
        idle_duration_range=(0.5, 2.0),
        total_duration=120.0,
        duration_step=0.25,
    )
    per_sample: Dict[str, List[float]] = {policy: [] for policy in policies}
    if include_optimal:
        per_sample["optimal"] = []

    for index in range(n_samples):
        load = generate_random_load(seed + index, load_config)
        for policy in policies:
            result = simulate_policy(params, load, policy, backend=backend)
            per_sample[policy].append(result.lifetime_or_raise())
        if include_optimal:
            optimal = find_optimal_schedule(
                params,
                load,
                backend=backend,
                dominance_tolerance=0.005,
                max_nodes=optimal_max_nodes,
            )
            per_sample["optimal"].append(optimal.lifetime)

    distributions = {
        policy: LifetimeDistribution.from_samples(policy, lifetimes)
        for policy, lifetimes in per_sample.items()
    }
    return MonteCarloResult(
        distributions=distributions, per_sample=per_sample, n_samples=n_samples
    )


def render_distributions(result: MonteCarloResult) -> str:
    """Plain-text table of the lifetime distributions."""
    header = (
        f"{'policy':12s} {'mean':>7s} {'stdev':>7s} {'min':>7s} {'p10':>7s} "
        f"{'median':>7s} {'p90':>7s} {'max':>7s}"
    )
    lines = [header, "-" * len(header)]
    for policy, dist in result.distributions.items():
        lines.append(
            f"{policy:12s} {dist.mean:7.2f} {dist.stdev:7.2f} {dist.minimum:7.2f} "
            f"{dist.percentile_10:7.2f} {dist.median:7.2f} {dist.percentile_90:7.2f} "
            f"{dist.maximum:7.2f}"
        )
    return "\n".join(lines)
