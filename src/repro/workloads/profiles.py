"""The test loads of the paper (Section 5).

The paper builds ten test loads from two job types -- a low-current job of
250 mA and a high-current job of 500 mA, both lasting one minute -- in three
families:

* **CL** (continuous loads): back-to-back jobs with no idle periods
  (``CL 250``, ``CL 500`` and the alternating ``CL alt``).
* **ILs** (intermittent, short idles): one minute of idle time between jobs
  (``ILs 250``, ``ILs 500``, ``ILs alt`` and two random loads ``ILs r1`` /
  ``ILs r2``).
* **IL`** (intermittent, long idles): two minutes of idle time between jobs
  (``IL` 250``, ``IL` 500``).

The paper does not state the job duration explicitly; calibration against
the single-battery lifetimes of Table 3 (see EXPERIMENTS.md) pins it to one
minute and shows that the alternating loads start with the high-current job.
The random job sequences of ``ILs r1``/``ILs r2`` are not published, so this
module generates seeded random sequences of the same structure.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.workloads.load import Epoch, Load, idle_epoch, job_epoch

#: Low-current job level: 250 mA, in Ampere.
LOW_CURRENT = 0.250
#: High-current job level: 500 mA, in Ampere.
HIGH_CURRENT = 0.500
#: Job duration in minutes (calibrated against Table 3).
JOB_DURATION = 1.0
#: Idle period of the ILs loads, in minutes.
SHORT_IDLE = 1.0
#: Idle period of the IL` loads, in minutes.
LONG_IDLE = 2.0

#: Names of the ten test loads, in the order of the paper's tables.
PAPER_LOAD_NAMES = (
    "CL 250",
    "CL 500",
    "CL alt",
    "ILs 250",
    "ILs 500",
    "ILs alt",
    "ILs r1",
    "ILs r2",
    "IL` 250",
    "IL` 500",
)

#: Default length of the generated loads in minutes; long enough that every
#: experiment in the paper exhausts the batteries before the load runs out.
DEFAULT_TOTAL_DURATION = 240.0


def _fill(name: str, cycle: Sequence[Epoch], total_duration: float) -> Load:
    """Repeat ``cycle`` until the load covers at least ``total_duration`` minutes."""
    if total_duration <= 0.0:
        raise ValueError("total_duration must be positive")
    cycle_duration = sum(epoch.duration for epoch in cycle)
    if cycle_duration <= 0.0:
        raise ValueError("cycle must have positive duration")
    epochs: List[Epoch] = []
    elapsed = 0.0
    while elapsed < total_duration:
        epochs.extend(cycle)
        elapsed += cycle_duration
    return Load(name=name, epochs=tuple(epochs))


def continuous_load(
    current: float,
    total_duration: float = DEFAULT_TOTAL_DURATION,
    job_duration: float = JOB_DURATION,
    name: Optional[str] = None,
) -> Load:
    """A CL load: back-to-back jobs at a single current level."""
    label = f"CL {round(current * 1000)}"
    cycle = [job_epoch(current, job_duration)]
    return _fill(name or label, cycle, total_duration)


def continuous_alternating_load(
    total_duration: float = DEFAULT_TOTAL_DURATION,
    high: float = HIGH_CURRENT,
    low: float = LOW_CURRENT,
    job_duration: float = JOB_DURATION,
    name: str = "CL alt",
) -> Load:
    """The CL alt load: jobs alternating high/low with no idle periods."""
    cycle = [job_epoch(high, job_duration), job_epoch(low, job_duration)]
    return _fill(name, cycle, total_duration)


def intermittent_load(
    current: float,
    idle_duration: float,
    total_duration: float = DEFAULT_TOTAL_DURATION,
    job_duration: float = JOB_DURATION,
    name: Optional[str] = None,
) -> Load:
    """An ILs / IL` load: jobs at one current level separated by idle periods."""
    family = "ILs" if idle_duration <= SHORT_IDLE else "IL`"
    label = f"{family} {round(current * 1000)}"
    cycle = [job_epoch(current, job_duration), idle_epoch(idle_duration)]
    return _fill(name or label, cycle, total_duration)


def intermittent_alternating_load(
    idle_duration: float = SHORT_IDLE,
    total_duration: float = DEFAULT_TOTAL_DURATION,
    high: float = HIGH_CURRENT,
    low: float = LOW_CURRENT,
    job_duration: float = JOB_DURATION,
    name: str = "ILs alt",
) -> Load:
    """The ILs alt load: alternating high/low jobs separated by idle periods."""
    cycle = [
        job_epoch(high, job_duration),
        idle_epoch(idle_duration),
        job_epoch(low, job_duration),
        idle_epoch(idle_duration),
    ]
    return _fill(name, cycle, total_duration)


def random_intermittent_load(
    seed: int,
    idle_duration: float = SHORT_IDLE,
    total_duration: float = DEFAULT_TOTAL_DURATION,
    levels: Sequence[float] = (LOW_CURRENT, HIGH_CURRENT),
    job_duration: float = JOB_DURATION,
    name: Optional[str] = None,
) -> Load:
    """A random ILs load: each job's current is drawn uniformly from ``levels``.

    The paper's loads ``ILs r1`` and ``ILs r2`` are of this form but with an
    unpublished random sequence; the seed makes our substitutes reproducible.
    """
    rng = random.Random(seed)
    epochs: List[Epoch] = []
    elapsed = 0.0
    while elapsed < total_duration:
        current = rng.choice(list(levels))
        epochs.append(job_epoch(current, job_duration))
        epochs.append(idle_epoch(idle_duration))
        elapsed += job_duration + idle_duration
    return Load(name=name or f"ILs r(seed={seed})", epochs=tuple(epochs))


def paper_loads(
    total_duration: float = DEFAULT_TOTAL_DURATION,
    r1_seed: int = 1,
    r2_seed: int = 2,
) -> Dict[str, Load]:
    """All ten test loads of the paper, keyed by their table names."""
    return {
        "CL 250": continuous_load(LOW_CURRENT, total_duration, name="CL 250"),
        "CL 500": continuous_load(HIGH_CURRENT, total_duration, name="CL 500"),
        "CL alt": continuous_alternating_load(total_duration, name="CL alt"),
        "ILs 250": intermittent_load(LOW_CURRENT, SHORT_IDLE, total_duration, name="ILs 250"),
        "ILs 500": intermittent_load(HIGH_CURRENT, SHORT_IDLE, total_duration, name="ILs 500"),
        "ILs alt": intermittent_alternating_load(SHORT_IDLE, total_duration, name="ILs alt"),
        "ILs r1": random_intermittent_load(r1_seed, SHORT_IDLE, total_duration, name="ILs r1"),
        "ILs r2": random_intermittent_load(r2_seed, SHORT_IDLE, total_duration, name="ILs r2"),
        "IL` 250": intermittent_load(LOW_CURRENT, LONG_IDLE, total_duration, name="IL` 250"),
        "IL` 500": intermittent_load(HIGH_CURRENT, LONG_IDLE, total_duration, name="IL` 500"),
    }
