"""Workload (load) models: epochs, jobs, idle periods and the paper's test loads."""

from repro.workloads.load import Epoch, Load, job_epoch, idle_epoch
from repro.workloads.profiles import (
    LOW_CURRENT,
    HIGH_CURRENT,
    JOB_DURATION,
    SHORT_IDLE,
    LONG_IDLE,
    continuous_load,
    continuous_alternating_load,
    intermittent_load,
    intermittent_alternating_load,
    random_intermittent_load,
    paper_loads,
    PAPER_LOAD_NAMES,
)
from repro.workloads.generator import (
    ILS_LIKE_RANDOM_CONFIG,
    LOAD_GENERATOR_REGISTRY,
    RandomLoadConfig,
    generate_random_load,
    bursty_load,
    duty_cycle_load,
    make_load,
    sensor_node_load,
)

__all__ = [
    "Epoch",
    "Load",
    "job_epoch",
    "idle_epoch",
    "LOW_CURRENT",
    "HIGH_CURRENT",
    "JOB_DURATION",
    "SHORT_IDLE",
    "LONG_IDLE",
    "continuous_load",
    "continuous_alternating_load",
    "intermittent_load",
    "intermittent_alternating_load",
    "random_intermittent_load",
    "paper_loads",
    "PAPER_LOAD_NAMES",
    "ILS_LIKE_RANDOM_CONFIG",
    "LOAD_GENERATOR_REGISTRY",
    "RandomLoadConfig",
    "generate_random_load",
    "bursty_load",
    "duty_cycle_load",
    "make_load",
    "sensor_node_load",
]
