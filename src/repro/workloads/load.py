"""Load model: a sequence of epochs, each a job or an idle period.

The paper describes a load by three arrays (``load_time``, ``cur_times`` and
``cur``, Table 1) that partition the timeline into *epochs*.  An epoch with a
positive current is a *job* and requires a battery to be scheduled for it; an
epoch with zero current is an *idle period* in which all batteries recover.
This module provides the object form of that description; the array form
used by the TA-KiBaM is derived from it in :mod:`repro.takibam.arrays`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

Segment = Tuple[float, float]


@dataclasses.dataclass(frozen=True)
class Epoch:
    """One epoch of a load: a constant current applied for a duration.

    Attributes:
        current: discharge current in Ampere; zero for idle periods.
        duration: epoch length in minutes.
        label: optional human readable tag (e.g. ``"job-500mA"``).
    """

    current: float
    duration: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.current < 0.0:
            raise ValueError(f"current must be non-negative, got {self.current}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def is_job(self) -> bool:
        """Whether this epoch draws current and therefore needs a battery."""
        return self.current > 0.0

    @property
    def is_idle(self) -> bool:
        return not self.is_job

    @property
    def charge(self) -> float:
        """Charge drawn during the epoch, in Amin."""
        return self.current * self.duration


def job_epoch(current: float, duration: float, label: str = "") -> Epoch:
    """Convenience constructor for a job epoch; current must be positive."""
    if current <= 0.0:
        raise ValueError("a job epoch must have a positive current")
    return Epoch(current=current, duration=duration, label=label or f"job-{current:g}A")


def idle_epoch(duration: float, label: str = "idle") -> Epoch:
    """Convenience constructor for an idle epoch."""
    return Epoch(current=0.0, duration=duration, label=label)


@dataclasses.dataclass(frozen=True)
class Load:
    """A named, finite sequence of epochs.

    Loads are finite; experiments build them long enough that the batteries
    are guaranteed to be exhausted before the load runs out (the helpers in
    :mod:`repro.workloads.profiles` take a ``total_duration`` argument for
    this).
    """

    name: str
    epochs: Tuple[Epoch, ...]

    def __post_init__(self) -> None:
        if not self.epochs:
            raise ValueError("a load must contain at least one epoch")

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self) -> Iterator[Epoch]:
        return iter(self.epochs)

    @property
    def total_duration(self) -> float:
        """Total length of the load in minutes."""
        return sum(epoch.duration for epoch in self.epochs)

    @property
    def total_charge(self) -> float:
        """Total charge demanded by the load, in Amin."""
        return sum(epoch.charge for epoch in self.epochs)

    @property
    def job_count(self) -> int:
        return sum(1 for epoch in self.epochs if epoch.is_job)

    def jobs(self) -> List[Tuple[int, Epoch]]:
        """The job epochs with their indices into the epoch sequence."""
        return [(index, epoch) for index, epoch in enumerate(self.epochs) if epoch.is_job]

    def segments(self) -> List[Segment]:
        """The load as ``(current, duration)`` pairs for the battery models."""
        return [(epoch.current, epoch.duration) for epoch in self.epochs]

    def epoch_start_times(self) -> List[float]:
        """Start time of every epoch, in minutes from system start."""
        starts: List[float] = []
        elapsed = 0.0
        for epoch in self.epochs:
            starts.append(elapsed)
            elapsed += epoch.duration
        return starts

    def epoch_end_times(self) -> List[float]:
        """End time of every epoch (the paper's ``load_time`` array)."""
        ends: List[float] = []
        elapsed = 0.0
        for epoch in self.epochs:
            elapsed += epoch.duration
            ends.append(elapsed)
        return ends

    def current_at(self, time: float) -> float:
        """The current demanded at absolute time ``time`` (0 after the load ends)."""
        if time < 0.0:
            raise ValueError("time must be non-negative")
        elapsed = 0.0
        for epoch in self.epochs:
            if elapsed <= time < elapsed + epoch.duration:
                return epoch.current
            elapsed += epoch.duration
        return 0.0

    # ------------------------------------------------------------------ #
    # derived loads
    # ------------------------------------------------------------------ #
    def truncated(self, max_duration: float, name: Optional[str] = None) -> "Load":
        """The prefix of the load lasting at most ``max_duration`` minutes."""
        if max_duration <= 0.0:
            raise ValueError("max_duration must be positive")
        epochs: List[Epoch] = []
        remaining = max_duration
        for epoch in self.epochs:
            if remaining <= 0.0:
                break
            duration = min(epoch.duration, remaining)
            epochs.append(Epoch(current=epoch.current, duration=duration, label=epoch.label))
            remaining -= duration
        return Load(name=name or f"{self.name}-trunc", epochs=tuple(epochs))

    def repeated(self, times: int, name: Optional[str] = None) -> "Load":
        """The load concatenated with itself ``times`` times."""
        if times < 1:
            raise ValueError("times must be at least 1")
        return Load(name=name or f"{self.name}x{times}", epochs=self.epochs * times)

    def scaled_current(self, factor: float, name: Optional[str] = None) -> "Load":
        """A copy with every current multiplied by ``factor``."""
        if factor <= 0.0:
            raise ValueError("factor must be positive")
        epochs = tuple(
            Epoch(current=epoch.current * factor, duration=epoch.duration, label=epoch.label)
            for epoch in self.epochs
        )
        return Load(name=name or f"{self.name}-x{factor:g}", epochs=epochs)

    @staticmethod
    def from_segments(name: str, segments: Sequence[Segment]) -> "Load":
        """Build a load from raw ``(current, duration)`` pairs."""
        epochs = tuple(Epoch(current=current, duration=duration) for current, duration in segments)
        return Load(name=name, epochs=epochs)
