"""Random and application-shaped workload generators.

Beyond the paper's fixed test loads, the conclusion calls for analysing
"realistic random loads" and mentions sensor-network nodes with simple
regular workloads as a target application.  The generators in this module
cover those cases and are used by the examples and the extension
benchmarks.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.workloads.load import Epoch, Load, idle_epoch, job_epoch


@dataclasses.dataclass(frozen=True)
class RandomLoadConfig:
    """Configuration for :func:`generate_random_load`.

    Attributes:
        levels: the current levels (Ampere) a job may use.
        job_duration_range: (min, max) job length in minutes.
        idle_duration_range: (min, max) idle length in minutes; the maximum
            may be zero to generate continuous loads.
        total_duration: approximate total load length in minutes.
        duration_step: all durations are rounded to a multiple of this value
            so that discretized models can represent the load exactly.
    """

    levels: Sequence[float] = (0.250, 0.500)
    job_duration_range: tuple = (0.5, 2.0)
    idle_duration_range: tuple = (0.0, 2.0)
    total_duration: float = 120.0
    duration_step: float = 0.25

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("levels must not be empty")
        if any(level <= 0.0 for level in self.levels):
            raise ValueError("all job current levels must be positive")
        if self.total_duration <= 0.0:
            raise ValueError("total_duration must be positive")
        if self.duration_step <= 0.0:
            raise ValueError("duration_step must be positive")


#: The canonical ILs-like random-load configuration: mixed 250/500 mA jobs
#: with idle gaps, the sweep the Monte-Carlo layer, the random-load
#: benchmark and the batch-sweep example all share.
ILS_LIKE_RANDOM_CONFIG = RandomLoadConfig(
    levels=(0.25, 0.5),
    job_duration_range=(0.5, 1.5),
    idle_duration_range=(0.5, 2.0),
    total_duration=120.0,
    duration_step=0.25,
)


def _round_to_step(value: float, step: float) -> float:
    return max(step, round(value / step) * step)


def _uniform(rng, low: float, high: float) -> float:
    """Uniform draw from either a ``random.Random`` or a numpy Generator."""
    return float(rng.uniform(low, high))


def _choice(rng, options: Sequence[float]) -> float:
    """Uniform pick from either a ``random.Random`` or a numpy Generator.

    numpy's ``Generator.choice`` would return a numpy scalar (and consume
    the stream differently across numpy versions), so the numpy branch
    draws an index with ``integers`` instead.
    """
    if isinstance(rng, random.Random):
        return rng.choice(list(options))
    return float(options[int(rng.integers(len(options)))])


def generate_random_load(
    seed: Optional[int] = None,
    config: Optional[RandomLoadConfig] = None,
    rng=None,
) -> Load:
    """Generate a random job/idle load according to ``config``.

    Randomness comes from exactly one of two sources:

    * ``seed`` -- a fresh ``random.Random(seed)`` stream, byte-for-byte the
      sequence this generator has always produced (the Monte-Carlo layer
      relies on this for sample-for-sample comparability between its scalar
      and batch engines);
    * ``rng`` -- an explicit ``random.Random`` or
      :class:`numpy.random.Generator`, advanced in place, for callers that
      thread one stream through a whole experiment.
    """
    cfg = config if config is not None else RandomLoadConfig()
    rng = _resolve_rng(seed, rng)
    epochs: List[Epoch] = []
    elapsed = 0.0
    while elapsed < cfg.total_duration:
        current = _choice(rng, cfg.levels)
        job_duration = _round_to_step(
            _uniform(rng, *cfg.job_duration_range), cfg.duration_step
        )
        epochs.append(job_epoch(current, job_duration))
        elapsed += job_duration
        idle_low, idle_high = cfg.idle_duration_range
        if idle_high > 0.0:
            idle_duration = _uniform(rng, idle_low, idle_high)
            idle_duration = round(idle_duration / cfg.duration_step) * cfg.duration_step
            if idle_duration > 0.0:
                epochs.append(idle_epoch(idle_duration))
                elapsed += idle_duration
    name = f"random(seed={seed})" if seed is not None else "random(rng)"
    return Load(name=name, epochs=tuple(epochs))


def bursty_load(
    burst_current: float,
    burst_jobs: int,
    rest_duration: float,
    cycles: int,
    job_duration: float = 1.0,
    name: str = "bursty",
) -> Load:
    """A load of dense job bursts separated by long rests.

    Bursty loads stress the rate-capacity effect during the burst and give
    the recovery effect room to act during the rest, which is where battery
    scheduling pays off most.
    """
    if burst_jobs < 1 or cycles < 1:
        raise ValueError("burst_jobs and cycles must be at least 1")
    epochs: List[Epoch] = []
    for _ in range(cycles):
        for _ in range(burst_jobs):
            epochs.append(job_epoch(burst_current, job_duration))
        epochs.append(idle_epoch(rest_duration))
    return Load(name=name, epochs=tuple(epochs))


def duty_cycle_load(
    current: float,
    period: float,
    duty_cycle: float,
    cycles: int,
    name: str = "duty-cycle",
) -> Load:
    """A periodic on/off load with the given duty cycle (fraction of time on)."""
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty_cycle must lie strictly between 0 and 1")
    if period <= 0.0 or cycles < 1:
        raise ValueError("period must be positive and cycles at least 1")
    on_time = period * duty_cycle
    off_time = period - on_time
    epochs: List[Epoch] = []
    for _ in range(cycles):
        epochs.append(job_epoch(current, on_time))
        epochs.append(idle_epoch(off_time))
    return Load(name=name, epochs=tuple(epochs))


def sensor_node_load(
    sense_current: float = 0.020,
    transmit_current: float = 0.300,
    sense_duration: float = 0.5,
    transmit_duration: float = 0.25,
    sleep_duration: float = 4.0,
    cycles: int = 100,
    name: str = "sensor-node",
) -> Load:
    """A wireless-sensor-node style workload: sense, transmit, sleep.

    The paper's outlook names sensor-network nodes as a target for battery-
    aware job scheduling; this load models one measurement round per cycle
    with a low-current sensing phase, a short high-current radio burst and a
    long sleep.
    """
    if cycles < 1:
        raise ValueError("cycles must be at least 1")
    epochs: List[Epoch] = []
    for _ in range(cycles):
        epochs.append(job_epoch(sense_current, sense_duration, label="sense"))
        epochs.append(job_epoch(transmit_current, transmit_duration, label="transmit"))
        epochs.append(idle_epoch(sleep_duration, label="sleep"))
    return Load(name=name, epochs=tuple(epochs))


def _resolve_rng(seed: Optional[int], rng):
    """The seed-XOR-rng contract shared by every seedable generator here."""
    if rng is None:
        if seed is None:
            raise ValueError("provide either a seed or an rng")
        return random.Random(seed)
    if seed is not None:
        raise ValueError("provide either a seed or an rng, not both")
    return rng


def _exponential(rng, mean: float) -> float:
    """Exponential draw built from one uniform, identical for both rng kinds.

    ``random.Random.expovariate`` and numpy's ``exponential`` consume their
    streams differently, so the draw is derived from a single uniform --
    the same load comes out of ``seed=n`` whichever rng family produced it.
    """
    u = _uniform(rng, 0.0, 1.0)
    return -mean * math.log1p(-u)


def mmpp_load(
    seed: Optional[int] = None,
    on_current: float = 0.500,
    off_current: float = 0.0,
    mean_on: float = 2.0,
    mean_off: float = 4.0,
    total_duration: float = 120.0,
    duration_step: float = 0.25,
    rng=None,
    name: Optional[str] = None,
) -> Load:
    """Markov-modulated on-off traffic: exponential bursts and gaps.

    A two-state Markov-modulated process alternates between an *on* state
    drawing ``on_current`` and an *off* state drawing ``off_current``
    (zero for idle gaps, positive for low-rate background traffic), with
    exponentially distributed sojourn times of the given means -- the
    standard bursty-traffic model for network and sensor nodes.  All
    durations are rounded to ``duration_step`` so discretized models
    represent the load exactly; rounded-away off states are dropped.

    Seedable exactly like :func:`generate_random_load`: pass ``seed`` for
    the reproducible private stream or ``rng`` to thread an explicit
    ``random.Random`` / numpy ``Generator`` through an experiment.
    """
    if on_current <= 0.0:
        raise ValueError("on_current must be positive")
    if off_current < 0.0:
        raise ValueError("off_current must not be negative")
    if mean_on <= 0.0 or mean_off <= 0.0:
        raise ValueError("mean_on and mean_off must be positive")
    if total_duration <= 0.0 or duration_step <= 0.0:
        raise ValueError("total_duration and duration_step must be positive")
    rng = _resolve_rng(seed, rng)
    epochs: List[Epoch] = []
    elapsed = 0.0
    while elapsed < total_duration:
        on_duration = _round_to_step(_exponential(rng, mean_on), duration_step)
        epochs.append(job_epoch(on_current, on_duration, label="burst"))
        elapsed += on_duration
        off_duration = (
            round(_exponential(rng, mean_off) / duration_step) * duration_step
        )
        if off_duration > 0.0:
            if off_current > 0.0:
                epochs.append(job_epoch(off_current, off_duration, label="background"))
            else:
                epochs.append(idle_epoch(off_duration))
            elapsed += off_duration
    if name is None:
        name = f"mmpp(seed={seed})" if seed is not None else "mmpp(rng)"
    return Load(name=name, epochs=tuple(epochs))


def duty_cycled_sensor_load(
    sense_current: float = 0.020,
    transmit_current: float = 0.300,
    sense_duration: float = 0.5,
    transmit_duration: float = 0.25,
    period: float = 5.0,
    transmit_every: int = 4,
    cycles: int = 100,
    jitter: float = 0.0,
    seed: Optional[int] = None,
    rng=None,
    duration_step: float = 0.25,
    name: str = "duty-cycled-sensor",
) -> Load:
    """A duty-cycled sensor profile: sense every period, transmit every k-th.

    Unlike :func:`sensor_node_load` (which radios every round), this models
    the common duty-cycling firmware pattern: a low-current measurement in
    every period and a high-current transmit burst only on every
    ``transmit_every``-th round, with the rest of the period asleep.  With
    ``jitter > 0`` (a fraction of the sleep span) the sleep of each round
    is perturbed uniformly, seeded through the same seed-or-rng contract
    as the random generators; ``jitter=0`` needs no randomness at all.
    """
    if cycles < 1 or transmit_every < 1:
        raise ValueError("cycles and transmit_every must be at least 1")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must lie in [0, 1)")
    if duration_step <= 0.0:
        raise ValueError("duration_step must be positive")
    if jitter > 0.0:
        rng = _resolve_rng(seed, rng)
    elif seed is not None or rng is not None:
        raise ValueError("seed/rng only apply with jitter > 0")
    epochs: List[Epoch] = []
    for cycle in range(cycles):
        busy = sense_duration
        epochs.append(job_epoch(sense_current, sense_duration, label="sense"))
        if cycle % transmit_every == transmit_every - 1:
            epochs.append(
                job_epoch(transmit_current, transmit_duration, label="transmit")
            )
            busy += transmit_duration
        sleep = period - busy
        if sleep <= 0.0:
            raise ValueError("period must exceed the sense+transmit time")
        if jitter > 0.0:
            sleep *= 1.0 + _uniform(rng, -jitter, jitter)
            sleep = round(sleep / duration_step) * duration_step
        if sleep > 0.0:
            epochs.append(idle_epoch(sleep, label="sleep"))
    return Load(name=name, epochs=tuple(epochs))


def trace_load(
    trace: Sequence[Sequence[float]],
    repeat: int = 1,
    time_scale: float = 1.0,
    name: str = "trace",
) -> Load:
    """A trace-driven load from explicit ``[current, duration]`` pairs.

    ``trace`` is JSON-plain -- a list of ``[current_ampere,
    duration_minutes]`` pairs, zero current meaning idle -- so measured
    device traces drop straight into declarative sweep specs and hash
    stably.  Consecutive pairs with equal current are coalesced into one
    epoch, ``repeat`` tiles the whole trace, and ``time_scale`` rescales
    every duration (e.g. a seconds-based trace with ``time_scale=1/60``).
    """
    if not trace:
        raise ValueError("trace must contain at least one [current, duration] pair")
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    if time_scale <= 0.0:
        raise ValueError("time_scale must be positive")
    segments: List[tuple] = []
    for pair in trace:
        if len(pair) != 2:
            raise ValueError("each trace entry must be a [current, duration] pair")
        current, duration = float(pair[0]), float(pair[1])
        if current < 0.0:
            raise ValueError("trace currents must not be negative")
        duration *= time_scale
        if duration <= 0.0:
            raise ValueError("trace durations must be positive")
        if segments and segments[-1][0] == current:
            segments[-1] = (current, segments[-1][1] + duration)
        else:
            segments.append((current, duration))
    tiled = list(segments) * repeat
    # Coalesce across the repeat seam too (last segment == first segment).
    merged: List[tuple] = []
    for current, duration in tiled:
        if merged and merged[-1][0] == current:
            merged[-1] = (current, merged[-1][1] + duration)
        else:
            merged.append((current, duration))
    epochs = tuple(
        job_epoch(current, duration) if current > 0.0 else idle_epoch(duration)
        for current, duration in merged
    )
    return Load(name=name, epochs=epochs)


def _registry() -> Dict[str, Callable[..., Load]]:
    # The profile generators live in repro.workloads.profiles, which does
    # not import this module, so the late import only avoids a hard cycle
    # if one is ever added there.
    from repro.workloads.profiles import (
        continuous_alternating_load,
        continuous_load,
        intermittent_alternating_load,
        intermittent_load,
        random_intermittent_load,
    )

    return {
        "bursty": bursty_load,
        "duty-cycle": duty_cycle_load,
        "duty-cycled-sensor": duty_cycled_sensor_load,
        "mmpp": mmpp_load,
        "sensor-node": sensor_node_load,
        "trace": trace_load,
        "continuous": continuous_load,
        "continuous-alternating": continuous_alternating_load,
        "intermittent": intermittent_load,
        "intermittent-alternating": intermittent_alternating_load,
        "random-intermittent": random_intermittent_load,
    }


#: Named load generators, addressable from declarative sweep specifications
#: (:mod:`repro.sweep`): a spec can say ``{"generator": "duty-cycle",
#: "kwargs": {...}}`` instead of embedding epochs, which keeps specs small
#: and their content hashes meaningful.
LOAD_GENERATOR_REGISTRY: Dict[str, Callable[..., Load]] = _registry()


def make_load(generator: str, **kwargs) -> Load:
    """Build a load from a registered generator by name.

    Raises ``ValueError`` for unknown generator names, listing the known
    ones -- the error surface of declarative sweep specs.
    """
    try:
        factory = LOAD_GENERATOR_REGISTRY[generator]
    except KeyError:
        known = ", ".join(sorted(LOAD_GENERATOR_REGISTRY))
        raise ValueError(
            f"unknown load generator {generator!r}; known generators: {known}"
        ) from None
    return factory(**kwargs)
