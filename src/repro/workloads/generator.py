"""Random and application-shaped workload generators.

Beyond the paper's fixed test loads, the conclusion calls for analysing
"realistic random loads" and mentions sensor-network nodes with simple
regular workloads as a target application.  The generators in this module
cover those cases and are used by the examples and the extension
benchmarks.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.workloads.load import Epoch, Load, idle_epoch, job_epoch


@dataclasses.dataclass(frozen=True)
class RandomLoadConfig:
    """Configuration for :func:`generate_random_load`.

    Attributes:
        levels: the current levels (Ampere) a job may use.
        job_duration_range: (min, max) job length in minutes.
        idle_duration_range: (min, max) idle length in minutes; the maximum
            may be zero to generate continuous loads.
        total_duration: approximate total load length in minutes.
        duration_step: all durations are rounded to a multiple of this value
            so that discretized models can represent the load exactly.
    """

    levels: Sequence[float] = (0.250, 0.500)
    job_duration_range: tuple = (0.5, 2.0)
    idle_duration_range: tuple = (0.0, 2.0)
    total_duration: float = 120.0
    duration_step: float = 0.25

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("levels must not be empty")
        if any(level <= 0.0 for level in self.levels):
            raise ValueError("all job current levels must be positive")
        if self.total_duration <= 0.0:
            raise ValueError("total_duration must be positive")
        if self.duration_step <= 0.0:
            raise ValueError("duration_step must be positive")


#: The canonical ILs-like random-load configuration: mixed 250/500 mA jobs
#: with idle gaps, the sweep the Monte-Carlo layer, the random-load
#: benchmark and the batch-sweep example all share.
ILS_LIKE_RANDOM_CONFIG = RandomLoadConfig(
    levels=(0.25, 0.5),
    job_duration_range=(0.5, 1.5),
    idle_duration_range=(0.5, 2.0),
    total_duration=120.0,
    duration_step=0.25,
)


def _round_to_step(value: float, step: float) -> float:
    return max(step, round(value / step) * step)


def _uniform(rng, low: float, high: float) -> float:
    """Uniform draw from either a ``random.Random`` or a numpy Generator."""
    return float(rng.uniform(low, high))


def _choice(rng, options: Sequence[float]) -> float:
    """Uniform pick from either a ``random.Random`` or a numpy Generator.

    numpy's ``Generator.choice`` would return a numpy scalar (and consume
    the stream differently across numpy versions), so the numpy branch
    draws an index with ``integers`` instead.
    """
    if isinstance(rng, random.Random):
        return rng.choice(list(options))
    return float(options[int(rng.integers(len(options)))])


def generate_random_load(
    seed: Optional[int] = None,
    config: Optional[RandomLoadConfig] = None,
    rng=None,
) -> Load:
    """Generate a random job/idle load according to ``config``.

    Randomness comes from exactly one of two sources:

    * ``seed`` -- a fresh ``random.Random(seed)`` stream, byte-for-byte the
      sequence this generator has always produced (the Monte-Carlo layer
      relies on this for sample-for-sample comparability between its scalar
      and batch engines);
    * ``rng`` -- an explicit ``random.Random`` or
      :class:`numpy.random.Generator`, advanced in place, for callers that
      thread one stream through a whole experiment.
    """
    cfg = config if config is not None else RandomLoadConfig()
    if rng is None:
        if seed is None:
            raise ValueError("provide either a seed or an rng")
        rng = random.Random(seed)
    elif seed is not None:
        raise ValueError("provide either a seed or an rng, not both")
    epochs: List[Epoch] = []
    elapsed = 0.0
    while elapsed < cfg.total_duration:
        current = _choice(rng, cfg.levels)
        job_duration = _round_to_step(
            _uniform(rng, *cfg.job_duration_range), cfg.duration_step
        )
        epochs.append(job_epoch(current, job_duration))
        elapsed += job_duration
        idle_low, idle_high = cfg.idle_duration_range
        if idle_high > 0.0:
            idle_duration = _uniform(rng, idle_low, idle_high)
            idle_duration = round(idle_duration / cfg.duration_step) * cfg.duration_step
            if idle_duration > 0.0:
                epochs.append(idle_epoch(idle_duration))
                elapsed += idle_duration
    name = f"random(seed={seed})" if seed is not None else "random(rng)"
    return Load(name=name, epochs=tuple(epochs))


def bursty_load(
    burst_current: float,
    burst_jobs: int,
    rest_duration: float,
    cycles: int,
    job_duration: float = 1.0,
    name: str = "bursty",
) -> Load:
    """A load of dense job bursts separated by long rests.

    Bursty loads stress the rate-capacity effect during the burst and give
    the recovery effect room to act during the rest, which is where battery
    scheduling pays off most.
    """
    if burst_jobs < 1 or cycles < 1:
        raise ValueError("burst_jobs and cycles must be at least 1")
    epochs: List[Epoch] = []
    for _ in range(cycles):
        for _ in range(burst_jobs):
            epochs.append(job_epoch(burst_current, job_duration))
        epochs.append(idle_epoch(rest_duration))
    return Load(name=name, epochs=tuple(epochs))


def duty_cycle_load(
    current: float,
    period: float,
    duty_cycle: float,
    cycles: int,
    name: str = "duty-cycle",
) -> Load:
    """A periodic on/off load with the given duty cycle (fraction of time on)."""
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty_cycle must lie strictly between 0 and 1")
    if period <= 0.0 or cycles < 1:
        raise ValueError("period must be positive and cycles at least 1")
    on_time = period * duty_cycle
    off_time = period - on_time
    epochs: List[Epoch] = []
    for _ in range(cycles):
        epochs.append(job_epoch(current, on_time))
        epochs.append(idle_epoch(off_time))
    return Load(name=name, epochs=tuple(epochs))


def sensor_node_load(
    sense_current: float = 0.020,
    transmit_current: float = 0.300,
    sense_duration: float = 0.5,
    transmit_duration: float = 0.25,
    sleep_duration: float = 4.0,
    cycles: int = 100,
    name: str = "sensor-node",
) -> Load:
    """A wireless-sensor-node style workload: sense, transmit, sleep.

    The paper's outlook names sensor-network nodes as a target for battery-
    aware job scheduling; this load models one measurement round per cycle
    with a low-current sensing phase, a short high-current radio burst and a
    long sleep.
    """
    if cycles < 1:
        raise ValueError("cycles must be at least 1")
    epochs: List[Epoch] = []
    for _ in range(cycles):
        epochs.append(job_epoch(sense_current, sense_duration, label="sense"))
        epochs.append(job_epoch(transmit_current, transmit_duration, label="transmit"))
        epochs.append(idle_epoch(sleep_duration, label="sleep"))
    return Load(name=name, epochs=tuple(epochs))


def _registry() -> Dict[str, Callable[..., Load]]:
    # The profile generators live in repro.workloads.profiles, which does
    # not import this module, so the late import only avoids a hard cycle
    # if one is ever added there.
    from repro.workloads.profiles import (
        continuous_alternating_load,
        continuous_load,
        intermittent_alternating_load,
        intermittent_load,
        random_intermittent_load,
    )

    return {
        "bursty": bursty_load,
        "duty-cycle": duty_cycle_load,
        "sensor-node": sensor_node_load,
        "continuous": continuous_load,
        "continuous-alternating": continuous_alternating_load,
        "intermittent": intermittent_load,
        "intermittent-alternating": intermittent_alternating_load,
        "random-intermittent": random_intermittent_load,
    }


#: Named load generators, addressable from declarative sweep specifications
#: (:mod:`repro.sweep`): a spec can say ``{"generator": "duty-cycle",
#: "kwargs": {...}}`` instead of embedding epochs, which keeps specs small
#: and their content hashes meaningful.
LOAD_GENERATOR_REGISTRY: Dict[str, Callable[..., Load]] = _registry()


def make_load(generator: str, **kwargs) -> Load:
    """Build a load from a registered generator by name.

    Raises ``ValueError`` for unknown generator names, listing the known
    ones -- the error surface of declarative sweep specs.
    """
    try:
        factory = LOAD_GENERATOR_REGISTRY[generator]
    except KeyError:
        known = ", ".join(sorted(LOAD_GENERATOR_REGISTRY))
        raise ValueError(
            f"unknown load generator {generator!r}; known generators: {known}"
        ) from None
    return factory(**kwargs)
