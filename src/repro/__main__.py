"""``python -m repro``: the command-line entry point of the reproduction.

Currently one command family is exposed -- the sweep orchestrator::

    python -m repro sweep specs
    python -m repro sweep run --spec table5
    python -m repro sweep status
    python -m repro sweep show --spec table5

Further subcommands hang off the same dispatcher as the system grows.
"""

from __future__ import annotations

import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "sweep":
        from repro.sweep.cli import main as sweep_main

        return sweep_main(rest)
    print(f"unknown command {command!r}; known commands: sweep", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
