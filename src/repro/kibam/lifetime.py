"""Lifetime solvers for the analytical KiBaM.

The lifetime of a battery is the time from full charge until the empty
condition ``gamma(t) = (1 - c) * delta(t)`` first holds.  For a constant
current the crossing point of the transcendental equation is bracketed and
solved with Brent's method; for piecewise-constant loads the state is
stepped analytically segment by segment and the crossing is located inside
the segment where it occurs.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from scipy.optimize import brentq

from repro.kibam.analytical import (
    KibamState,
    initial_state,
    is_empty,
    step_constant_current,
)
from repro.kibam.parameters import BatteryParameters

#: A load segment: (current in Ampere, duration in minutes).
Segment = Tuple[float, float]


def _empty_margin(params: BatteryParameters, state: KibamState) -> float:
    """Signed distance to the empty condition; zero or negative means empty."""
    return state.gamma - (1.0 - params.c) * state.delta


def time_to_empty(
    params: BatteryParameters,
    state: KibamState,
    current: float,
    horizon: Optional[float] = None,
) -> Optional[float]:
    """Time until the empty condition is reached at constant ``current``.

    Args:
        params: battery parameters.
        state: state at time zero.
        current: constant discharge current in Ampere (may be zero).
        horizon: if given, only look for a crossing within ``[0, horizon]``.

    Returns:
        The crossing time in minutes, or ``None`` if the battery does not
        become empty within the horizon (always the case for zero current
        on a non-empty battery).
    """
    if _empty_margin(params, state) <= 0.0:
        return 0.0
    if current <= 0.0:
        # During idle periods gamma is constant and delta only decays, so the
        # margin can never decrease: the battery cannot become empty.
        return None

    def margin_at(t: float) -> float:
        return _empty_margin(params, step_constant_current(params, state, current, t))

    # A hard upper bound: even if every unit of charge were available, the
    # battery would be flat after gamma / current minutes.
    upper = state.gamma / current
    if horizon is not None:
        upper = min(upper, horizon)
        if margin_at(upper) > 0.0:
            return None
    # The margin is strictly decreasing in time for positive current, so a
    # sign change over [0, upper] brackets the unique root.  Guard against
    # the pathological case where the bound itself is the root.
    if margin_at(upper) > 0.0:
        # Expand the bracket slightly; can only happen through floating
        # point noise when the crossing is exactly at ``upper``.
        upper = upper * (1.0 + 1e-12) + 1e-12
    return float(brentq(margin_at, 0.0, upper, xtol=1e-12, rtol=1e-12))


def lifetime_constant_current(params: BatteryParameters, current: float) -> float:
    """Lifetime of a fully charged battery under a constant discharge current."""
    if current <= 0.0:
        raise ValueError(f"current must be positive, got {current}")
    result = time_to_empty(params, initial_state(params), current)
    assert result is not None  # positive current always empties the battery
    return result


def lifetime_under_segments(
    params: BatteryParameters,
    segments: Iterable[Segment],
    state: Optional[KibamState] = None,
) -> Optional[float]:
    """Lifetime of a battery under a piecewise-constant load.

    Args:
        params: battery parameters.
        segments: iterable of ``(current, duration)`` pairs in Ampere and
            minutes, applied in order.
        state: optional starting state (defaults to a fully charged battery).

    Returns:
        The time at which the battery becomes empty, or ``None`` if it
        survives the whole load.
    """
    current_state = state if state is not None else initial_state(params)
    elapsed = 0.0
    for current, duration in segments:
        if duration < 0.0:
            raise ValueError(f"segment duration must be non-negative, got {duration}")
        if current < 0.0:
            raise ValueError(f"segment current must be non-negative, got {current}")
        crossing = time_to_empty(params, current_state, current, horizon=duration)
        if crossing is not None:
            return elapsed + crossing
        current_state = step_constant_current(params, current_state, current, duration)
        elapsed += duration
    if is_empty(params, current_state, tolerance=1e-12):
        return elapsed
    return None


def trace_under_segments(
    params: BatteryParameters,
    segments: Sequence[Segment],
    sample_interval: float = 0.05,
    stop_when_empty: bool = True,
) -> List[Tuple[float, KibamState]]:
    """Sample the state evolution under a piecewise-constant load.

    Returns a list of ``(time, state)`` samples taken every
    ``sample_interval`` minutes (plus every segment boundary), suitable for
    plotting charge curves such as Figure 6 of the paper.
    """
    if sample_interval <= 0.0:
        raise ValueError("sample_interval must be positive")
    samples: List[Tuple[float, KibamState]] = []
    state = initial_state(params)
    elapsed = 0.0
    samples.append((elapsed, state))
    for current, duration in segments:
        remaining = duration
        while remaining > 1e-12:
            step = min(sample_interval, remaining)
            state = step_constant_current(params, state, current, step)
            elapsed += step
            remaining -= step
            samples.append((elapsed, state))
            if stop_when_empty and is_empty(params, state):
                return samples
    return samples


def delivered_charge(
    params: BatteryParameters,
    segments: Iterable[Segment],
) -> float:
    """Total charge (Amin) drawn from a full battery before it goes empty.

    This quantifies the rate-capacity effect: at higher currents the battery
    goes empty with more charge still bound, so the delivered charge drops.
    """
    state = initial_state(params)
    total = 0.0
    for current, duration in segments:
        crossing = time_to_empty(params, state, current, horizon=duration)
        if crossing is not None:
            return total + current * crossing
        state = step_constant_current(params, state, current, duration)
        total += current * duration
    return total


def residual_charge_fraction(
    params: BatteryParameters,
    segments: Sequence[Segment],
) -> Optional[float]:
    """Fraction of capacity left in the battery at the moment it goes empty.

    Section 6 of the paper observes that for the B1 batteries roughly 70 %
    of the original charge is still bound when the system dies, and that the
    fraction shrinks when the capacity grows.  Returns ``None`` when the
    battery survives the load.
    """
    state = initial_state(params)
    for current, duration in segments:
        crossing = time_to_empty(params, state, current, horizon=duration)
        if crossing is not None:
            final = step_constant_current(params, state, current, crossing)
            return max(final.gamma, 0.0) / params.capacity
        state = step_constant_current(params, state, current, duration)
    return None


def gain_over_linear(params: BatteryParameters, current: float) -> float:
    """Ratio of the ideal (linear) lifetime to the KiBaM lifetime.

    The ideal battery delivers its full capacity at any rate, so the ratio
    ``(C / I) / lifetime`` expresses how strongly the rate-capacity effect
    penalises the given current (always >= 1).
    """
    ideal = params.capacity / current
    return ideal / lifetime_constant_current(params, current)


def peukert_exponent_estimate(
    params: BatteryParameters,
    low_current: float,
    high_current: float,
) -> float:
    """Estimate an effective Peukert exponent from two constant-current runs.

    Peukert's empirical law states ``I^n * t = const``.  Fitting the KiBaM
    lifetimes at two currents gives an effective exponent that quantifies
    the rate-capacity effect; for an ideal battery the exponent is 1.
    """
    if not 0.0 < low_current < high_current:
        raise ValueError("currents must satisfy 0 < low_current < high_current")
    t_low = lifetime_constant_current(params, low_current)
    t_high = lifetime_constant_current(params, high_current)
    return math.log(t_low / t_high) / math.log(high_current / low_current)
