"""The original two-well KiBaM ODE (Section 2.1) integrated numerically.

This module keeps the untransformed formulation of the Kinetic Battery
Model,

.. math::

    \\frac{dy_1}{dt} = -i(t) + k (h_2 - h_1), \\qquad
    \\frac{dy_2}{dt} = -k (h_2 - h_1),

with ``h1 = y1 / c`` and ``h2 = y2 / (1 - c)``.  It is integrated with
scipy's ``solve_ivp`` and exists primarily as an independent reference
implementation: the analytical stepping of :mod:`repro.kibam.analytical`
is validated against it in the test suite, and it accepts arbitrary
time-varying current functions, not only piecewise-constant loads.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy.integrate import solve_ivp

from repro.kibam.analytical import KibamState
from repro.kibam.parameters import BatteryParameters
from repro.kibam.transformed import from_wells, to_wells

CurrentFunction = Callable[[float], float]


class TwoWellKibam:
    """Numerical integrator for the two-well KiBaM ODE.

    Args:
        params: battery parameters.
        rtol: relative tolerance passed to ``solve_ivp``.
        atol: absolute tolerance passed to ``solve_ivp``.
    """

    def __init__(
        self,
        params: BatteryParameters,
        rtol: float = 1e-9,
        atol: float = 1e-12,
    ) -> None:
        self.params = params
        self.rtol = rtol
        self.atol = atol

    def _rhs(self, current: CurrentFunction) -> Callable[[float, np.ndarray], np.ndarray]:
        c = self.params.c
        k = self.params.k
        def rhs(t: float, y: np.ndarray) -> np.ndarray:
            y1, y2 = y
            flow = k * (y2 / (1.0 - c) - y1 / c)
            return np.array([-current(t) + flow, -flow])
        return rhs

    def initial_wells(self) -> Tuple[float, float]:
        """Initial well charges ``(y1, y2) = (c * C, (1 - c) * C)``."""
        return self.params.available_capacity, self.params.bound_capacity

    def integrate(
        self,
        current: CurrentFunction,
        duration: float,
        initial: Optional[Tuple[float, float]] = None,
        max_step: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Integrate the ODE for ``duration`` minutes and return final wells.

        Args:
            current: function mapping time (minutes) to current (Ampere).
            duration: integration horizon in minutes.
            initial: optional initial well charges; defaults to full charge.
            max_step: optional maximum integrator step (use when the current
                function has discontinuities the solver should not skip).
        """
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        y0 = np.array(initial if initial is not None else self.initial_wells(), dtype=float)
        if duration == 0.0:
            return float(y0[0]), float(y0[1])
        kwargs = {"rtol": self.rtol, "atol": self.atol}
        if max_step is not None:
            kwargs["max_step"] = max_step
        solution = solve_ivp(self._rhs(current), (0.0, duration), y0, **kwargs)
        if not solution.success:
            raise RuntimeError(f"ODE integration failed: {solution.message}")
        return float(solution.y[0, -1]), float(solution.y[1, -1])

    def integrate_to_state(
        self,
        current: CurrentFunction,
        duration: float,
        initial: Optional[KibamState] = None,
        max_step: Optional[float] = None,
    ) -> KibamState:
        """Like :meth:`integrate` but with transformed states in and out."""
        wells = None
        if initial is not None:
            wells = to_wells(self.params, initial)
        y1, y2 = self.integrate(current, duration, initial=wells, max_step=max_step)
        return from_wells(self.params, y1, y2)

    def lifetime_constant_current(self, current: float, tolerance: float = 1e-10) -> float:
        """Lifetime under constant current, located with an ODE terminal event.

        The battery is empty when the available charge ``y1`` reaches zero.
        """
        if current <= 0.0:
            raise ValueError("current must be positive")
        def empty_event(t: float, y: np.ndarray) -> float:
            return y[0]
        empty_event.terminal = True  # type: ignore[attr-defined]
        empty_event.direction = -1  # type: ignore[attr-defined]
        y0 = np.array(self.initial_wells())
        horizon = self.params.capacity / current * 2.0 + 1.0
        solution = solve_ivp(
            self._rhs(lambda _t: current),
            (0.0, horizon),
            y0,
            events=empty_event,
            rtol=self.rtol,
            atol=max(self.atol, tolerance),
        )
        if not solution.success:
            raise RuntimeError(f"ODE integration failed: {solution.message}")
        if len(solution.t_events[0]) == 0:
            raise RuntimeError("battery did not become empty within the horizon")
        return float(solution.t_events[0][0])

    def lifetime_under_segments(self, segments: Sequence[Tuple[float, float]]) -> Optional[float]:
        """Lifetime under a piecewise-constant load via segment-wise integration."""
        wells = self.initial_wells()
        elapsed = 0.0
        for current, duration in segments:
            def empty_event(t: float, y: np.ndarray) -> float:
                return y[0]
            empty_event.terminal = True  # type: ignore[attr-defined]
            empty_event.direction = -1  # type: ignore[attr-defined]
            solution = solve_ivp(
                self._rhs(lambda _t, value=current: value),
                (0.0, duration),
                np.array(wells),
                events=empty_event,
                rtol=self.rtol,
                atol=self.atol,
            )
            if not solution.success:
                raise RuntimeError(f"ODE integration failed: {solution.message}")
            if len(solution.t_events[0]) > 0:
                return elapsed + float(solution.t_events[0][0])
            wells = (float(solution.y[0, -1]), float(solution.y[1, -1]))
            elapsed += duration
        return None
