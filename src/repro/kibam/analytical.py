"""Analytical KiBaM in the transformed ``(delta, gamma)`` coordinates.

Section 2.2 of the paper transforms the two-well coordinates ``(y1, y2)``
into the height difference ``delta = h2 - h1`` and the total charge
``gamma = y1 + y2``, which obey

.. math::

    \\frac{d\\delta}{dt} = \\frac{i(t)}{c} - k' \\delta,
    \\qquad
    \\frac{d\\gamma}{dt} = -i(t),

with ``delta(0) = 0`` and ``gamma(0) = C``.  For a constant current ``I``
over a step of length ``tau`` both equations have closed-form solutions,
which is what this module implements.  The battery is empty when
``gamma = (1 - c) * delta`` (equation (3) of the paper).
"""

from __future__ import annotations

import dataclasses
import math

from repro.kibam.parameters import BatteryParameters


@dataclasses.dataclass(frozen=True)
class KibamState:
    """State of a KiBaM battery in transformed coordinates.

    Attributes:
        gamma: total charge remaining in the battery (Amin).
        delta: height difference between the bound- and available-charge
            wells (Amin; note that heights carry units of charge because the
            wells have unit width in the model).
    """

    gamma: float
    delta: float

    def clamped(self) -> "KibamState":
        """Return a copy with tiny negative values rounded up to zero."""
        gamma = self.gamma if abs(self.gamma) > 1e-15 else 0.0
        delta = self.delta if abs(self.delta) > 1e-15 else 0.0
        return KibamState(gamma=gamma, delta=delta)


def initial_state(params: BatteryParameters) -> KibamState:
    """Fully charged state: ``gamma = C`` and ``delta = 0``."""
    return KibamState(gamma=params.capacity, delta=0.0)


def step_constant_current(
    params: BatteryParameters,
    state: KibamState,
    current: float,
    duration: float,
) -> KibamState:
    """Advance the battery state by ``duration`` minutes at constant current.

    Args:
        params: battery parameters.
        state: state at the beginning of the step.
        current: discharge current in Ampere (0 for an idle/recovery period).
        duration: step length in minutes; must be non-negative.

    Returns:
        The state at the end of the step.  The caller is responsible for
        checking emptiness (``is_empty``); stepping past the empty point is
        permitted mathematically but has no physical meaning.
    """
    if duration < 0.0:
        raise ValueError(f"duration must be non-negative, got {duration}")
    if duration == 0.0:
        return state
    k_prime = params.k_prime
    decay = math.exp(-k_prime * duration)
    delta_inf = current / (params.c * k_prime)
    new_delta = delta_inf + (state.delta - delta_inf) * decay
    new_gamma = state.gamma - current * duration
    return KibamState(gamma=new_gamma, delta=new_delta)


def available_charge(params: BatteryParameters, state: KibamState) -> float:
    """Charge in the available-charge well, ``y1 = c * (gamma - (1 - c) * delta)``."""
    return params.c * (state.gamma - (1.0 - params.c) * state.delta)


def bound_charge(params: BatteryParameters, state: KibamState) -> float:
    """Charge in the bound-charge well, ``y2 = gamma - y1``."""
    return state.gamma - available_charge(params, state)


def is_empty(params: BatteryParameters, state: KibamState, tolerance: float = 0.0) -> bool:
    """Whether the battery is empty: ``gamma <= (1 - c) * delta`` (eq. (3)).

    A non-negative ``tolerance`` (in Amin) makes the check slightly
    conservative, which is useful when states come from numerical
    integration.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    return state.gamma - (1.0 - params.c) * state.delta <= tolerance


def state_of_charge(params: BatteryParameters, state: KibamState) -> float:
    """Fraction of the total capacity still stored in the battery."""
    return state.gamma / params.capacity
