"""Conversions between the two KiBaM coordinate systems.

The original KiBaM (Section 2.1 of the paper) tracks the charge in the
available-charge well ``y1`` and the bound-charge well ``y2``.  The
transformed coordinates (Section 2.2) are the total charge
``gamma = y1 + y2`` and the height difference ``delta = h2 - h1`` with
``h1 = y1 / c`` and ``h2 = y2 / (1 - c)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.kibam.analytical import KibamState
from repro.kibam.parameters import BatteryParameters


def height_difference(params: BatteryParameters, y1: float, y2: float) -> float:
    """Height difference ``h2 - h1`` for well charges ``(y1, y2)``."""
    return y2 / (1.0 - params.c) - y1 / params.c


def from_wells(params: BatteryParameters, y1: float, y2: float) -> KibamState:
    """Build a transformed state from well charges ``(y1, y2)``."""
    return KibamState(gamma=y1 + y2, delta=height_difference(params, y1, y2))


def to_wells(params: BatteryParameters, state: KibamState) -> Tuple[float, float]:
    """Recover the well charges ``(y1, y2)`` from a transformed state.

    Inverse of :func:`from_wells`:
    ``y1 = c * (gamma - (1 - c) * delta)`` and ``y2 = gamma - y1``.
    """
    y1 = params.c * (state.gamma - (1.0 - params.c) * state.delta)
    y2 = state.gamma - y1
    return y1, y2
