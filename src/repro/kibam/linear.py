"""Ideal linear battery model.

The linear model treats the battery as a bucket of charge: the full
capacity is always available, regardless of the discharge rate or usage
pattern.  It exhibits neither the rate-capacity effect nor the recovery
effect and therefore provides the upper bound that the paper's Section 6
discussion refers to when quantifying how much charge the KiBaM leaves
stranded in the bound well.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.kibam.parameters import BatteryParameters

Segment = Tuple[float, float]


class LinearBattery:
    """Rate-independent battery: lifetime is capacity divided by current."""

    def __init__(self, params: BatteryParameters) -> None:
        self.params = params

    def lifetime_constant_current(self, current: float) -> float:
        """Lifetime under constant current: ``C / I``."""
        if current <= 0.0:
            raise ValueError("current must be positive")
        return self.params.capacity / current

    def lifetime_under_segments(self, segments: Iterable[Segment]) -> Optional[float]:
        """Time at which the cumulative drawn charge reaches the capacity."""
        remaining = self.params.capacity
        elapsed = 0.0
        for current, duration in segments:
            if current < 0.0 or duration < 0.0:
                raise ValueError("segments must have non-negative current and duration")
            drawn = current * duration
            if current > 0.0 and drawn >= remaining:
                return elapsed + remaining / current
            remaining -= drawn
            elapsed += duration
        return None

    def remaining_after_segments(self, segments: Iterable[Segment]) -> float:
        """Charge left after serving the whole load (may be negative if overdrawn)."""
        remaining = self.params.capacity
        for current, duration in segments:
            remaining -= current * duration
        return remaining
