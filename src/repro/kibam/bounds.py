"""Admissible lifetime bounds for multi-battery KiBaM scheduling.

The perfect-pooling bound (summing the transformed states of batteries that
share ``c`` and ``k'`` and walking one pooled KiBaM through the load) is the
workhorse upper bound of both optimal searches.  It is exact about the
*aggregate* dynamics -- the pooled ``(gamma, delta)`` evolves identically
however the load is split -- but it implicitly lets every battery's bound
charge serve the load, as if charge could migrate between batteries.  Real
schedules cannot do that: one battery serves each burst (switchover happens
only when the serving battery dies), and a dead battery strands whatever
bound charge it still holds.

This module implements the *recovery-limited* refinement of the pooling
bound used by :class:`repro.core.optimal.OptimalScheduler` and the batched
:class:`repro.engine.optimal_batch.BatchOptimalScheduler`.  The argument
has two halves, both closed-form:

**Chain feasibility.**  While no battery has died, the aggregate state at
each job start equals the pooled walk exactly, and each job must be served
*whole* by a single battery (decisions happen at job starts and at server
deaths only).  Serving current ``I`` for ``d`` minutes from well state
``(y1, y2)`` succeeds iff the empty margin stays positive through the
burst, which linearizes to ``y1 >= A - B * y2`` with

.. math::

    A = \\frac{c\\,(I d + (1-E)\\,(1-c)\\,\\delta_\\infty)}{c + (1-c)E},
    \\qquad
    B = \\frac{c\\,(1-E)}{c + (1-c)E},
    \\qquad E = e^{-k'd},\\ \\delta_\\infty = I/(c k').

Per battery ``u`` the search only knows sound *caps* at job start ``s``:
``y1_u(s) <= min(y1_pool(s), y1_u^0 + y2_u^0 (1 - e^{-k'c s}))`` (no
battery's available charge exceeds the pool's while all are alive, and a
battery cannot gain available charge faster than its own bound charge
transfers) and ``y2_u(s) <= min(y2_u^0, y2_pool(s) - \\sum_{v \\ne u}
y2_v^0 e^{-k'c s})`` (per-battery bound charge never increases and decays
at most at rate ``k'c``; the pooled ``y2`` bookkeeping is exact).  ``B >
0``, so plugging the ``y2`` cap into the threshold is optimistic; if *no*
battery passes its optimistic check for some job ``j*``, every schedule
suffers its first battery death no later than that job's end ``T*``.

**Stranded-charge tail.**  A battery that dies at ``tau1 <= T*`` keeps
``y2 >= y2_min^0 e^{-k'c tau1}`` Amin forever (its gamma is frozen once it
stops serving).  The total charge delivered by the surviving batteries
through time ``t`` along the *actual* pooled trajectory obeys the
max-drain envelope ``delivered(t) <= y1_pool(tau1) + y2_pool(tau1)(1 -
e^{-k'c (t - tau1)})`` which, evaluated along the pooled walk, is
non-increasing in ``tau1`` (the envelope derivative is ``e^{-k'c(t-tau)}
k'c ((1-c)\\delta - y2) <= 0`` whenever the pooled ``y1 >= 0``).  Hence for
any first death at ``tau1 <= T* <= t``::

    demand(0, t] <= Y1 + Y2 (1 - e^{-k'c t})
                    - y2_min^0 (e^{-k'c T*} - e^{-k'c t})

with ``(Y1, Y2)`` the pooled wells at the node.  The first ``t >= T*``
where the load's cumulative demand exceeds this envelope upper-bounds the
system death; the recovery-limited bound is its minimum with the pooled
crossing.  With a single alive battery the feasibility check is exact and
the refinement degenerates to the pooled bound itself, so the bound is
admissible for every alive count.

Nothing in either half fixes the number of batteries: the per-battery caps,
the feasibility sweep and the stranded-charge envelope are rows of
``(n_nodes, n_batteries)`` arrays, so the same bounds serve 2-battery pairs
and N-battery fleets alike.  The admissibility argument is per-fleet --
"no battery passes its optimistic cap" quantifies over however many
batteries are alive -- and the nightly fleet property suite asserts the
root hierarchy ``total-charge >= pooling >= recovery-limited >= certified
optimum`` on random 2-6 battery heterogeneous fleets.

Everything here is expressed in the transformed analytical coordinates;
discrete searches inflate the result by their documented
``discrete_bound_slack_for`` margin exactly as they inflate the pooled
bound.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.kibam.parameters import BatteryParameters

__all__ = [
    "PooledJobTable",
    "burst_survival_coefficients",
    "build_pooled_job_table",
    "recovery_limited_refinements",
]

#: Feasibility comparisons err on the side of "feasible" by this margin so
#: float noise can only weaken (never unsoundly tighten) the bound.
_FEASIBILITY_EPSILON = 1e-9

#: Bisection iterations for the demand-vs-envelope crossing (the bracket is
#: at most one load segment, so 60 halvings reach ~1e-12 minutes).
_BISECT_ITERATIONS = 60

#: Per-table memo cap for tail-crossing results (clear-on-overflow, same
#: policy as the searches' bound caches).
_TAIL_CACHE_LIMIT = 65536


def burst_survival_coefficients(
    c: float, k_prime: float, current: float, duration: float
) -> tuple:
    """``(A, B)`` of the exact single-server burst threshold ``y1 >= A - B y2``.

    A KiBaM battery with wells ``(y1, y2)`` serves ``current`` Ampere for
    ``duration`` minutes without going empty iff ``y1 >= A - B * y2``;
    the threshold is linear because both the terminal margin and the wells
    are linear in the initial state.  ``B >= 0`` always.
    """
    decay = math.exp(-k_prime * duration)
    delta_inf = current / (c * k_prime)
    denom = c + (1.0 - c) * decay
    a = c * (current * duration + (1.0 - decay) * (1.0 - c) * delta_inf) / denom
    b = c * (1.0 - decay) / denom
    return a, b


@dataclasses.dataclass
class PooledJobTable:
    """Per-decision-point pooled-walk data shared by a batch of nodes.

    The table depends only on the decision point and the pooled state --
    which, before any battery death, is identical across every search node
    at that decision point -- so both searches cache one table per pooled
    bound-cache key and evaluate many nodes against it.

    All times are relative to the decision point; ``crossing`` is the
    perfect-pooling bound (unscaled).  Segments run up to and including the
    segment containing the pooled crossing; jobs are the job segments among
    them, with the exact pooled wells at each job start.
    """

    crossing: float
    #: Segment grid (jobs and idles interleaved), clipped at the crossing.
    seg_start: np.ndarray
    seg_current: np.ndarray
    seg_end: np.ndarray
    #: Cumulative demand (Amin) from the decision point to each seg start.
    seg_demand: np.ndarray
    #: Job rows: start time, current, duration, pooled wells at start.
    job_start: np.ndarray
    job_a: np.ndarray
    job_b: np.ndarray
    job_end: np.ndarray
    job_y1_pool: np.ndarray
    job_y2_pool: np.ndarray
    #: Memo for ``_tail_crossing`` results; nodes at the same decision point
    #: frequently share well totals, so the solve is worth deduplicating.
    tail_cache: dict = dataclasses.field(default_factory=dict)


def build_pooled_job_table(
    params: BatteryParameters,
    currents: np.ndarray,
    durations: np.ndarray,
    epoch_index: int,
    offset: float,
    gamma: float,
    delta: float,
    time_to_empty_fn,
) -> PooledJobTable:
    """Walk the pooled battery through the remaining load, recording jobs.

    ``time_to_empty_fn(params, gamma, delta, current, horizon)`` must return
    the crossing time within the segment or ``None`` (both searches pass
    their own solver so the walk reproduces their pooled bound exactly).
    """
    c = params.c
    k_prime = params.k_prime
    elapsed = 0.0
    demand = 0.0
    seg_start = []
    seg_current = []
    seg_end = []
    seg_demand = []
    job_start = []
    job_a = []
    job_b = []
    job_end = []
    job_y1 = []
    job_y2 = []
    crossing: Optional[float] = None
    for index in range(epoch_index, len(currents)):
        current = float(currents[index])
        duration = float(durations[index]) - (offset if index == epoch_index else 0.0)
        if duration <= 0.0:
            continue
        seg_start.append(elapsed)
        seg_current.append(current)
        seg_end.append(elapsed + duration)
        seg_demand.append(demand)
        if current > 0.0:
            y1 = c * (gamma - (1.0 - c) * delta)
            y2 = gamma - y1
            a, b = burst_survival_coefficients(c, k_prime, current, duration)
            job_start.append(elapsed)
            job_a.append(a)
            job_b.append(b)
            job_end.append(elapsed + duration)
            job_y1.append(y1)
            job_y2.append(y2)
        hit = time_to_empty_fn(params, gamma, delta, current, duration)
        if hit is not None:
            crossing = elapsed + hit
            break
        decay = math.exp(-k_prime * duration)
        delta = current / (c * k_prime) + (delta - current / (c * k_prime)) * decay
        gamma = gamma - current * duration
        elapsed += duration
        demand += current * duration
    if crossing is None:
        crossing = elapsed
    return PooledJobTable(
        crossing=crossing,
        seg_start=np.asarray(seg_start, dtype=np.float64),
        seg_current=np.asarray(seg_current, dtype=np.float64),
        seg_end=np.asarray(seg_end, dtype=np.float64),
        seg_demand=np.asarray(seg_demand, dtype=np.float64),
        job_start=np.asarray(job_start, dtype=np.float64),
        job_a=np.asarray(job_a, dtype=np.float64),
        job_b=np.asarray(job_b, dtype=np.float64),
        job_end=np.asarray(job_end, dtype=np.float64),
        job_y1_pool=np.asarray(job_y1, dtype=np.float64),
        job_y2_pool=np.asarray(job_y2, dtype=np.float64),
    )


def _tail_crossing(
    table: PooledJobTable,
    kc: float,
    y1_total: float,
    y2_total: float,
    y2_min: float,
    deadline: float,
) -> float:
    """First ``t >= deadline`` where cumulative demand beats the envelope.

    The envelope is ``Y1 + Y2 (1 - e^{-kc t}) - y2_min (e^{-kc deadline} -
    e^{-kc t})``; within one load segment the demand-minus-envelope margin
    is convex, so a segment contains a crossing iff the margin at its end
    is positive, and the crossing is the unique sign change before it.
    Returns ``table.crossing`` when the demand never catches the envelope
    (the pooled bound then stands un-refined).
    """
    # margin(t) = demand(t) - envelope(t)
    #           = (base + current (t - seg_start)) - flat + sag * e^{-kc t}
    # with flat = Y1 + Y2 - y2_min e^{-kc deadline} and sag = Y2 - y2_min.
    flat = y1_total + y2_total - y2_min * math.exp(-kc * deadline)
    sag = y2_total - y2_min
    exp = math.exp
    for seg in range(table.seg_start.shape[0]):
        end = float(table.seg_end[seg])
        if end <= deadline:
            continue
        seg_t0 = float(table.seg_start[seg])
        start = max(seg_t0, deadline)
        current = float(table.seg_current[seg])
        base = float(table.seg_demand[seg])
        m_start = base + current * (start - seg_t0) - flat + sag * exp(-kc * start)
        if m_start > 0.0:
            return start
        m_end = base + current * (end - seg_t0) - flat + sag * exp(-kc * end)
        if m_end <= 0.0:
            continue
        lo, hi = start, end
        for _ in range(_BISECT_ITERATIONS):
            mid = 0.5 * (lo + hi)
            if base + current * (mid - seg_t0) - flat + sag * exp(-kc * mid) > 0.0:
                hi = mid
            else:
                lo = mid
        return hi
    return table.crossing


def recovery_limited_refinements(
    table: PooledJobTable,
    params: BatteryParameters,
    y1: np.ndarray,
    y2: np.ndarray,
    alive: np.ndarray,
) -> np.ndarray:
    """Recovery-limited remaining-lifetime bounds for a batch of nodes.

    Args:
        table: the pooled job table of the shared decision point.
        params: the pooled battery parameters (shared ``c``/``k'``).
        y1 / y2: ``(n_nodes, n_batteries)`` per-battery wells at the node.
        alive: matching boolean mask of non-empty batteries.

    Returns:
        ``(n_nodes,)`` unscaled bounds, each ``<= table.crossing`` (the
        perfect-pooling bound) and admissible for the true remaining
        lifetime of the node.
    """
    y1 = np.asarray(y1, dtype=np.float64)
    y2 = np.asarray(y2, dtype=np.float64)
    alive = np.asarray(alive, dtype=bool)
    if y1.shape != y2.shape or y1.shape != alive.shape or y1.ndim != 2:
        raise ValueError(
            "y1, y2 and alive must share one (n_nodes, n_batteries) shape"
        )
    n_nodes = y1.shape[0]
    out = np.full(n_nodes, table.crossing)
    n_jobs = table.job_start.shape[0]
    if n_jobs == 0:
        return out
    kc = params.k_prime * params.c

    y1 = np.where(alive, y1, 0.0)
    y2 = np.where(alive, y2, 0.0)
    n_alive = alive.sum(axis=1)

    # (J,) job-shared factors.
    fade = np.exp(-kc * table.job_start)  # e^{-k'c s_j}
    # (N, J, B) sound caps on each battery's wells at each job start.
    y2_fade = y2[:, None, :] * fade[None, :, None]
    others_floor = y2_fade.sum(axis=2, keepdims=True) - y2_fade
    y2_cap = np.minimum(
        y2[:, None, :], table.job_y2_pool[None, :, None] - others_floor
    )
    y1_cap = np.minimum(
        table.job_y1_pool[None, :, None],
        y1[:, None, :] + y2[:, None, :] * (1.0 - fade[None, :, None]),
    )
    required = table.job_a[None, :, None] - table.job_b[None, :, None] * y2_cap
    feasible = (y1_cap >= required - _FEASIBILITY_EPSILON) & alive[:, None, :]
    job_ok = feasible.any(axis=2)  # (N, J)

    infeasible_any = ~job_ok.all(axis=1)
    y2_min = np.where(alive, y2, np.inf).min(axis=1)
    for node in np.flatnonzero(infeasible_any & (n_alive >= 2)):
        first_bad = int(np.argmin(job_ok[node]))
        y1_total = float(y1[node].sum())
        y2_total = float(y2[node].sum())
        y2_node_min = float(y2_min[node])
        key = (
            first_bad,
            round(y1_total, 12),
            round(y2_total, 12),
            round(y2_node_min, 12),
        )
        tail = table.tail_cache.get(key)
        if tail is None:
            deadline = min(float(table.job_end[first_bad]), table.crossing)
            tail = _tail_crossing(
                table, kc, y1_total, y2_total, y2_node_min, deadline
            )
            if len(table.tail_cache) >= _TAIL_CACHE_LIMIT:
                table.tail_cache.clear()
            table.tail_cache[key] = tail
        out[node] = min(table.crossing, tail)
    return out
