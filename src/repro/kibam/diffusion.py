"""Rakhmatov-Vrudhula diffusion battery model.

The paper's validation section points to Rakhmatov, Vrudhula and Wallach
(references [20, 21]), whose analytical diffusion model is the other widely
used abstraction of lithium-ion cells.  It is included here as an optional
comparison model: the model-comparison example and ablation benchmarks use
it to show that the scheduling conclusions are not an artifact of the KiBaM.

For a piecewise-constant load :math:`i(t) = I_k` on :math:`[t_k, t_{k+1})`
the apparent charge lost by time :math:`t` is

.. math::

    \\sigma(t) = \\sum_k I_k (\\Delta_k)
        + 2 \\sum_{m=1}^{\\infty} \\sum_k \\frac{I_k}{\\beta^2 m^2}
          \\left( e^{-\\beta^2 m^2 (t - t_{k+1})} - e^{-\\beta^2 m^2 (t - t_k)} \\right)

and the battery is exhausted when :math:`\\sigma(t)` reaches the capacity
parameter :math:`\\alpha`.  The infinite sum is truncated; ten terms are
ample for the beta values of small lithium-ion cells.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from scipy.optimize import brentq

Segment = Tuple[float, float]


class DiffusionBattery:
    """Analytical Rakhmatov-Vrudhula diffusion model.

    Args:
        alpha: capacity parameter in Ampere-minutes (apparent charge the
            battery can lose before it is exhausted).
        beta: diffusion rate parameter in 1/sqrt(min); smaller values mean
            stronger rate-capacity and recovery effects.
        terms: number of terms kept from the infinite series.
    """

    def __init__(self, alpha: float, beta: float, terms: int = 10) -> None:
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        if beta <= 0.0:
            raise ValueError("beta must be positive")
        if terms < 1:
            raise ValueError("terms must be at least 1")
        self.alpha = alpha
        self.beta = beta
        self.terms = terms

    def _sigma(self, segments: Sequence[Segment], t: float) -> float:
        """Apparent charge lost at time ``t`` under the given load."""
        sigma = 0.0
        start = 0.0
        for current, duration in segments:
            end = min(start + duration, t)
            if end <= start:
                break
            elapsed = end - start
            sigma += current * elapsed
            if current > 0.0:
                for m in range(1, self.terms + 1):
                    b2m2 = (self.beta * m) ** 2
                    sigma += (
                        2.0
                        * current
                        / b2m2
                        * (math.exp(-b2m2 * (t - end)) - math.exp(-b2m2 * (t - start)))
                    )
            start += duration
            if start >= t:
                break
        return sigma

    def apparent_charge_lost(self, segments: Sequence[Segment], t: float) -> float:
        """Public accessor for the apparent charge lost at time ``t``."""
        if t < 0.0:
            raise ValueError("t must be non-negative")
        return self._sigma(segments, t)

    def is_exhausted(self, segments: Sequence[Segment], t: float) -> bool:
        """Whether the battery is exhausted at time ``t`` under the load."""
        return self.apparent_charge_lost(segments, t) >= self.alpha

    def lifetime_constant_current(self, current: float) -> float:
        """Lifetime under a constant discharge current."""
        if current <= 0.0:
            raise ValueError("current must be positive")
        horizon = self.alpha / current * 4.0 + 1.0
        segments = [(current, horizon)]
        def margin(t: float) -> float:
            return self.alpha - self._sigma(segments, t)
        if margin(horizon) > 0.0:
            raise RuntimeError("battery did not become exhausted within the horizon")
        return float(brentq(margin, 0.0, horizon, xtol=1e-10))

    def lifetime_under_segments(self, segments: Sequence[Segment]) -> Optional[float]:
        """Lifetime under a piecewise-constant load, or ``None`` if it survives."""
        boundaries: List[float] = [0.0]
        for _, duration in segments:
            boundaries.append(boundaries[-1] + duration)
        def margin(t: float) -> float:
            return self.alpha - self._sigma(segments, t)
        for left, right in zip(boundaries[:-1], boundaries[1:]):
            if right <= left:
                continue
            if margin(right) <= 0.0:
                lo = left
                # The margin can be non-monotone across idle periods, but
                # within a discharging segment it decreases; bracket on the
                # sub-interval where the sign changes.
                if margin(lo) <= 0.0:
                    return lo
                return float(brentq(margin, lo, right, xtol=1e-10))
        return None
