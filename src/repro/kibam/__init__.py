"""Battery models used throughout the reproduction.

The central model is the Kinetic Battery Model (KiBaM) of Manwell and
McGowan, in the coordinate-transformed form used by Jongerden et al.
(DSN 2009).  The subpackage provides:

* :mod:`repro.kibam.parameters` -- battery parameter sets (the paper's B1/B2).
* :mod:`repro.kibam.analytical` -- closed-form constant-current stepping in
  the transformed ``(delta, gamma)`` coordinates (Section 2.2 of the paper).
* :mod:`repro.kibam.model` -- the original two-well ODE form integrated
  numerically with scipy (Section 2.1), used for cross validation.
* :mod:`repro.kibam.transformed` -- conversions between the two coordinate
  systems.
* :mod:`repro.kibam.lifetime` -- lifetime solvers for constant and piecewise
  constant loads.
* :mod:`repro.kibam.discrete` -- the discretized KiBaM (dKiBaM, Section 2.3).
* :mod:`repro.kibam.linear` -- an ideal linear battery baseline.
* :mod:`repro.kibam.diffusion` -- the Rakhmatov-Vrudhula diffusion model,
  included for model-comparison experiments.
"""

from repro.kibam.parameters import BatteryParameters, B1, B2, ITSY_LIION
from repro.kibam.analytical import (
    KibamState,
    initial_state,
    step_constant_current,
    available_charge,
    bound_charge,
    is_empty,
    state_of_charge,
)
from repro.kibam.transformed import to_wells, from_wells, height_difference
from repro.kibam.lifetime import (
    lifetime_constant_current,
    lifetime_under_segments,
    time_to_empty,
    delivered_charge,
)
from repro.kibam.discrete import (
    DiscreteKibam,
    DiscreteBatteryState,
    DischargeSpec,
    recovery_steps_table,
)
from repro.kibam.model import TwoWellKibam
from repro.kibam.linear import LinearBattery
from repro.kibam.diffusion import DiffusionBattery

__all__ = [
    "BatteryParameters",
    "B1",
    "B2",
    "ITSY_LIION",
    "KibamState",
    "initial_state",
    "step_constant_current",
    "available_charge",
    "bound_charge",
    "is_empty",
    "state_of_charge",
    "to_wells",
    "from_wells",
    "height_difference",
    "lifetime_constant_current",
    "lifetime_under_segments",
    "time_to_empty",
    "delivered_charge",
    "DiscreteKibam",
    "DiscreteBatteryState",
    "DischargeSpec",
    "recovery_steps_table",
    "TwoWellKibam",
    "LinearBattery",
    "DiffusionBattery",
]
