"""The discretized Kinetic Battery Model (dKiBaM, Section 2.3 of the paper).

Time is discretized in ticks of size ``T`` minutes, the total charge in
``N = C / Gamma`` units of ``Gamma`` Amin, and the height difference in
units of ``Gamma / c``.  Two processes change the state:

* **discharge**: at a constant current ``I`` it takes ``Gamma / (I * T)``
  ticks to draw one charge unit; equation (7) of the paper represents the
  current by an integer pair drawing ``cur`` charge units per ``cur_times``
  ticks.  The paper's TA-KiBaM removes all ``cur`` units in one lump at the
  end of each window; this module spreads the same budget one unit at a
  time (a Bresenham accumulator gains ``cur`` per tick and a unit moves
  from the total charge counter ``n`` to the height difference counter
  ``m`` each time it reaches ``cur_times``).  Both schemes are identical
  whenever ``cur == 1`` -- which covers every load of the paper at the
  reference discretization -- but the spread form stays accurate for
  currents whose smallest integer representation has ``cur > 1`` (e.g.
  0.124 A at ``T = Gamma = 0.01`` is 31 units per 250 ticks: drawn as one
  2.5-minute lump the model overestimated low-current lifetimes by tens of
  percent, spread evenly it tracks the analytical model again);
* **recovery**: the height difference decays according to
  ``delta(t) = delta(0) * exp(-k' t)``; the number of ticks needed to drop
  from ``m`` units to ``m - 1`` units is ``round(-ln((m-1)/m) / (k' T))``
  (equation (6)), precomputed in a table.  Height difference 1 never decays
  further (the continuous decay never reaches zero).

The battery is empty when ``c * n <= (1 - c) * m`` (equation (8)); the
TA-KiBaM uses the integer per-mille form ``(1000 - c) * m >= c * n`` which
is also what this module checks.
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.kibam.analytical import KibamState
from repro.kibam.parameters import BatteryParameters

#: A load segment: (current in Ampere, duration in minutes).
Segment = Tuple[float, float]


@dataclasses.dataclass(frozen=True)
class DischargeSpec:
    """Integer discharge specification for one epoch of the dKiBaM.

    ``cur`` charge units are drawn per ``cur_times`` ticks, so the
    represented current is ``cur * Gamma / (cur_times * T)`` (equation (7)).
    The simulator spreads the draws one unit at a time (see the module
    docstring); the pair only fixes the *rate*.
    """

    cur: int
    cur_times: int

    def __post_init__(self) -> None:
        if self.cur < 0:
            raise ValueError(f"cur must be non-negative, got {self.cur}")
        if self.cur_times <= 0:
            raise ValueError(f"cur_times must be positive, got {self.cur_times}")

    @property
    def is_idle(self) -> bool:
        return self.cur == 0

    def current(self, charge_unit: float, time_step: float) -> float:
        """The current in Ampere represented by this specification."""
        return self.cur * charge_unit / (self.cur_times * time_step)


@dataclasses.dataclass(frozen=True)
class DiscreteBatteryState:
    """State of one dKiBaM battery.

    Attributes:
        n: remaining total charge in charge units.
        m: height difference in height units.
        disch_ticks: discharge accumulator; it gains ``cur`` per discharging
            tick and one charge unit is drawn each time it reaches
            ``cur_times`` (for ``cur == 1`` this is exactly "ticks since the
            last draw").
        disch_rate: the ``(cur, cur_times)`` pair the accumulator was built
            under.  The accumulator value is only meaningful relative to its
            rate, so a tick under a *different* spec restarts it at zero --
            otherwise ticks banked at a slow rate would drain as a burst of
            draws the moment a faster epoch begins.
        recov_ticks: ticks elapsed since the last height-unit recovery.
        empty: whether the battery has been observed empty.
    """

    n: int
    m: int
    disch_ticks: int = 0
    disch_rate: Tuple[int, int] = (0, 1)
    recov_ticks: int = 0
    empty: bool = False


def discharge_spec_for(
    current: float,
    time_step: float,
    charge_unit: float,
    max_cur_times: int = 10_000,
) -> DischargeSpec:
    """Integer ``(cur, cur_times)`` pair representing ``current`` (equation (7)).

    The ratio ``cur / cur_times`` must equal ``I * T / Gamma``; the smallest
    such integer pair is returned.  Raises ``ValueError`` when the current
    cannot be represented with a denominator up to ``max_cur_times`` (pick a
    finer time step in that case).  Module-level so the batch engine and the
    scalar :class:`DiscreteKibam` share one conversion.
    """
    if current < 0.0:
        raise ValueError("current must be non-negative")
    if current == 0.0:
        return DischargeSpec(cur=0, cur_times=1)
    ratio = Fraction(current * time_step / charge_unit).limit_denominator(max_cur_times)
    if ratio.numerator == 0:
        raise ValueError(
            f"current {current} A is too small to represent with time step "
            f"{time_step} and charge unit {charge_unit}"
        )
    exact = current * time_step / charge_unit
    approx = ratio.numerator / ratio.denominator
    if abs(approx - exact) > 1e-9 * max(1.0, exact):
        raise ValueError(
            f"current {current} A is not representable exactly "
            f"(closest fraction {ratio}); refine the discretization"
        )
    return DischargeSpec(cur=ratio.numerator, cur_times=ratio.denominator)


def duration_ticks(duration: float, time_step: float) -> int:
    """Convert a duration in minutes to a whole number of ticks of ``time_step``."""
    if duration < 0.0:
        raise ValueError("duration must be non-negative")
    ticks = round(duration / time_step)
    if abs(ticks * time_step - duration) > 1e-9:
        raise ValueError(
            f"duration {duration} min is not a multiple of the time step "
            f"{time_step} min"
        )
    return ticks


def recovery_steps_table(
    params: BatteryParameters,
    time_step: float,
    max_units: int,
) -> List[int]:
    """Precompute the per-height recovery times in ticks (equation (6)).

    ``table[m]`` is the number of ticks needed for the height difference to
    drop from ``m`` to ``m - 1`` units.  Entries 0 and 1 are sentinels (no
    recovery happens at or below one unit) and are set to a very large value.
    """
    if time_step <= 0.0:
        raise ValueError("time_step must be positive")
    if max_units < 1:
        raise ValueError("max_units must be at least 1")
    unreachable = 2**62
    table = [unreachable, unreachable]
    for m in range(2, max_units + 1):
        seconds = -math.log((m - 1) / m) / params.k_prime
        ticks = max(1, round(seconds / time_step))
        table.append(ticks)
    return table


class DiscreteKibam:
    """Tick-based simulator for the discretized KiBaM of one battery.

    Args:
        params: battery parameters.
        time_step: tick length ``T`` in minutes (the paper uses 0.01 min).
        charge_unit: charge unit ``Gamma`` in Amin (the paper uses 0.01 Amin).
    """

    def __init__(
        self,
        params: BatteryParameters,
        time_step: float = 0.01,
        charge_unit: float = 0.01,
    ) -> None:
        if time_step <= 0.0:
            raise ValueError("time_step must be positive")
        if charge_unit <= 0.0:
            raise ValueError("charge_unit must be positive")
        self.params = params
        self.time_step = time_step
        self.charge_unit = charge_unit
        self.total_units = round(params.capacity / charge_unit)
        if self.total_units < 1:
            raise ValueError("charge_unit is larger than the battery capacity")
        #: Height-difference step size Delta = Gamma / c, in Amin.
        self.height_unit = charge_unit / params.c
        self.c_permille = params.c_permille
        # The height difference can never exceed the number of charge units
        # ever drawn, which is bounded by the total number of charge units.
        self.recovery_steps = recovery_steps_table(params, time_step, self.total_units + 1)

    # ------------------------------------------------------------------ #
    # state construction and inspection
    # ------------------------------------------------------------------ #
    def initial_state(self) -> DiscreteBatteryState:
        """Fully charged battery: all units present, zero height difference."""
        return DiscreteBatteryState(n=self.total_units, m=0)

    def is_empty(self, state: DiscreteBatteryState) -> bool:
        """Empty criterion (8): ``(1000 - c) * m >= c * n`` in per-mille form."""
        return (1000 - self.c_permille) * state.m >= self.c_permille * state.n

    def to_continuous(self, state: DiscreteBatteryState) -> KibamState:
        """Map a discrete state to the transformed continuous coordinates."""
        return KibamState(
            gamma=state.n * self.charge_unit,
            delta=state.m * self.height_unit,
        )

    def available_charge(self, state: DiscreteBatteryState) -> float:
        """Available charge ``y1`` in Amin implied by the discrete state."""
        continuous = self.to_continuous(state)
        return self.params.c * (continuous.gamma - (1.0 - self.params.c) * continuous.delta)

    # ------------------------------------------------------------------ #
    # discharge specifications
    # ------------------------------------------------------------------ #
    def discharge_spec(self, current: float, max_cur_times: int = 10_000) -> DischargeSpec:
        """Integer (cur, cur_times) pair representing ``current`` (equation (7)).

        The ratio ``cur / cur_times`` must equal ``I * T / Gamma``; the
        smallest such integer pair is returned.  Raises ``ValueError`` when
        the current cannot be represented with a denominator up to
        ``max_cur_times`` (pick a finer time step in that case).
        """
        return discharge_spec_for(
            current, self.time_step, self.charge_unit, max_cur_times=max_cur_times
        )

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #
    def tick(
        self,
        state: DiscreteBatteryState,
        spec: Optional[DischargeSpec] = None,
    ) -> DiscreteBatteryState:
        """Advance the battery by one tick.

        Args:
            state: state at the beginning of the tick.
            spec: discharge specification if the battery is switched on for
                this tick; ``None`` (or an idle spec) means the battery only
                recovers.

        Returns:
            The state at the end of the tick.  The empty criterion can only
            start to hold when charge is drawn (discharging lowers ``n`` and
            raises ``m``, recovery moves the state away from empty), so it
            is evaluated right after every draw -- this mirrors the TA-KiBaM
            total-charge automaton, whose guard towards the ``empty``
            location carries no clock constraint and therefore fires as soon
            as the criterion becomes true.
        """
        if state.empty:
            return state
        n, m = state.n, state.m
        disch_ticks, recov_ticks = state.disch_ticks, state.recov_ticks
        became_empty = False

        # Recovery process: runs whenever the height difference exceeds one
        # unit, independently of the load (Section 2.3 separates the two
        # processes; the recovery table does not depend on the current).
        if m > 1:
            recov_ticks += 1
            if recov_ticks >= self.recovery_steps[m]:
                m -= 1
                recov_ticks = 0
        else:
            recov_ticks = 0

        # Discharge process: the accumulator gains ``cur`` per tick and one
        # charge unit moves from n to m each time it reaches ``cur_times``,
        # which spreads equation (7)'s draw budget evenly instead of in
        # ``cur``-unit lumps (identical for cur == 1; see module docstring).
        # Checking emptiness per drawn unit also makes the empty observation
        # as fine-grained as the charge unit allows.  The accumulator is
        # only meaningful relative to its rate: a rate change (a new epoch
        # current, or resuming after idle) restarts it at zero.
        discharging = spec is not None and not spec.is_idle
        disch_rate = state.disch_rate
        if discharging:
            assert spec is not None
            rate = (spec.cur, spec.cur_times)
            if rate != disch_rate:
                disch_ticks = 0
                disch_rate = rate
            disch_ticks += spec.cur
            while disch_ticks >= spec.cur_times and not became_empty:
                if (1000 - self.c_permille) * m >= self.c_permille * n:
                    # Already empty at the draw instant (can happen when the
                    # battery is switched on in an almost-empty state).
                    became_empty = True
                else:
                    n -= 1
                    m += 1
                    disch_ticks -= spec.cur_times
                    if (1000 - self.c_permille) * m >= self.c_permille * n:
                        became_empty = True
        else:
            disch_ticks = 0
            disch_rate = (0, 1)

        return DiscreteBatteryState(
            n=n,
            m=m,
            disch_ticks=disch_ticks,
            disch_rate=disch_rate,
            recov_ticks=recov_ticks,
            empty=became_empty,
        )

    def run_segment(
        self,
        state: DiscreteBatteryState,
        current: float,
        duration: float,
    ) -> Tuple[DiscreteBatteryState, Optional[int]]:
        """Run one constant-current segment.

        Returns the final state and, if the battery became empty during the
        segment, the number of ticks into the segment at which that
        happened (otherwise ``None``).
        """
        spec = self.discharge_spec(current) if current > 0.0 else None
        ticks = self.duration_to_ticks(duration)
        for tick_index in range(1, ticks + 1):
            state = self.tick(state, spec)
            if state.empty:
                return state, tick_index
        return state, None

    def duration_to_ticks(self, duration: float) -> int:
        """Convert a duration in minutes to a whole number of ticks."""
        return duration_ticks(duration, self.time_step)

    def lifetime_under_segments(self, segments: Iterable[Segment]) -> Optional[float]:
        """Lifetime (minutes) of a full battery under a piecewise-constant load.

        Returns ``None`` when the battery survives the whole load.
        """
        state = self.initial_state()
        elapsed_ticks = 0
        for current, duration in segments:
            state, empty_tick = self.run_segment(state, current, duration)
            if empty_tick is not None:
                return (elapsed_ticks + empty_tick) * self.time_step
            elapsed_ticks += self.duration_to_ticks(duration)
        return None

    def trace_under_segments(
        self,
        segments: Sequence[Segment],
        sample_every: int = 10,
    ) -> List[Tuple[float, DiscreteBatteryState]]:
        """Sampled state trajectory under a load, for plotting and debugging."""
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        state = self.initial_state()
        samples: List[Tuple[float, DiscreteBatteryState]] = [(0.0, state)]
        elapsed_ticks = 0
        for current, duration in segments:
            spec = self.discharge_spec(current) if current > 0.0 else None
            for _ in range(self.duration_to_ticks(duration)):
                state = self.tick(state, spec)
                elapsed_ticks += 1
                if elapsed_ticks % sample_every == 0 or state.empty:
                    samples.append((elapsed_ticks * self.time_step, state))
                if state.empty:
                    return samples
        return samples
