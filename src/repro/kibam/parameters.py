"""Battery parameter sets for the Kinetic Battery Model.

The KiBaM is characterised by three parameters:

* ``capacity`` -- total charge capacity ``C`` of the battery, in
  Ampere-minutes (Amin),
* ``c`` -- the fraction of the capacity held in the available-charge well,
* ``k_prime`` -- the transformed valve conductance ``k' = k / (c * (1 - c))``
  in 1/min (the paper works with ``k'`` directly).

The paper uses the lithium-ion battery of the Itsy pocket computer with
``c = 0.166`` and ``k' = 0.122 / min`` and two capacities: battery type B1
with 5.5 Amin and type B2 with 11 Amin.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class BatteryParameters:
    """Immutable KiBaM parameter set.

    Attributes:
        capacity: total capacity ``C`` in Ampere-minutes.
        c: fraction of the capacity in the available-charge well (0 < c < 1).
        k_prime: transformed rate constant ``k'`` in 1/min.
        name: optional human readable identifier.
    """

    capacity: float
    c: float
    k_prime: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0.0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if not 0.0 < self.c < 1.0:
            raise ValueError(f"c must lie strictly between 0 and 1, got {self.c}")
        if self.k_prime <= 0.0:
            raise ValueError(f"k_prime must be positive, got {self.k_prime}")

    @property
    def k(self) -> float:
        """The untransformed valve conductance ``k = k' * c * (1 - c)``."""
        return self.k_prime * self.c * (1.0 - self.c)

    @property
    def available_capacity(self) -> float:
        """Initial charge in the available-charge well, ``c * C``."""
        return self.c * self.capacity

    @property
    def bound_capacity(self) -> float:
        """Initial charge in the bound-charge well, ``(1 - c) * C``."""
        return (1.0 - self.c) * self.capacity

    @property
    def c_permille(self) -> int:
        """``c`` scaled to an integer per-mille value, as used by the TA-KiBaM."""
        return round(1000.0 * self.c)

    def scaled(self, factor: float, name: str = "") -> "BatteryParameters":
        """Return a copy with the capacity scaled by ``factor``.

        The KiBaM equations are linear in charge, so scaling the capacity
        (and the applied current by the same factor) leaves the lifetime
        unchanged.  This is used by the capacity-scaling experiment of
        Section 6 of the paper.
        """
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return BatteryParameters(
            capacity=self.capacity * factor,
            c=self.c,
            k_prime=self.k_prime,
            name=name or (f"{self.name}x{factor:g}" if self.name else ""),
        )

    def steady_state_height_difference(self, current: float) -> float:
        """Asymptotic height difference ``I / (c * k')`` under constant current."""
        return current / (self.c * self.k_prime)


#: The Itsy pocket-computer lithium-ion cell parameters from Jongerden &
#: Haverkort, "Battery modeling", TR-CTIT-08-01 (paper reference [15]).
ITSY_LIION = BatteryParameters(capacity=5.5, c=0.166, k_prime=0.122, name="itsy-liion")

#: Battery type B1 of the paper: 5.5 Amin capacity.
B1 = BatteryParameters(capacity=5.5, c=0.166, k_prime=0.122, name="B1")

#: Battery type B2 of the paper: 11 Amin capacity, same c and k'.
B2 = BatteryParameters(capacity=11.0, c=0.166, k_prime=0.122, name="B2")
