"""repro: reproduction of "Maximizing System Lifetime by Battery Scheduling".

The package reimplements the full stack of Jongerden, Haverkort, Bohnenkamp
and Katoen (DSN 2009):

* :mod:`repro.kibam` -- the Kinetic Battery Model in analytical, ODE and
  discretized form, plus alternative battery models,
* :mod:`repro.workloads` -- the paper's test loads and workload generators,
* :mod:`repro.core` -- scheduling policies, the multi-battery simulator and
  the optimal scheduler (the paper's headline contribution),
* :mod:`repro.pta` -- a linear priced timed automata substrate with a
  minimum-cost reachability engine (the stand-in for Uppaal Cora),
* :mod:`repro.takibam` -- the TA-KiBaM network of Section 4 built on that
  substrate,
* :mod:`repro.engine` -- the vectorized batch execution engine: NumPy
  KiBaM kernels, array policies and a lock-step many-scenario simulator
  for fleet-scale sweeps (plus a multiprocessing executor for workloads
  that scale across cores),
* :mod:`repro.sweep` -- declarative experiment orchestration: sweep specs
  over battery-parameter grids, loads and policies, a content-addressed
  result store with chunked resume, and the ``python -m repro sweep`` CLI,
* :mod:`repro.analysis` -- the experiment layer regenerating every table
  and figure of the paper.

Quickstart::

    from repro import B1, paper_loads, simulate_policy, find_optimal_schedule

    load = paper_loads()["ILs alt"]
    best_of_two = simulate_policy([B1, B1], load, "best-of-two")
    optimal = find_optimal_schedule([B1, B1], load)
    print(best_of_two.lifetime, optimal.lifetime)
"""

from repro.kibam import (
    B1,
    B2,
    ITSY_LIION,
    BatteryParameters,
    DiscreteKibam,
    KibamState,
    LinearBattery,
    DiffusionBattery,
    TwoWellKibam,
    lifetime_constant_current,
    lifetime_under_segments,
)
from repro.workloads import (
    Epoch,
    Load,
    paper_loads,
    PAPER_LOAD_NAMES,
)
from repro.core import (
    AnalyticalBattery,
    BestOfTwoPolicy,
    DiscreteBattery,
    MultiBatterySimulator,
    OptimalScheduleResult,
    RoundRobinPolicy,
    Schedule,
    SequentialPolicy,
    SimulationResult,
    find_optimal_schedule,
    make_policy,
    simulate_policy,
)
from repro.engine import (
    BatchOptimalScheduler,
    BatchResult,
    BatchSimulator,
    ScenarioSet,
    find_optimal_schedule_batched,
)
from repro.sweep import (
    BatteryConfig,
    LoadAxis,
    ResultStore,
    SweepRunner,
    SweepSpec,
    battery_grid,
    builtin_specs,
)
from repro.analysis.montecarlo import run_montecarlo

__version__ = "1.5.0"

__all__ = [
    "B1",
    "B2",
    "ITSY_LIION",
    "BatteryParameters",
    "DiscreteKibam",
    "KibamState",
    "LinearBattery",
    "DiffusionBattery",
    "TwoWellKibam",
    "lifetime_constant_current",
    "lifetime_under_segments",
    "Epoch",
    "Load",
    "paper_loads",
    "PAPER_LOAD_NAMES",
    "AnalyticalBattery",
    "BestOfTwoPolicy",
    "DiscreteBattery",
    "MultiBatterySimulator",
    "OptimalScheduleResult",
    "RoundRobinPolicy",
    "Schedule",
    "SequentialPolicy",
    "SimulationResult",
    "find_optimal_schedule",
    "find_optimal_schedule_batched",
    "make_policy",
    "simulate_policy",
    "BatchOptimalScheduler",
    "BatchResult",
    "BatchSimulator",
    "ScenarioSet",
    "BatteryConfig",
    "LoadAxis",
    "ResultStore",
    "SweepRunner",
    "SweepSpec",
    "battery_grid",
    "builtin_specs",
    "run_montecarlo",
    "__version__",
]
